//! SyncRaft's RPC messages.
//!
//! Raft-java models its communication as synchronous RPCs; on the
//! simulated substrate a call is a request envelope and its response
//! envelope. The record shapes reported to Mocket are identical to
//! the specification's (the `Action.getMsg` field-order rule).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use mocket_dsnet::{Wire, WireError};
use mocket_tla::{vrec, Value};

use crate::logstore::LogEntry;

impl Wire for LogEntry {
    fn encode(&self, buf: &mut BytesMut) {
        self.term.encode(buf);
        self.data.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(LogEntry {
            term: i64::decode(buf)?,
            data: i64::decode(buf)?,
        })
    }
}

/// A synchronous-RPC payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rpc {
    /// `requestVote` call.
    VoteCall {
        /// Candidate term.
        term: i64,
        /// Candidate's last log term.
        last_log_term: i64,
        /// Candidate's last log index.
        last_log_index: i64,
        /// Caller.
        from: u64,
        /// Callee.
        to: u64,
    },
    /// `requestVote` reply (granting only).
    VoteReply {
        /// Voter term.
        term: i64,
        /// Grant flag.
        granted: bool,
        /// Voter.
        from: u64,
        /// Candidate.
        to: u64,
    },
    /// `appendEntries` call.
    AppendCall {
        /// Leader term.
        term: i64,
        /// Index before the shipped entries.
        prev_index: i64,
        /// Term at `prev_index`.
        prev_term: i64,
        /// Shipped entries (≤ 1).
        entries: Vec<LogEntry>,
        /// Leader commit index (clamped).
        commit: i64,
        /// Leader.
        from: u64,
        /// Follower.
        to: u64,
    },
    /// `appendEntries` reply.
    AppendReply {
        /// Responder term.
        term: i64,
        /// Acceptance flag.
        ok: bool,
        /// Highest replicated index on the responder.
        match_index: i64,
        /// Responder.
        from: u64,
        /// Leader.
        to: u64,
    },
}

impl Rpc {
    /// Destination node.
    pub fn dest(&self) -> u64 {
        match self {
            Rpc::VoteCall { to, .. }
            | Rpc::VoteReply { to, .. }
            | Rpc::AppendCall { to, .. }
            | Rpc::AppendReply { to, .. } => *to,
        }
    }

    /// The spec-record shape.
    pub fn to_value(&self) -> Value {
        match self {
            Rpc::VoteCall {
                term,
                last_log_term,
                last_log_index,
                from,
                to,
            } => vrec! {
                mtype => "RequestVoteRequest",
                mterm => *term,
                mlastLogTerm => *last_log_term,
                mlastLogIndex => *last_log_index,
                msource => *from as i64,
                mdest => *to as i64,
            },
            Rpc::VoteReply {
                term,
                granted,
                from,
                to,
            } => vrec! {
                mtype => "RequestVoteResponse",
                mterm => *term,
                mvoteGranted => *granted,
                msource => *from as i64,
                mdest => *to as i64,
            },
            Rpc::AppendCall {
                term,
                prev_index,
                prev_term,
                entries,
                commit,
                from,
                to,
            } => vrec! {
                mtype => "AppendEntriesRequest",
                mterm => *term,
                mprevLogIndex => *prev_index,
                mprevLogTerm => *prev_term,
                mentries => Value::seq(entries.iter().map(LogEntry::to_value)),
                mcommitIndex => *commit,
                msource => *from as i64,
                mdest => *to as i64,
            },
            Rpc::AppendReply {
                term,
                ok,
                match_index,
                from,
                to,
            } => vrec! {
                mtype => "AppendEntriesResponse",
                mterm => *term,
                msuccess => *ok,
                mmatchIndex => *match_index,
                msource => *from as i64,
                mdest => *to as i64,
            },
        }
    }
}

impl Wire for Rpc {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Rpc::VoteCall {
                term,
                last_log_term,
                last_log_index,
                from,
                to,
            } => {
                buf.put_u8(0);
                term.encode(buf);
                last_log_term.encode(buf);
                last_log_index.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
            Rpc::VoteReply {
                term,
                granted,
                from,
                to,
            } => {
                buf.put_u8(1);
                term.encode(buf);
                granted.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
            Rpc::AppendCall {
                term,
                prev_index,
                prev_term,
                entries,
                commit,
                from,
                to,
            } => {
                buf.put_u8(2);
                term.encode(buf);
                prev_index.encode(buf);
                prev_term.encode(buf);
                entries.encode(buf);
                commit.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
            Rpc::AppendReply {
                term,
                ok,
                match_index,
                from,
                to,
            } => {
                buf.put_u8(3);
                term.encode(buf);
                ok.encode(buf);
                match_index.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        WireError::need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(Rpc::VoteCall {
                term: i64::decode(buf)?,
                last_log_term: i64::decode(buf)?,
                last_log_index: i64::decode(buf)?,
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
            }),
            1 => Ok(Rpc::VoteReply {
                term: i64::decode(buf)?,
                granted: bool::decode(buf)?,
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
            }),
            2 => Ok(Rpc::AppendCall {
                term: i64::decode(buf)?,
                prev_index: i64::decode(buf)?,
                prev_term: i64::decode(buf)?,
                entries: Vec::<LogEntry>::decode(buf)?,
                commit: i64::decode(buf)?,
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
            }),
            3 => Ok(Rpc::AppendReply {
                term: i64::decode(buf)?,
                ok: bool::decode(buf)?,
                match_index: i64::decode(buf)?,
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
            }),
            other => Err(WireError::new(format!("bad Rpc tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpcs_roundtrip() {
        for rpc in [
            Rpc::VoteCall {
                term: 2,
                last_log_term: 0,
                last_log_index: 0,
                from: 1,
                to: 2,
            },
            Rpc::VoteReply {
                term: 2,
                granted: true,
                from: 2,
                to: 1,
            },
            Rpc::AppendCall {
                term: 3,
                prev_index: 0,
                prev_term: 0,
                entries: vec![LogEntry { term: 3, data: 9 }],
                commit: 0,
                from: 1,
                to: 2,
            },
            Rpc::AppendReply {
                term: 3,
                ok: true,
                match_index: 1,
                from: 2,
                to: 1,
            },
        ] {
            assert_eq!(rpc.wire_roundtrip().unwrap(), rpc);
        }
    }

    #[test]
    fn record_shape_matches_spec() {
        let v = Rpc::AppendCall {
            term: 3,
            prev_index: 0,
            prev_term: 0,
            entries: vec![LogEntry { term: 3, data: 9 }],
            commit: 0,
            from: 1,
            to: 2,
        }
        .to_value();
        assert_eq!(v.expect_field("mtype"), &Value::str("AppendEntriesRequest"));
        assert_eq!(v.expect_field("mentries").len(), 1);
    }
}
