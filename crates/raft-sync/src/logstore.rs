//! SyncRaft's log store.
//!
//! Raft-java keeps its log in a segmented store; this analog keeps the
//! entries behind a small API with explicit truncate-and-append
//! semantics — the home of the `log_truncation_bug` switch (Raft-java
//! bug #2: the conflicting-suffix truncation is off by one).

use std::sync::Arc;

use mocket_dsnet::Storage;
use mocket_tla::{vrec, Value};

/// One log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Leader term that created the entry.
    pub term: i64,
    /// The client datum.
    pub data: i64,
}

impl LogEntry {
    /// The spec-record shape.
    pub fn to_value(&self) -> Value {
        vrec! { term => self.term, value => self.data }
    }
}

/// A durable, in-order entry store.
pub struct LogStore {
    entries: Vec<LogEntry>,
    storage: Arc<Storage<Value>>,
    buggy_truncation: bool,
}

impl LogStore {
    /// Opens the store, recovering persisted entries.
    pub fn open(storage: Arc<Storage<Value>>, buggy_truncation: bool) -> Self {
        let entries = storage
            .get("log")
            .and_then(|v| {
                v.as_seq().map(|items| {
                    items
                        .iter()
                        .map(|e| LogEntry {
                            term: e.expect_field("term").expect_int(),
                            data: e.expect_field("value").expect_int(),
                        })
                        .collect()
                })
            })
            .unwrap_or_default();
        LogStore {
            entries,
            storage,
            buggy_truncation,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> i64 {
        self.entries.len() as i64
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// 1-indexed entry access.
    pub fn get(&self, index: i64) -> Option<&LogEntry> {
        if index >= 1 {
            self.entries.get(index as usize - 1)
        } else {
            None
        }
    }

    /// Term of the entry at `index` (0 outside the log).
    pub fn term_at(&self, index: i64) -> i64 {
        self.get(index).map(|e| e.term).unwrap_or(0)
    }

    /// Term of the last entry.
    pub fn last_term(&self) -> i64 {
        self.entries.last().map(|e| e.term).unwrap_or(0)
    }

    /// Appends one entry (leader path).
    pub fn append(&mut self, entry: LogEntry) {
        self.entries.push(entry);
        self.persist();
    }

    /// Replaces everything after `prev_index` with `incoming`
    /// (follower path). The conformant version truncates the
    /// conflicting suffix starting at `prev_index + 1`; the buggy
    /// version keeps the first conflicting entry (off by one) and
    /// appends after it.
    pub fn splice(&mut self, prev_index: i64, incoming: &[LogEntry]) {
        if incoming.is_empty() {
            return;
        }
        let insert_at = prev_index as usize; // 0-based position of first incoming
        let already_there = self
            .entries
            .get(insert_at)
            .map(|e| e.term == incoming[0].term)
            .unwrap_or(false);
        if already_there {
            return; // Idempotent re-delivery.
        }
        let cut = if self.buggy_truncation && self.entries.len() > insert_at {
            // Raft-java bug #2: the conflicting entry survives.
            insert_at + 1
        } else {
            insert_at
        };
        self.entries.truncate(cut);
        self.entries.extend(incoming.iter().cloned());
        self.persist();
    }

    /// The spec-sequence shape of the whole log.
    pub fn to_value(&self) -> Value {
        Value::seq(self.entries.iter().map(LogEntry::to_value))
    }

    fn persist(&self) {
        self.storage.put("log", self.to_value());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(buggy: bool) -> LogStore {
        LogStore::open(Storage::new(), buggy)
    }

    #[test]
    fn append_and_access() {
        let mut s = store(false);
        s.append(LogEntry { term: 2, data: 1 });
        s.append(LogEntry { term: 3, data: 2 });
        assert_eq!(s.len(), 2);
        assert_eq!(s.term_at(1), 2);
        assert_eq!(s.term_at(2), 3);
        assert_eq!(s.term_at(3), 0);
        assert_eq!(s.last_term(), 3);
    }

    #[test]
    fn splice_replaces_conflicting_suffix() {
        let mut s = store(false);
        s.append(LogEntry { term: 2, data: 1 });
        s.splice(0, &[LogEntry { term: 3, data: 9 }]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(1).unwrap().term, 3);
        assert_eq!(s.get(1).unwrap().data, 9);
    }

    #[test]
    fn splice_is_idempotent_on_same_term() {
        let mut s = store(false);
        s.append(LogEntry { term: 2, data: 1 });
        s.splice(0, &[LogEntry { term: 2, data: 1 }]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn buggy_truncation_keeps_conflicting_entry() {
        let mut s = store(true);
        s.append(LogEntry { term: 2, data: 1 });
        s.splice(0, &[LogEntry { term: 3, data: 9 }]);
        // The conflicting term-2 entry survives; the new entry lands
        // after it.
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap().term, 2);
        assert_eq!(s.get(2).unwrap().term, 3);
    }

    #[test]
    fn log_survives_reopen() {
        let storage = Storage::new();
        {
            let mut s = LogStore::open(storage.clone(), false);
            s.append(LogEntry { term: 2, data: 7 });
        }
        let s = LogStore::open(storage, false);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(1).unwrap().data, 7);
    }

    #[test]
    fn empty_splice_is_noop() {
        let mut s = store(true);
        s.append(LogEntry { term: 2, data: 1 });
        s.splice(0, &[]);
        assert_eq!(s.len(), 1);
    }
}
