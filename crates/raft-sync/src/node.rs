//! The SyncRaft node (Raft-java analog).
//!
//! Independently structured from AsyncRaft: a `Role` enum, a
//! [`crate::logstore::LogStore`] for the log, synchronous-RPC style
//! messaging with no drop/duplicate faults, and no NoOp entry on
//! election — the implementation choices §5.2 attributes to
//! Raft-java. Hook names follow Raft-java's method names.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use mocket_core::sut::MsgEvent;
use mocket_dsnet::{Net, NodeId, Storage};
use mocket_runtime::{NodeApp, Shadow, VarRegistry};
use mocket_tla::{ActionInstance, Value};

use crate::bugs::SyncRaftBugs;
use crate::logstore::{LogEntry, LogStore};
use crate::msg::Rpc;

/// Raft-java role names (constant-mapped to the spec's).
pub const ROLE_FOLLOWER: &str = "NODE_STATE_FOLLOWER";
/// Candidate role.
pub const ROLE_CANDIDATE: &str = "NODE_STATE_CANDIDATE";
/// Leader role.
pub const ROLE_LEADER: &str = "NODE_STATE_LEADER";

/// The message pool name.
pub const POOL: &str = "messages";

/// A SyncRaft node.
pub struct SyncRaftNode {
    id: NodeId,
    servers: Vec<NodeId>,
    bugs: SyncRaftBugs,
    /// Mirror the official spec's `UpdateTerm` as a standalone hook
    /// (see `sut::make_sut_with_options`): when false, the `stepDown`
    /// region never notifies on its own, which is what makes the
    /// official spec's independent `UpdateTerm` a *missing action*.
    expose_update_term: bool,
    net: Arc<Net<Rpc>>,
    storage: Arc<Storage<Value>>,
    registry: Arc<VarRegistry>,

    role: Shadow<String>,
    term: Shadow<i64>,
    voted_for: Shadow<Value>,
    votes: Shadow<Value>,
    voters: BTreeSet<NodeId>,
    commit: Shadow<i64>,
    log: LogStore,
    next_index: BTreeMap<NodeId, i64>,
    match_index: BTreeMap<NodeId, i64>,
    /// Raft-java bug #1 bookkeeping: once one vote reply is processed
    /// in a round, the callback is deregistered and later replies are
    /// silently discarded.
    vote_reply_seen: bool,
}

impl SyncRaftNode {
    /// Creates (or restarts) a node, recovering durable state.
    pub fn new(
        id: NodeId,
        servers: Vec<NodeId>,
        bugs: SyncRaftBugs,
        expose_update_term: bool,
        net: Arc<Net<Rpc>>,
        storage: Arc<Storage<Value>>,
    ) -> Self {
        let registry = VarRegistry::new();
        let term = storage.get("term").and_then(|v| v.as_int()).unwrap_or(1);
        let voted_for = storage.get("votedFor").unwrap_or(Value::Nil);
        let log = LogStore::open(storage.clone(), bugs.log_truncation_bug);
        let mut node = SyncRaftNode {
            id,
            role: Shadow::new("role", ROLE_FOLLOWER.to_string(), registry.clone()),
            term: Shadow::new("term", term, registry.clone()),
            voted_for: Shadow::new("votedFor", voted_for, registry.clone()),
            votes: Shadow::new("votes", Value::empty_set(), registry.clone()),
            voters: BTreeSet::new(),
            commit: Shadow::new("commitIndex", 0, registry.clone()),
            log,
            next_index: servers.iter().map(|&j| (j, 1)).collect(),
            match_index: servers.iter().map(|&j| (j, 0)).collect(),
            vote_reply_seen: false,
            servers,
            bugs,
            expose_update_term,
            net,
            storage,
            registry,
        };
        node.mirror_log();
        node.mirror_indexes();
        node
    }

    fn quorum(&self) -> usize {
        self.servers.len() / 2 + 1
    }

    fn mirror_log(&mut self) {
        self.registry.write("log", self.log.to_value());
    }

    fn mirror_indexes(&mut self) {
        self.registry.write(
            "nextIndex",
            Value::Fun(
                self.next_index
                    .iter()
                    .map(|(&j, &v)| (Value::Int(j as i64), Value::Int(v)))
                    .collect(),
            ),
        );
        self.registry.write(
            "matchIndex",
            Value::Fun(
                self.match_index
                    .iter()
                    .map(|(&j, &v)| (Value::Int(j as i64), Value::Int(v)))
                    .collect(),
            ),
        );
    }

    fn set_votes(&mut self) {
        self.votes.set(Value::set(
            self.voters.iter().map(|&v| Value::Int(v as i64)),
        ));
    }

    fn persist_term(&self) {
        self.storage.put("term", Value::Int(*self.term.get()));
    }

    fn persist_vote(&self) {
        self.storage.put("votedFor", self.voted_for.get().clone());
    }

    /// Raft-java's `stepDown`: adopt a higher term as follower.
    fn step_down(&mut self, term: i64) {
        self.term.set(term);
        self.persist_term();
        self.role.set(ROLE_FOLLOWER.to_string());
        self.voted_for.set(Value::Nil);
        self.persist_vote();
        self.vote_reply_seen = false;
    }

    fn send(&self, rpc: Rpc) -> MsgEvent {
        let value = rpc.to_value();
        self.net
            .send(self.id, rpc.dest(), &rpc)
            .expect("wire encode");
        MsgEvent::Send {
            pool: POOL.into(),
            msg: value,
        }
    }

    fn take(&self, wanted: &Value) -> Option<Rpc> {
        self.net
            .take_matching(self.id, |env| env.msg.to_value() == *wanted)
            .map(|env| env.msg)
    }

    fn log_up_to_date(&self, last_term: i64, last_index: i64) -> bool {
        last_term > self.log.last_term()
            || (last_term == self.log.last_term() && last_index >= self.log.len())
    }

    // ------------------------------------------------------------------
    // Handlers (Raft-java method analogs).
    // ------------------------------------------------------------------

    fn election_timer(&mut self) -> Vec<MsgEvent> {
        let term = *self.term.get() + 1;
        self.term.set(term);
        self.persist_term();
        self.role.set(ROLE_CANDIDATE.to_string());
        self.voted_for.set(Value::Int(self.id as i64));
        self.persist_vote();
        self.voters.clear();
        self.voters.insert(self.id);
        self.set_votes();
        self.vote_reply_seen = false;
        Vec::new()
    }

    fn send_vote_request(&mut self, peer: NodeId) -> Vec<MsgEvent> {
        vec![self.send(Rpc::VoteCall {
            term: *self.term.get(),
            last_log_term: self.log.last_term(),
            last_log_index: self.log.len(),
            from: self.id,
            to: peer,
        })]
    }

    fn on_vote_request(&mut self, wanted: &Value) -> Vec<MsgEvent> {
        let Some(rpc) = self.take(wanted) else {
            return Vec::new();
        };
        let mut events = vec![MsgEvent::Receive {
            pool: POOL.into(),
            msg: rpc.to_value(),
        }];
        let Rpc::VoteCall {
            term,
            last_log_term,
            last_log_index,
            from,
            ..
        } = rpc
        else {
            return events;
        };
        if term > *self.term.get() {
            self.step_down(term);
        }
        if term < *self.term.get() {
            return events;
        }
        let free =
            self.voted_for.get() == &Value::Nil || self.voted_for.get() == &Value::Int(from as i64);
        if free && self.log_up_to_date(last_log_term, last_log_index) {
            self.voted_for.set(Value::Int(from as i64));
            self.persist_vote();
            events.push(self.send(Rpc::VoteReply {
                term: *self.term.get(),
                granted: true,
                from: self.id,
                to: from,
            }));
        }
        events
    }

    fn on_vote_reply(&mut self, wanted: &Value) -> Vec<MsgEvent> {
        let Some(rpc) = self.take(wanted) else {
            return Vec::new();
        };
        let events = vec![MsgEvent::Receive {
            pool: POOL.into(),
            msg: rpc.to_value(),
        }];
        let Rpc::VoteReply {
            term,
            granted,
            from,
            ..
        } = rpc
        else {
            return events;
        };
        if granted && self.role.get() == ROLE_CANDIDATE && term == *self.term.get() {
            self.voters.insert(from);
            self.set_votes();
            self.vote_reply_seen = true;
        }
        events
    }

    fn elect_leader(&mut self) -> Vec<MsgEvent> {
        self.role.set(ROLE_LEADER.to_string());
        let next = self.log.len() + 1;
        for &j in &self.servers.clone() {
            self.next_index.insert(j, next);
            self.match_index.insert(j, 0);
        }
        self.mirror_indexes();
        Vec::new()
    }

    fn client_write(&mut self, datum: i64) -> Vec<MsgEvent> {
        let term = *self.term.get();
        self.log.append(LogEntry { term, data: datum });
        self.mirror_log();
        Vec::new()
    }

    fn send_entries(&mut self, peer: NodeId) -> Vec<MsgEvent> {
        let next = self.next_index[&peer];
        let prev_index = next - 1;
        let prev_term = self.log.term_at(prev_index);
        let entries: Vec<LogEntry> = self.log.get(next).cloned().into_iter().collect();
        let commit = (*self.commit.get()).min(prev_index + entries.len() as i64);
        vec![self.send(Rpc::AppendCall {
            term: *self.term.get(),
            prev_index,
            prev_term,
            entries,
            commit,
            from: self.id,
            to: peer,
        })]
    }

    fn on_append_entries(&mut self, wanted: &Value) -> Vec<MsgEvent> {
        let Some(rpc) = self.take(wanted) else {
            return Vec::new();
        };
        let mut events = vec![MsgEvent::Receive {
            pool: POOL.into(),
            msg: rpc.to_value(),
        }];
        let Rpc::AppendCall {
            term,
            prev_index,
            prev_term,
            entries,
            commit,
            from,
            ..
        } = rpc
        else {
            return events;
        };
        if term > *self.term.get() {
            self.step_down(term);
        }
        let my_term = *self.term.get();
        if term < my_term {
            events.push(self.send(Rpc::AppendReply {
                term: my_term,
                ok: false,
                match_index: 0,
                from: self.id,
                to: from,
            }));
            return events;
        }
        if self.role.get() == ROLE_CANDIDATE {
            // Same-term leader exists: back to follower, keep the vote.
            self.role.set(ROLE_FOLLOWER.to_string());
        }
        if self.role.get() == ROLE_LEADER {
            return events;
        }
        let log_ok = prev_index == 0
            || (prev_index <= self.log.len() && self.log.term_at(prev_index) == prev_term);
        if !log_ok {
            events.push(self.send(Rpc::AppendReply {
                term: my_term,
                ok: false,
                match_index: 0,
                from: self.id,
                to: from,
            }));
            return events;
        }
        self.log.splice(prev_index, &entries);
        self.mirror_log();
        let match_len = prev_index + entries.len() as i64;
        let new_commit = (*self.commit.get()).max(commit.min(self.log.len()));
        self.commit.set(new_commit);
        events.push(self.send(Rpc::AppendReply {
            term: my_term,
            ok: true,
            match_index: match_len,
            from: self.id,
            to: from,
        }));
        events
    }

    fn on_append_reply(&mut self, wanted: &Value) -> Vec<MsgEvent> {
        let Some(rpc) = self.take(wanted) else {
            return Vec::new();
        };
        let events = vec![MsgEvent::Receive {
            pool: POOL.into(),
            msg: rpc.to_value(),
        }];
        let Rpc::AppendReply {
            term,
            ok,
            match_index,
            from,
            ..
        } = rpc
        else {
            return events;
        };
        if self.role.get() == ROLE_LEADER && term == *self.term.get() {
            if ok {
                self.next_index.insert(from, match_index + 1);
                self.match_index.insert(from, match_index);
            } else {
                let cur = self.next_index[&from];
                self.next_index.insert(from, (cur - 1).max(1));
            }
            self.mirror_indexes();
        }
        events
    }

    fn advance_commit(&mut self) -> Vec<MsgEvent> {
        if let Some(best) = self.computable_commit() {
            self.commit.set(best);
        }
        Vec::new()
    }

    fn computable_commit(&self) -> Option<i64> {
        let commit = *self.commit.get();
        let my_term = *self.term.get();
        let mut best = commit;
        for n in (commit + 1)..=self.log.len() {
            if self.log.term_at(n) != my_term {
                continue;
            }
            let acks = 1 + self
                .servers
                .iter()
                .filter(|&&j| j != self.id && self.match_index[&j] >= n)
                .count();
            if acks >= self.quorum() {
                best = n;
            }
        }
        (best > commit).then_some(best)
    }
}

impl NodeApp for SyncRaftNode {
    fn enabled(&mut self) -> Vec<ActionInstance> {
        let mut offers = Vec::new();
        let me = Value::Int(self.id as i64);
        let role = self.role.get().clone();

        if role != ROLE_LEADER {
            offers.push(ActionInstance::new("electionTimer", vec![me.clone()]));
        }
        if role == ROLE_CANDIDATE {
            for &j in &self.servers {
                if j != self.id && !self.voters.contains(&j) {
                    offers.push(ActionInstance::new(
                        "sendVoteRequest",
                        vec![me.clone(), Value::Int(j as i64)],
                    ));
                }
            }
            if self.voters.len() >= self.quorum() {
                offers.push(ActionInstance::new("electLeader", vec![me.clone()]));
            }
        }
        if role == ROLE_LEADER {
            for &j in &self.servers {
                if j != self.id
                    && (self.log.len() >= self.next_index[&j]
                        || *self.commit.get() > self.match_index[&j])
                {
                    offers.push(ActionInstance::new(
                        "sendEntries",
                        vec![me.clone(), Value::Int(j as i64)],
                    ));
                }
            }
            if self.computable_commit().is_some() {
                offers.push(ActionInstance::new("advanceCommit", vec![me.clone()]));
            }
        }

        for env in self.net.inbox(self.id) {
            let hook = match env.msg {
                Rpc::VoteCall { .. } => "onVoteRequest",
                Rpc::VoteReply { .. } => {
                    // Raft-java bug #1: after the first processed vote
                    // reply the callback is gone — later replies are
                    // discarded without ever notifying the testbed.
                    if self.bugs.ignore_extra_vote_response && self.vote_reply_seen {
                        continue;
                    }
                    "onVoteReply"
                }
                Rpc::AppendCall { .. } => "onAppendEntries",
                Rpc::AppendReply { .. } => "onAppendReply",
            };
            let offer = ActionInstance::new(hook, vec![env.msg.to_value()]);
            if !offers.contains(&offer) {
                offers.push(offer);
            }
            // The official spec's independent UpdateTerm, mapped onto
            // the stepDown region: only notifies standalone when the
            // adapter exposes it.
            if self.expose_update_term {
                let mterm = env.msg.to_value().expect_field("mterm").expect_int();
                if mterm > *self.term.get() {
                    let offer = ActionInstance::new("stepDown", vec![env.msg.to_value()]);
                    if !offers.contains(&offer) {
                        offers.push(offer);
                    }
                }
            }
        }
        offers
    }

    fn execute(&mut self, action: &ActionInstance) -> Vec<MsgEvent> {
        match action.name.as_str() {
            "electionTimer" => self.election_timer(),
            "sendVoteRequest" => self.send_vote_request(action.params[1].expect_int() as NodeId),
            "onVoteRequest" => self.on_vote_request(&action.params[0]),
            "onVoteReply" => self.on_vote_reply(&action.params[0]),
            "electLeader" => self.elect_leader(),
            "clientWrite" => self.client_write(action.params[0].expect_int()),
            "sendEntries" => self.send_entries(action.params[1].expect_int() as NodeId),
            "onAppendEntries" => self.on_append_entries(&action.params[0]),
            "onAppendReply" => self.on_append_reply(&action.params[0]),
            "advanceCommit" => self.advance_commit(),
            // Scheduling the stepDown region runs the *whole* handler
            // it lives in — the implementation cannot update the term
            // without also processing the message, which is exactly
            // the inconsistency the official spec's bug #1 causes.
            "stepDown" => {
                let m = &action.params[0];
                match m.expect_field("mtype").expect_str() {
                    "RequestVoteRequest" => self.on_vote_request(m),
                    "RequestVoteResponse" => self.on_vote_reply(m),
                    "AppendEntriesRequest" => self.on_append_entries(m),
                    _ => self.on_append_reply(m),
                }
            }
            other => panic!("unknown action {other}"),
        }
    }

    fn registry(&self) -> Arc<VarRegistry> {
        self.registry.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_dsnet::ClusterStorage;

    fn cluster(n: u64, bugs: SyncRaftBugs) -> (Vec<SyncRaftNode>, Arc<Net<Rpc>>) {
        let servers: Vec<NodeId> = (1..=n).collect();
        let net = Net::new(servers.iter().copied());
        let storage = ClusterStorage::new();
        let nodes = servers
            .iter()
            .map(|&id| {
                SyncRaftNode::new(
                    id,
                    servers.clone(),
                    bugs.clone(),
                    false,
                    net.clone(),
                    storage.for_node(id),
                )
            })
            .collect();
        (nodes, net)
    }

    fn exec(n: &mut SyncRaftNode, name: &str, params: Vec<Value>) -> Vec<MsgEvent> {
        n.execute(&ActionInstance::new(name, params))
    }

    #[test]
    fn election_without_noop() {
        let (mut nodes, net) = cluster(3, SyncRaftBugs::none());
        exec(&mut nodes[0], "electionTimer", vec![Value::Int(1)]);
        exec(
            &mut nodes[0],
            "sendVoteRequest",
            vec![Value::Int(1), Value::Int(2)],
        );
        let call = net.inbox(2)[0].msg.to_value();
        exec(&mut nodes[1], "onVoteRequest", vec![call]);
        let reply = net.inbox(1)[0].msg.to_value();
        exec(&mut nodes[0], "onVoteReply", vec![reply]);
        exec(&mut nodes[0], "electLeader", vec![Value::Int(1)]);
        assert_eq!(nodes[0].role.get(), ROLE_LEADER);
        assert!(nodes[0].log.is_empty(), "Raft-java appends no NoOp");
    }

    #[test]
    fn second_vote_reply_counts_when_conformant() {
        let (mut nodes, net) = cluster(3, SyncRaftBugs::none());
        exec(&mut nodes[0], "electionTimer", vec![Value::Int(1)]);
        for j in [2usize, 3] {
            exec(
                &mut nodes[0],
                "sendVoteRequest",
                vec![Value::Int(1), Value::Int(j as i64)],
            );
            let call = net.inbox(j as u64)[0].msg.to_value();
            exec(&mut nodes[j - 1], "onVoteRequest", vec![call]);
        }
        // Two replies waiting; both must be offered.
        let reply1 = net.inbox(1)[0].msg.to_value();
        exec(&mut nodes[0], "onVoteReply", vec![reply1]);
        let offers = nodes[0].enabled();
        assert!(
            offers.iter().any(|a| a.name == "onVoteReply"),
            "second reply still offered: {offers:?}"
        );
    }

    #[test]
    fn extra_vote_reply_discarded_with_bug() {
        let bugs = SyncRaftBugs {
            ignore_extra_vote_response: true,
            ..SyncRaftBugs::none()
        };
        let (mut nodes, net) = cluster(3, bugs);
        exec(&mut nodes[0], "electionTimer", vec![Value::Int(1)]);
        for j in [2usize, 3] {
            exec(
                &mut nodes[0],
                "sendVoteRequest",
                vec![Value::Int(1), Value::Int(j as i64)],
            );
            let call = net.inbox(j as u64)[0].msg.to_value();
            exec(&mut nodes[j - 1], "onVoteRequest", vec![call]);
        }
        let reply1 = net.inbox(1)[0].msg.to_value();
        exec(&mut nodes[0], "onVoteReply", vec![reply1]);
        let offers = nodes[0].enabled();
        assert!(
            !offers.iter().any(|a| a.name == "onVoteReply"),
            "the deregistered callback never notifies: {offers:?}"
        );
    }

    #[test]
    fn conflicting_entry_is_replaced_when_conformant() {
        let (mut nodes, net) = cluster(3, SyncRaftBugs::none());
        // Node 2 has a stale entry from term 2.
        nodes[1].step_down(2);
        nodes[1].log.append(LogEntry { term: 2, data: 1 });
        nodes[1].mirror_log();
        // Node 1 leads term 3 and ships a conflicting entry.
        exec(&mut nodes[0], "electionTimer", vec![Value::Int(1)]);
        exec(&mut nodes[0], "electionTimer", vec![Value::Int(1)]);
        nodes[0].elect_leader();
        nodes[0].client_write(9);
        exec(
            &mut nodes[0],
            "sendEntries",
            vec![Value::Int(1), Value::Int(2)],
        );
        let call = net.inbox(2)[0].msg.to_value();
        exec(&mut nodes[1], "onAppendEntries", vec![call]);
        assert_eq!(nodes[1].log.len(), 1);
        assert_eq!(nodes[1].log.get(1).unwrap().term, 3);
    }

    #[test]
    fn truncation_bug_keeps_conflicting_entry() {
        let bugs = SyncRaftBugs {
            log_truncation_bug: true,
            ..SyncRaftBugs::none()
        };
        let (mut nodes, net) = cluster(3, bugs);
        nodes[1].step_down(2);
        nodes[1].log.append(LogEntry { term: 2, data: 1 });
        nodes[1].mirror_log();
        exec(&mut nodes[0], "electionTimer", vec![Value::Int(1)]);
        exec(&mut nodes[0], "electionTimer", vec![Value::Int(1)]);
        nodes[0].elect_leader();
        nodes[0].client_write(9);
        exec(
            &mut nodes[0],
            "sendEntries",
            vec![Value::Int(1), Value::Int(2)],
        );
        let call = net.inbox(2)[0].msg.to_value();
        exec(&mut nodes[1], "onAppendEntries", vec![call]);
        assert_eq!(nodes[1].log.len(), 2, "the stale entry survived");
        assert_eq!(nodes[1].log.get(1).unwrap().term, 2);
    }
}
