//! SyncRaft: the Raft-java analog target system.
//!
//! An independently structured Raft implementation with synchronous
//! RPC-style communication, no drop/duplicate faults and no NoOp
//! entry on election (§5.2's Raft-java implementation choices). Two
//! seeded bug switches ([`SyncRaftBugs`]) reproduce the known
//! Raft-java bugs of Table 2, and the SUT adapter can map the
//! official specification's independent `UpdateTerm` for the two
//! specification-bug rows.

pub mod bugs;
pub mod logstore;
pub mod msg;
pub mod node;
pub mod sut;

pub use bugs::SyncRaftBugs;
pub use logstore::{LogEntry, LogStore};
pub use msg::Rpc;
pub use node::SyncRaftNode;
pub use sut::{
    make_sut, make_sut_backend, make_sut_full, make_sut_with_options,
    make_sut_with_options_backend, mapping,
};
