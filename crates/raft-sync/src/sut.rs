//! Wiring SyncRaft to Mocket: mapping, external driver, SUT factory.
//!
//! The sync-communication variant has no drop/duplicate faults
//! (§5.2), so its mapping omits the two overriding switches. The
//! official-specification testing of §6.1 additionally maps the
//! spec's independent `UpdateTerm` onto the implementation's
//! `stepDown` region (see [`make_sut_with_options`]).

use std::sync::Arc;

use mocket_core::mapping::{ActionBinding, MappingRegistry};
use mocket_core::sut::{int_param, ExecReport, SutError};
use mocket_dsnet::{ClusterStorage, Net, NodeId};
use mocket_runtime::{Backend, Cluster, ClusterSut, ExternalDriver};
use mocket_tla::{ActionClass, ActionInstance, Value};

use crate::bugs::SyncRaftBugs;

use crate::node::{SyncRaftNode, ROLE_CANDIDATE, ROLE_FOLLOWER, ROLE_LEADER};

/// The spec↔implementation mapping for SyncRaft.
///
/// `with_update_term` additionally binds the official spec's
/// `UpdateTerm` action to the `stepDown` code region (needed when
/// testing against [`mocket_specs::raft::RaftSpecConfig::official_buggy`]).
pub fn mapping(with_update_term: bool) -> MappingRegistry {
    let mut r = MappingRegistry::new();
    r.map_message_pool("messages", true)
        .map_class_field("state", "role")
        .map_class_field("currentTerm", "term")
        .map_class_field("votedFor", "votedFor")
        .map_class_field("votesGranted", "votes")
        .map_class_field("log", "log")
        .map_class_field("commitIndex", "commitIndex")
        .map_class_field("nextIndex", "nextIndex")
        .map_class_field("matchIndex", "matchIndex");
    r.map_action(
        "Timeout",
        "electionTimer",
        ActionClass::SingleNode,
        ActionBinding::Method,
    )
    .map_action(
        "RequestVote",
        "sendVoteRequest",
        ActionClass::MessageSend,
        ActionBinding::Method,
    )
    .map_action(
        "HandleRequestVoteRequest",
        "onVoteRequest",
        ActionClass::MessageReceive,
        ActionBinding::Method,
    )
    .map_action(
        "HandleRequestVoteResponse",
        "onVoteReply",
        ActionClass::MessageReceive,
        ActionBinding::Method,
    )
    .map_action(
        "BecomeLeader",
        "electLeader",
        ActionClass::SingleNode,
        ActionBinding::Method,
    )
    .map_action(
        "ClientRequest",
        "run_client.sh",
        ActionClass::UserRequest,
        ActionBinding::Script,
    )
    .map_action(
        "AppendEntries",
        "sendEntries",
        ActionClass::MessageSend,
        ActionBinding::Method,
    )
    .map_action(
        "HandleAppendEntriesRequest",
        "onAppendEntries",
        ActionClass::MessageReceive,
        ActionBinding::Method,
    )
    .map_action(
        "HandleAppendEntriesResponse",
        "onAppendReply",
        ActionClass::MessageReceive,
        ActionBinding::Method,
    )
    .map_action(
        "AdvanceCommitIndex",
        "advanceCommit",
        ActionClass::SingleNode,
        ActionBinding::Method,
    )
    .map_action(
        "Restart",
        "restart_node.sh",
        ActionClass::ExternalFault,
        ActionBinding::Script,
    )
    .map_action(
        "Crash",
        "kill_node.sh",
        ActionClass::ExternalFault,
        ActionBinding::Script,
    );
    if with_update_term {
        r.map_action(
            "UpdateTerm",
            "stepDown",
            ActionClass::MessageReceive,
            ActionBinding::Snippet,
        );
    }
    r.bind_const(Value::str("Follower"), Value::str(ROLE_FOLLOWER));
    r.bind_const(Value::str("Candidate"), Value::str(ROLE_CANDIDATE));
    r.bind_const(Value::str("Leader"), Value::str(ROLE_LEADER));
    r
}

struct SyncDriver {
    client_counter: i64,
}

impl ExternalDriver for SyncDriver {
    fn execute(
        &mut self,
        cluster: &mut Cluster,
        action: &ActionInstance,
    ) -> Result<ExecReport, SutError> {
        match action.name.as_str() {
            "ClientRequest" => {
                let leader = int_param(action, 0)? as NodeId;
                self.client_counter += 1;
                let events = cluster
                    .execute(
                        leader,
                        &ActionInstance::new("clientWrite", vec![Value::Int(self.client_counter)]),
                    )
                    .map_err(|e| SutError::External(e.to_string()))?;
                Ok(ExecReport { msg_events: events })
            }
            "Restart" => {
                cluster.restart(int_param(action, 0)? as NodeId);
                Ok(ExecReport::default())
            }
            "Crash" => {
                cluster.crash(int_param(action, 0)? as NodeId);
                Ok(ExecReport::default())
            }
            other => Err(SutError::External(format!(
                "unknown external action {other}"
            ))),
        }
    }
}

/// Builds a deployable SyncRaft cluster (conformant or with seeded
/// bugs).
pub fn make_sut(servers: Vec<NodeId>, bugs: SyncRaftBugs) -> ClusterSut {
    make_sut_with_options(servers, bugs, false)
}

/// [`make_sut`] on an explicit cluster backend (threads or
/// simulation).
pub fn make_sut_backend(servers: Vec<NodeId>, bugs: SyncRaftBugs, backend: Backend) -> ClusterSut {
    make_sut_with_options_backend(servers, bugs, false, backend)
}

/// [`make_sut`] plus the `expose_update_term` option: whether the
/// `stepDown` region notifies the testbed standalone. With `false`
/// (the natural mapping) the official spec's independent `UpdateTerm`
/// is a *missing action*; with `true` executing it runs the whole
/// handler and the message pool diverges (*inconsistent state*
/// `messages`) — the two spec-bug rows of Table 2.
pub fn make_sut_with_options(
    servers: Vec<NodeId>,
    bugs: SyncRaftBugs,
    expose_update_term: bool,
) -> ClusterSut {
    make_sut_with_options_backend(servers, bugs, expose_update_term, Backend::Threads)
}

/// [`make_sut_with_options`] on an explicit cluster backend.
pub fn make_sut_with_options_backend(
    servers: Vec<NodeId>,
    bugs: SyncRaftBugs,
    expose_update_term: bool,
    backend: Backend,
) -> ClusterSut {
    make_sut_full(servers, bugs, expose_update_term, backend, None)
}

/// [`make_sut_with_options_backend`] plus an optional seed-driven
/// fault plan installed on the network before deployment. Under
/// [`Backend::Sim`] the network additionally runs on the simulation's
/// shared virtual clock, so time-based delay faults and time-mode
/// partition heals mature in virtual time.
pub fn make_sut_full(
    servers: Vec<NodeId>,
    bugs: SyncRaftBugs,
    expose_update_term: bool,
    backend: Backend,
    fault_plan: Option<mocket_dsnet::FaultPlan>,
) -> ClusterSut {
    let net = Net::new(servers.iter().copied());
    if let Backend::Sim(handle) = &backend {
        net.set_clock(handle.clock.clone());
    }
    if let Some(plan) = fault_plan {
        net.install_fault_plan(plan);
    }
    let storage: Arc<ClusterStorage<Value>> = ClusterStorage::new();
    let factory_net = net.clone();
    let factory_servers = servers.clone();
    let cluster = Cluster::with_backend(
        Box::new(move |id| {
            Box::new(SyncRaftNode::new(
                id,
                factory_servers.clone(),
                bugs.clone(),
                expose_update_term,
                factory_net.clone(),
                storage.for_node(id),
            )) as Box<dyn mocket_runtime::NodeApp>
        }),
        backend,
    );
    let trace_net = net.clone();
    ClusterSut::new(cluster, servers, Box::new(SyncDriver { client_counter: 0 }))
        .with_tracer_hook(Box::new(move |t| trace_net.set_tracer(t.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_specs::raft::{RaftSpec, RaftSpecConfig};

    #[test]
    fn mapping_is_valid_for_the_sync_spec() {
        let spec = RaftSpec::new(RaftSpecConfig::raft_java(vec![1, 2, 3]));
        let issues = mapping(false).validate(&spec);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn official_spec_requires_update_term_mapping() {
        let spec = RaftSpec::new(RaftSpecConfig::official_buggy(vec![1, 2]));
        assert!(
            !mapping(false).validate(&spec).is_empty(),
            "UpdateTerm must be reported unmapped"
        );
        assert!(mapping(true).validate(&spec).is_empty());
    }
}
