//! Seeded bug switches for SyncRaft (the Raft-java bugs of Table 2).

/// The two known Raft-java bugs Mocket re-found.
#[derive(Debug, Clone, Default)]
pub struct SyncRaftBugs {
    /// Raft-java bug #1 (issue #3): the vote-response callback is
    /// deregistered after the first reply, so later replies are
    /// silently discarded. Verdict: missing action
    /// `HandleRequestVoteResponse`.
    pub ignore_extra_vote_response: bool,
    /// Raft-java bug #2 (issue #19): the conflicting-suffix truncation
    /// is off by one, keeping a conflicting entry. Verdict:
    /// inconsistent state `log`.
    pub log_truncation_bug: bool,
}

impl SyncRaftBugs {
    /// The conformant implementation.
    pub fn none() -> Self {
        SyncRaftBugs::default()
    }

    /// Whether any switch is on.
    pub fn any(&self) -> bool {
        self.ignore_extra_vote_response || self.log_truncation_bug
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_conformant() {
        assert!(!SyncRaftBugs::none().any());
    }
}
