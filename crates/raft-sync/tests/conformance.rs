//! End-to-end Mocket runs against SyncRaft, including the two
//! official-specification bug rows of Table 2.

use std::sync::Arc;

use mocket_core::{BugReport, Pipeline, PipelineConfig, RunConfig};
use mocket_raft_sync::{make_sut, make_sut_with_options, mapping, SyncRaftBugs};
use mocket_specs::raft::{RaftSpec, RaftSpecConfig};

/// Every inconsistent-state report must carry a divergence
/// explanation: a per-variable diff plus a nearest-verified-state
/// verdict, both rendered into the report text.
fn assert_explained(report: &BugReport) {
    let e = report
        .explanation
        .as_ref()
        .expect("inconsistent-state report must carry an explanation");
    assert!(
        !e.diffs.is_empty(),
        "explanation must diff at least one variable"
    );
    let rendered = report.to_string();
    assert!(rendered.contains("Explanation:"), "not rendered:\n{rendered}");
    assert!(
        rendered.contains("verified state"),
        "nearest-verified-state verdict missing:\n{rendered}"
    );
}

fn pipeline(
    cfg: RaftSpecConfig,
    with_update_term: bool,
    por: bool,
    stop_at_first: bool,
) -> Pipeline {
    let mut pc = PipelineConfig::default();
    pc.por = por;
    pc.stop_at_first_bug = stop_at_first;
    pc.run = RunConfig::fast();
    Pipeline::new(Arc::new(RaftSpec::new(cfg)), mapping(with_update_term), pc)
        .expect("mapping is valid")
}

#[test]
fn conformant_syncraft_passes_every_test_case() {
    let cfg = RaftSpecConfig::raft_java(vec![1, 2]);
    let p = pipeline(cfg, false, true, false);
    let result = p
        .run(|| Box::new(make_sut(vec![1, 2], SyncRaftBugs::none())));
    assert!(
        result.reports.is_empty(),
        "conformant run must be clean; first report:\n{}",
        result.reports[0]
    );
    assert_eq!(result.passed, result.effort.cases_run);
}

#[test]
fn conformant_syncraft_three_nodes_passes() {
    let mut cfg = RaftSpecConfig::raft_java(vec![1, 2, 3]);
    cfg.max_term = 2;
    cfg.candidates = Some(vec![1]);
    let p = pipeline(cfg, false, true, false);
    let result = p
        .run(|| Box::new(make_sut(vec![1, 2, 3], SyncRaftBugs::none())));
    assert!(
        result.reports.is_empty(),
        "conformant run must be clean; first report:\n{}",
        result.reports[0]
    );
}

#[test]
fn ignored_vote_response_is_missing_action() {
    // Raft-java bug #1: candidate 1 collects replies from 2 and 3;
    // the implementation drops the second one on the floor.
    let mut cfg = RaftSpecConfig::raft_java(vec![1, 2, 3]);
    cfg.max_term = 2;
    cfg.client_request_limit = 0;
    cfg.candidates = Some(vec![1]);
    let p = pipeline(cfg, false, false, true);
    let result = p
        .run(|| {
            Box::new(make_sut(
                vec![1, 2, 3],
                SyncRaftBugs {
                    ignore_extra_vote_response: true,
                    ..SyncRaftBugs::none()
                },
            ))
        });
    let report = result.reports.first().expect("bug must be detected");
    assert_eq!(report.inconsistency.kind(), "Missing action");
    assert_eq!(report.inconsistency.subject(), "HandleRequestVoteResponse");
}

#[test]
fn log_truncation_bug_is_inconsistent_log() {
    // Raft-java bug #2 (the deep one): two elections, a conflicting
    // entry, and an off-by-one truncation.
    let mut cfg = RaftSpecConfig::raft_java(vec![1, 2, 3]);
    cfg.max_term = 3;
    cfg.client_request_limit = 2;
    cfg.candidates = Some(vec![1, 2]);
    cfg.max_in_flight = 1;
    let mut pc = PipelineConfig::default();
    pc.por = false;
    pc.stop_at_first_bug = true;
    pc.max_path_len = 40;
    // Focus on the scenario class (§4.2.1's developer-guided
    // scoping): two elections and both client writes.
    pc.case_filter = Some(Arc::new(|names: &[&str]| {
        names.iter().filter(|n| **n == "BecomeLeader").count() >= 2
            && names.iter().filter(|n| **n == "ClientRequest").count() >= 2
    }));
    let p =
        Pipeline::new(Arc::new(RaftSpec::new(cfg)), mapping(false), pc).expect("mapping is valid");
    let result = p
        .run(|| {
            Box::new(make_sut(
                vec![1, 2, 3],
                SyncRaftBugs {
                    log_truncation_bug: true,
                    ..SyncRaftBugs::none()
                },
            ))
        });
    let report = result.reports.first().expect("bug must be detected");
    assert_eq!(report.inconsistency.kind(), "Inconsistent state");
    assert_eq!(report.inconsistency.subject(), "log");
    assert_explained(report);
}

#[test]
fn spec_bug_missing_reply_manifests_quickly() {
    // Official-spec bug #2 (Figure 11): the return-to-follower branch
    // neither consumes nor replies; the conformant implementation does
    // both in one step, so the message pool diverges. Needs a
    // candidate receiving a same-term AppendEntries: three servers,
    // two rival candidates.
    let mut cfg = RaftSpecConfig::raft_java(vec![1, 2, 3]);
    cfg.max_term = 2;
    cfg.candidates = Some(vec![1, 3]);
    cfg.bug_missing_reply = true;
    let p = pipeline(cfg, false, false, true);
    let result = p
        .run(|| Box::new(make_sut(vec![1, 2, 3], SyncRaftBugs::none())));
    let report = result.reports.first().expect("spec bug must surface");
    assert_eq!(report.inconsistency.kind(), "Inconsistent state");
    assert_eq!(report.inconsistency.subject(), "messages");
    assert_explained(report);
}

#[test]
fn official_spec_update_term_is_missing_action_without_mapping_region() {
    // Official spec, natural mapping: the implementation has no
    // standalone UpdateTerm, so the first scheduled UpdateTerm is a
    // missing action (Table 2, Raft-spec issue #2).
    let cfg = RaftSpecConfig::official_buggy(vec![1, 2]);
    let p = pipeline(cfg, true, false, true);
    let result = p
        .run(|| {
            Box::new(make_sut_with_options(
                vec![1, 2],
                SyncRaftBugs::none(),
                false,
            ))
        });
    let report = result.reports.first().expect("spec bug must surface");
    assert_eq!(report.inconsistency.kind(), "Missing action");
    assert_eq!(report.inconsistency.subject(), "UpdateTerm");
    // The paper's Table 2 reports this row at 5 actions; the exact
    // length depends on traversal order, but it stays shallow.
    assert!(
        report.test_case.len() <= 40,
        "manifests early: {}",
        report.test_case.len()
    );
}

#[test]
fn official_spec_update_term_is_inconsistent_messages_with_mapping_region() {
    // Official spec, stepDown-region mapping: executing UpdateTerm
    // runs the whole handler, so the message the spec keeps in flight
    // is consumed (Table 2, Raft-spec issue #1).
    let cfg = RaftSpecConfig::official_buggy(vec![1, 2]);
    let p = pipeline(cfg, true, false, true);
    let result = p
        .run(|| {
            Box::new(make_sut_with_options(
                vec![1, 2],
                SyncRaftBugs::none(),
                true,
            ))
        });
    let report = result.reports.first().expect("spec bug must surface");
    assert_eq!(report.inconsistency.kind(), "Inconsistent state");
    assert_eq!(report.inconsistency.subject(), "messages");
    assert_explained(report);
}
