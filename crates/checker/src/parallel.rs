//! Parallel deterministic state-space exploration.
//!
//! TLC explores in parallel with a fingerprint-sharded dedup table;
//! this module does the same while keeping one guarantee TLC does not
//! give: the resulting [`StateGraph`] — node numbering, edge order,
//! DOT export, statistics, even the counterexample on an invariant
//! violation — is **byte-identical to the sequential checker** for any
//! worker count and any bound configuration.
//!
//! The engine is wave-synchronized. Exploration proceeds over BFS
//! frontiers ("waves"):
//!
//! 1. **Expand** — worker threads pull contiguous frontier chunks from
//!    a shared work queue (an atomic cursor over the canonical
//!    frontier order) and compute every successor with the spec's
//!    action closures — the expensive part. Each successor is hashed
//!    once and probed against the graph's fingerprint index (sharded
//!    by `fp % N_SHARDS`, striped read locks): states known from
//!    earlier waves resolve to their canonical id on the worker;
//!    unknown ones travel to the merge as `(state, fp)` payloads.
//!    The graph is immutably shared during a wave, so probes never
//!    contend with a writer.
//! 2. **Merge** — the coordinator replays chunk results in canonical
//!    frontier order, replicating the sequential checker's exact
//!    decision sequence: the `max_states` bound is consulted before
//!    each node's results are consumed, depth/constraint cuts apply
//!    per node, intra-wave duplicates deduplicate through the same
//!    fingerprint index, edges append through the same
//!    duplicate-merging `add_edge`, and invariants run on each newly
//!    inserted state in discovery order — so the first violation and
//!    its shortest BFS counterexample trace match the sequential
//!    checker's exactly.
//!
//! Because ids are only ever assigned during the canonical-order
//! merge, no renumbering pass is needed: canonical (stable BFS)
//! numbering is identical to what the sequential checker produces,
//! regardless of how chunks interleaved across threads.
//!
//! Narrow waves (fewer nodes than `workers * SEQ_WAVE_FACTOR`) are
//! expanded inline on the coordinator: a two-node frontier cannot feed
//! four threads, and skipping the scoped spawn keeps tiny models as
//! fast as the purely sequential path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use mocket_tla::{successors_with, ActionDef, ActionInstance, State};
use parking_lot::Mutex;

use crate::explore::{finish_obs, wave_event, CheckResult, CheckStats, ModelChecker, WorkerStats};
use crate::graph::{EdgeId, NodeId, StateGraph};

/// A frontier narrower than `workers * SEQ_WAVE_FACTOR` is expanded
/// inline instead of being fanned out to threads.
const SEQ_WAVE_FACTOR: usize = 4;

/// Upper bound on chunk size: small enough for dynamic load balancing
/// when successor costs are skewed, large enough to amortize the
/// work-queue cursor.
const MAX_CHUNK: usize = 256;

/// A successor produced by a worker, before canonical numbering.
enum SuccOut {
    /// Already in the graph (discovered in an earlier wave).
    Known(NodeId),
    /// Not in the pre-wave graph; carries the state and its
    /// fingerprint. May still turn out to be an intra-wave duplicate —
    /// the merge resolves that through the fingerprint index.
    Fresh(State, u64),
}

/// What a worker decided about one frontier node.
enum NodeOut {
    /// `depth >= max_depth`: kept but not expanded (marks truncation).
    DepthCut,
    /// The state constraint failed: kept but not expanded.
    ConstraintCut,
    /// Expanded: the successor list in spec action order.
    Expanded(Vec<(ActionInstance, SuccOut)>),
}

/// Runs the wave-synchronized parallel exploration. Only called with
/// `checker.workers >= 2`.
pub(crate) fn run(checker: ModelChecker) -> CheckResult {
    let start = checker.clock.now();
    let workers = checker.workers;
    let actions = checker.spec.actions();
    let mut graph = StateGraph::new();
    let mut stats = CheckStats::default();
    let mut per_worker = vec![WorkerStats::default(); workers];
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = Vec::new();
    let mut depth: Vec<usize> = Vec::new();
    let mut violation = None;
    let mut frontier: Vec<NodeId> = Vec::new();
    let mut wave = 0usize;
    let mut wave_start = start;

    'outer: {
        // Initial states are processed exactly like the sequential
        // checker: in spec order, on the coordinator.
        for init in checker.spec.init_states() {
            stats.states_generated += 1;
            let (id, new) = graph.insert_state(init);
            graph.mark_initial(id);
            if new {
                parent.push(None);
                depth.push(0);
                if let Some(v) = checker.check_invariants(&graph, id, &parent) {
                    violation = Some(v);
                    break 'outer;
                }
                frontier.push(id);
            }
        }

        while !frontier.is_empty() {
            let outs = expand_wave(
                &checker,
                &actions,
                &graph,
                &frontier,
                &depth,
                workers,
                &mut per_worker,
            );

            // Merge in canonical frontier order, replicating the
            // sequential checker's decision sequence exactly.
            let mut next_frontier = Vec::new();
            for (i, out) in outs.into_iter().enumerate() {
                let node = frontier[i];
                if graph.state_count() >= checker.max_states {
                    stats.truncated = true;
                    break 'outer;
                }
                match out {
                    NodeOut::DepthCut => stats.truncated = true,
                    NodeOut::ConstraintCut => {}
                    NodeOut::Expanded(succs) => {
                        let d = depth[node.0] + 1;
                        for (action, succ) in succs {
                            stats.states_generated += 1;
                            let (id, new) = match succ {
                                SuccOut::Known(id) => (id, false),
                                SuccOut::Fresh(state, fp) => {
                                    graph.insert_with_fingerprint(state, fp)
                                }
                            };
                            let eid = graph.add_edge(node, action, id);
                            if new {
                                parent.push(Some((node, eid)));
                                depth.push(d);
                                if let Some(v) = checker.check_invariants(&graph, id, &parent) {
                                    violation = Some(v);
                                    break 'outer;
                                }
                                next_frontier.push(id);
                            }
                        }
                    }
                }
            }
            let now = checker.clock.now();
            wave_event(
                &checker.obs,
                wave,
                frontier.len(),
                &stats,
                &graph,
                now.saturating_sub(wave_start).as_secs_f64(),
            );
            wave_start = now;
            wave += 1;
            frontier = next_frontier;
        }
    }

    graph.finish();
    stats.distinct_states = graph.state_count();
    stats.edges = graph.edge_count();
    stats.depth = depth.iter().copied().max().unwrap_or(0);
    stats.elapsed = checker.clock.now().saturating_sub(start);
    stats.workers = workers;
    stats.per_worker = per_worker;
    finish_obs(&checker.obs, &stats, violation.is_some());
    CheckResult {
        graph,
        stats,
        violation,
    }
}

/// Expands one frontier wave, returning one [`NodeOut`] per frontier
/// node, in frontier order.
fn expand_wave(
    checker: &ModelChecker,
    actions: &[ActionDef],
    graph: &StateGraph,
    frontier: &[NodeId],
    depth: &[usize],
    workers: usize,
    per_worker: &mut [WorkerStats],
) -> Vec<NodeOut> {
    // One read acquisition of every index shard for the whole wave;
    // workers resolve successors through the view without touching a
    // lock again. Dropped (releasing the locks) before this function
    // returns, so the merge is free to write.
    let reader = graph.read_index();
    let expand_one = |node: NodeId, tally: &mut WorkerStats| -> NodeOut {
        if depth[node.0] >= checker.max_depth {
            return NodeOut::DepthCut;
        }
        if let Some(c) = &checker.constraint {
            if !c(graph.state(node)) {
                return NodeOut::ConstraintCut;
            }
        }
        let succ = successors_with(actions, graph.state(node));
        tally.nodes_expanded += 1;
        tally.states_generated += succ.len();
        NodeOut::Expanded(
            succ.into_iter()
                .map(|(action, next)| {
                    let fp = next.fingerprint();
                    match reader.resolve(fp, &next) {
                        Some(id) => (action, SuccOut::Known(id)),
                        None => (action, SuccOut::Fresh(next, fp)),
                    }
                })
                .collect(),
        )
    };

    if frontier.len() < workers * SEQ_WAVE_FACTOR {
        // Too narrow to feed the thread pool; expand inline.
        return frontier
            .iter()
            .map(|&n| expand_one(n, &mut per_worker[0]))
            .collect();
    }

    let chunk = (frontier.len() / (workers * SEQ_WAVE_FACTOR))
        .clamp(1, MAX_CHUNK);
    let n_chunks = frontier.len().div_ceil(chunk);
    let slots: Vec<Mutex<Vec<NodeOut>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
    let cursor = AtomicUsize::new(0);
    let slots_ref = &slots;
    let cursor_ref = &cursor;
    let expand_ref = &expand_one;

    let mut wave_tallies = vec![WorkerStats::default(); workers];
    let obs = &checker.obs;
    std::thread::scope(|scope| {
        for tally in &mut wave_tallies {
            scope.spawn(move || {
                let started = Instant::now();
                loop {
                    let ci = cursor_ref.fetch_add(1, Ordering::Relaxed);
                    if ci >= n_chunks {
                        break;
                    }
                    let lo = ci * chunk;
                    let hi = (lo + chunk).min(frontier.len());
                    let outs: Vec<NodeOut> = frontier[lo..hi]
                        .iter()
                        .map(|&n| expand_ref(n, tally))
                        .collect();
                    *slots_ref[ci].lock() = outs;
                }
                // Per-worker wave throughput. Timing metrics are
                // wall-clock territory (commutative histogram merge,
                // excluded from deterministic comparisons); worker
                // threads never record events.
                let secs = started.elapsed().as_secs_f64();
                if secs > 0.0 && tally.states_generated > 0 {
                    obs.metrics().observe(
                        "timing.checker.worker_wave_states_per_sec",
                        tally.states_generated as f64 / secs,
                    );
                }
            });
        }
    });
    for (agg, wave) in per_worker.iter_mut().zip(wave_tallies) {
        agg.nodes_expanded += wave.nodes_expanded;
        agg.states_generated += wave.states_generated;
    }

    slots
        .into_iter()
        .flat_map(|slot| slot.into_inner())
        .collect()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::dot::to_dot;
    use crate::invariant::Invariant;
    use mocket_tla::{ActionClass, Spec, Value, VarClass, VarDef};

    /// A two-counter spec with a wide frontier: `a` and `b` count
    /// independently, so level `d` has ~d states and the wave engine
    /// actually fans out.
    struct Grid {
        limit: i64,
    }

    impl Spec for Grid {
        fn name(&self) -> &str {
            "Grid"
        }

        fn variables(&self) -> Vec<VarDef> {
            vec![
                VarDef::new("a", VarClass::StateRelated),
                VarDef::new("b", VarClass::StateRelated),
            ]
        }

        fn init_states(&self) -> Vec<State> {
            vec![State::from_pairs([
                ("a", Value::Int(0)),
                ("b", Value::Int(0)),
            ])]
        }

        fn actions(&self) -> Vec<ActionDef> {
            let limit = self.limit;
            vec![
                ActionDef::nullary("IncA", ActionClass::SingleNode, move |s| {
                    let a = s.expect("a").expect_int();
                    (a < limit).then(|| s.with("a", Value::Int(a + 1)))
                }),
                ActionDef::nullary("IncB", ActionClass::SingleNode, move |s| {
                    let b = s.expect("b").expect_int();
                    (b < limit).then(|| s.with("b", Value::Int(b + 1)))
                }),
                ActionDef::nullary("Swap", ActionClass::SingleNode, |s| {
                    let a = s.expect("a").expect_int();
                    let b = s.expect("b").expect_int();
                    (a != b).then(|| {
                        s.with("a", Value::Int(b)).with("b", Value::Int(a))
                    })
                }),
            ]
        }
    }

    fn check(spec: Grid, workers: usize) -> CheckResult {
        ModelChecker::new(Arc::new(spec)).workers(workers).run()
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let seq = check(Grid { limit: 12 }, 1);
        let par = check(Grid { limit: 12 }, 4);
        assert_eq!(seq.stats.distinct_states, par.stats.distinct_states);
        assert_eq!(seq.stats.edges, par.stats.edges);
        assert_eq!(seq.stats.states_generated, par.stats.states_generated);
        assert_eq!(seq.stats.depth, par.stats.depth);
        assert_eq!(to_dot(&seq.graph), to_dot(&par.graph));
        assert_eq!(par.stats.workers, 4);
        assert_eq!(par.stats.per_worker.len(), 4);
        let expanded: usize = par.stats.per_worker.iter().map(|w| w.nodes_expanded).sum();
        assert_eq!(expanded, par.stats.distinct_states);
    }

    #[test]
    fn parallel_respects_max_states_identically() {
        let seq = ModelChecker::new(Arc::new(Grid { limit: 40 }))
            .workers(1)
            .max_states(500)
            .run();
        let par = ModelChecker::new(Arc::new(Grid { limit: 40 }))
            .workers(4)
            .max_states(500)
            .run();
        assert!(seq.stats.truncated && par.stats.truncated);
        assert_eq!(seq.stats.distinct_states, par.stats.distinct_states);
        assert_eq!(seq.stats.states_generated, par.stats.states_generated);
        assert_eq!(to_dot(&seq.graph), to_dot(&par.graph));
    }

    #[test]
    fn parallel_respects_max_depth_identically() {
        let seq = ModelChecker::new(Arc::new(Grid { limit: 40 }))
            .workers(1)
            .max_depth(9)
            .run();
        let par = ModelChecker::new(Arc::new(Grid { limit: 40 }))
            .workers(3)
            .max_depth(9)
            .run();
        assert!(seq.stats.truncated && par.stats.truncated);
        assert_eq!(seq.stats.depth, par.stats.depth);
        assert_eq!(to_dot(&seq.graph), to_dot(&par.graph));
    }

    #[test]
    fn parallel_constraint_matches() {
        let constrain = |s: &State| s.expect("a").expect_int() + s.expect("b").expect_int() < 14;
        let seq = ModelChecker::new(Arc::new(Grid { limit: 20 }))
            .workers(1)
            .constraint(constrain)
            .run();
        let par = ModelChecker::new(Arc::new(Grid { limit: 20 }))
            .workers(4)
            .constraint(constrain)
            .run();
        assert_eq!(to_dot(&seq.graph), to_dot(&par.graph));
    }

    #[test]
    fn parallel_violation_matches_sequential_trace() {
        let inv = || {
            Invariant::new("SumBelow", |s: &State| {
                s.expect("a").expect_int() + s.expect("b").expect_int() < 17
            })
        };
        let seq = ModelChecker::new(Arc::new(Grid { limit: 20 }))
            .workers(1)
            .invariant(inv())
            .run();
        let par = ModelChecker::new(Arc::new(Grid { limit: 20 }))
            .workers(4)
            .invariant(inv())
            .run();
        let vs = seq.violation.expect("sequential must violate");
        let vp = par.violation.expect("parallel must violate");
        assert_eq!(vs.invariant, vp.invariant);
        assert_eq!(vs.state, vp.state);
        // Same shortest counterexample, step for step.
        assert_eq!(vs.trace.len(), vp.trace.len());
        for ((sa, ss), (pa, ps)) in vs.trace.iter().zip(vp.trace.iter()) {
            assert_eq!(sa, pa);
            assert_eq!(ss, ps);
        }
        // And the partially explored graphs agree too.
        assert_eq!(to_dot(&seq.graph), to_dot(&par.graph));
    }

    #[test]
    fn event_stream_is_identical_across_worker_counts() {
        use mocket_obs::Obs;
        let run = |workers: usize, max_states: usize| {
            let (obs, rec) = Obs::in_memory();
            ModelChecker::new(Arc::new(Grid { limit: 12 }))
                .workers(workers)
                .max_states(max_states)
                .obs(obs.clone())
                .run();
            rec.to_jsonl()
        };
        // Full exploration and a mid-wave bound hit must both produce
        // byte-identical wave/done events for every worker count.
        for max_states in [usize::MAX, 60] {
            let base = run(1, max_states);
            assert!(base.contains("check.wave"));
            assert!(base.contains("check.done"));
            for workers in [2, 4] {
                assert_eq!(
                    run(workers, max_states),
                    base,
                    "workers={workers} max_states={max_states}"
                );
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let base = to_dot(&check(Grid { limit: 9 }, 1).graph);
        for workers in [2, 3, 5, 8] {
            let r = check(Grid { limit: 9 }, workers);
            assert_eq!(to_dot(&r.graph), base, "workers={workers}");
        }
    }
}
