//! Explicit-state exploration (the TLC analog, §2.2).
//!
//! The checker starts from the `Init` states and applies every enabled
//! action to every frontier state, breadth-first, deduplicating by
//! fingerprint, until the space is exhausted, a bound is hit, or an
//! invariant is violated. The product is the [`StateGraph`] that
//! drives Mocket's test-case generation.
//!
//! Exploration runs on [`ModelChecker::workers`] threads by default
//! (like TLC's parallel fingerprint-sharded checker); the parallel
//! engine in [`crate::parallel`] guarantees output byte-identical to
//! the sequential checker for any worker count.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use mocket_obs::Obs;
use mocket_sim::{Clock, RealClock};
use mocket_tla::{successors_with, Spec, State};

use crate::graph::{EdgeId, NodeId, StateGraph};
use crate::invariant::{Invariant, Violation};

/// What one exploration worker did (diagnostic; the distribution is
/// scheduling-dependent and not part of the determinism guarantee).
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Frontier states this worker expanded.
    pub nodes_expanded: usize,
    /// Successor states this worker generated (including revisits and
    /// expansions discarded by a bound hit during the merge).
    pub states_generated: usize,
}

/// Exploration statistics, mirroring TLC's progress report.
#[derive(Debug, Clone, Default)]
pub struct CheckStats {
    /// States generated (including revisits).
    pub states_generated: usize,
    /// Distinct states kept.
    pub distinct_states: usize,
    /// Edges recorded.
    pub edges: usize,
    /// BFS depth reached.
    pub depth: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Whether exploration stopped at a bound rather than a fixpoint.
    pub truncated: bool,
    /// Worker threads used.
    pub workers: usize,
    /// Per-worker expansion counts (length = `workers`).
    pub per_worker: Vec<WorkerStats>,
}

/// Outcome of a model-checking run.
#[derive(Debug)]
pub struct CheckResult {
    /// The full state-space graph of everything explored.
    pub graph: StateGraph,
    /// Exploration statistics.
    pub stats: CheckStats,
    /// The first invariant violation, if any.
    pub violation: Option<Violation>,
}

impl CheckResult {
    /// Whether the run completed without violations.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// A configurable explicit-state model checker.
pub struct ModelChecker {
    pub(crate) spec: Arc<dyn Spec>,
    pub(crate) invariants: Vec<Invariant>,
    pub(crate) constraint: Option<Arc<dyn Fn(&State) -> bool + Send + Sync>>,
    pub(crate) max_states: usize,
    pub(crate) max_depth: usize,
    pub(crate) workers: usize,
    pub(crate) obs: Obs,
    pub(crate) clock: Arc<dyn Clock>,
}

impl ModelChecker {
    /// Creates a checker for `spec` with no invariants, no bounds, and
    /// one worker per available core.
    pub fn new(spec: Arc<dyn Spec>) -> Self {
        ModelChecker {
            spec,
            invariants: Vec::new(),
            constraint: None,
            max_states: usize::MAX,
            max_depth: usize::MAX,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            obs: Obs::disabled(),
            clock: Arc::new(RealClock::new()),
        }
    }

    /// Sets the clock `elapsed` and throughput figures are measured
    /// on. Simulation runs install their shared virtual clock so the
    /// whole run summary — wall-clock section included — is
    /// deterministic per seed.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches an observability handle. Wave progress events
    /// (`check.wave`) and `checker.*` metrics flow through it; the
    /// event stream is byte-identical for any worker count, because
    /// events are emitted only at canonical wave boundaries.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Adds an invariant to check on every state.
    pub fn invariant(mut self, inv: Invariant) -> Self {
        self.invariants.push(inv);
        self
    }

    /// Adds a state constraint: states failing it are kept in the
    /// graph but not expanded (TLC's `CONSTRAINT`).
    pub fn constraint<F>(mut self, f: F) -> Self
    where
        F: Fn(&State) -> bool + Send + Sync + 'static,
    {
        self.constraint = Some(Arc::new(f));
        self
    }

    /// Bounds the number of distinct states.
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Bounds the BFS depth.
    pub fn max_depth(mut self, n: usize) -> Self {
        self.max_depth = n;
        self
    }

    /// Sets the number of exploration threads. `1` runs the exact
    /// sequential code path; any other count produces byte-identical
    /// graphs, DOT exports and statistics (wall-clock and per-worker
    /// breakdowns aside). `0` is clamped to `1`.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Runs the exploration to fixpoint (or bound / violation).
    pub fn run(self) -> CheckResult {
        if self.workers <= 1 {
            self.run_sequential()
        } else {
            crate::parallel::run(self)
        }
    }

    fn run_sequential(self) -> CheckResult {
        let start = self.clock.now();
        let mut graph = StateGraph::new();
        let mut stats = CheckStats::default();
        // Parent links for counterexample reconstruction: for each
        // node, the (parent, edge) that first discovered it.
        let mut parent: Vec<Option<(NodeId, EdgeId)>> = Vec::new();
        let mut depth: Vec<usize> = Vec::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut violation = None;
        // Build the action list once; closures are reused across the
        // whole exploration.
        let actions = self.spec.actions();
        // Wave accounting for observability: wave d = the BFS frontier
        // at depth d. A `check.wave` event fires when a wave finishes
        // expanding — the same canonical points where the parallel
        // engine emits after its merge, so event streams are
        // byte-identical for any worker count.
        let mut wave_sizes: Vec<usize> = Vec::new();
        let mut cur_wave = 0usize;
        let mut wave_start = start;
        let mut bound_break = false;

        'outer: {
            for init in self.spec.init_states() {
                stats.states_generated += 1;
                let (id, new) = graph.insert_state(init);
                graph.mark_initial(id);
                if new {
                    debug_assert_eq!(parent.len(), id.0);
                    parent.push(None);
                    depth.push(0);
                    if let Some(v) = self.check_invariants(&graph, id, &parent) {
                        violation = Some(v);
                        break 'outer;
                    }
                    queue.push_back(id);
                }
            }
            if !queue.is_empty() {
                wave_sizes.push(queue.len());
            }

            while let Some(node) = queue.pop_front() {
                if depth[node.0] != cur_wave {
                    // First node of the next wave: the previous wave
                    // is fully expanded.
                    let now = self.clock.now();
                    wave_event(
                        &self.obs,
                        cur_wave,
                        wave_sizes[cur_wave],
                        &stats,
                        &graph,
                        now.saturating_sub(wave_start).as_secs_f64(),
                    );
                    wave_start = now;
                    cur_wave = depth[node.0];
                }
                if graph.state_count() >= self.max_states {
                    stats.truncated = true;
                    bound_break = true;
                    break;
                }
                if depth[node.0] >= self.max_depth {
                    stats.truncated = true;
                    continue;
                }
                if let Some(c) = &self.constraint {
                    if !c(graph.state(node)) {
                        continue;
                    }
                }
                let succ = successors_with(&actions, graph.state(node));
                for (action, next) in succ {
                    stats.states_generated += 1;
                    let (id, new) = graph.insert_state(next);
                    let eid = graph.add_edge(node, action, id);
                    if new {
                        debug_assert_eq!(parent.len(), id.0);
                        parent.push(Some((node, eid)));
                        depth.push(depth[node.0] + 1);
                        if let Some(v) = self.check_invariants(&graph, id, &parent) {
                            violation = Some(v);
                            break 'outer;
                        }
                        let d = depth[id.0];
                        if wave_sizes.len() <= d {
                            wave_sizes.resize(d + 1, 0);
                        }
                        wave_sizes[d] += 1;
                        queue.push_back(id);
                    }
                }
            }
            if !bound_break && cur_wave < wave_sizes.len() {
                let now = self.clock.now();
                wave_event(
                    &self.obs,
                    cur_wave,
                    wave_sizes[cur_wave],
                    &stats,
                    &graph,
                    now.saturating_sub(wave_start).as_secs_f64(),
                );
            }
        }

        graph.finish();
        stats.distinct_states = graph.state_count();
        stats.edges = graph.edge_count();
        stats.depth = depth.iter().copied().max().unwrap_or(0);
        stats.elapsed = self.clock.now().saturating_sub(start);
        stats.workers = 1;
        stats.per_worker = vec![WorkerStats {
            nodes_expanded: stats.distinct_states,
            states_generated: stats.states_generated,
        }];
        finish_obs(&self.obs, &stats, violation.is_some());
        CheckResult {
            graph,
            stats,
            violation,
        }
    }

    pub(crate) fn check_invariants(
        &self,
        graph: &StateGraph,
        id: NodeId,
        parent: &[Option<(NodeId, EdgeId)>],
    ) -> Option<Violation> {
        let state = graph.state(id);
        for inv in &self.invariants {
            if !inv.holds(state) {
                return Some(Violation {
                    invariant: inv.name.clone(),
                    state: state.clone(),
                    trace: reconstruct_trace(graph, id, parent),
                });
            }
        }
        None
    }
}

/// Emits the canonical end-of-wave progress event. Called by both
/// engines at the same logical points, with the same payloads.
pub(crate) fn wave_event(
    obs: &Obs,
    wave: usize,
    frontier: usize,
    stats: &CheckStats,
    graph: &StateGraph,
    wave_seconds: f64,
) {
    obs.event(
        "check.wave",
        wave as u64,
        vec![
            ("frontier", frontier.into()),
            ("generated", stats.states_generated.into()),
            ("distinct", graph.state_count().into()),
            ("edges", graph.edge_count().into()),
        ],
    );
    obs.metrics().add("checker.waves", 1);
    // Self-profiling histogram; measured on the builder's clock, so
    // virtual (and deterministic) under simulation.
    obs.metrics()
        .observe("timing.profile.checker_wave_seconds", wave_seconds);
}

/// Records the end-of-run event and final checker metrics. Worker
/// count and wall-clock go to metrics only, so the event stream stays
/// identical across worker counts.
pub(crate) fn finish_obs(obs: &Obs, stats: &CheckStats, violated: bool) {
    obs.event(
        "check.done",
        stats.depth as u64,
        vec![
            ("states", stats.distinct_states.into()),
            ("edges", stats.edges.into()),
            ("generated", stats.states_generated.into()),
            ("truncated", stats.truncated.into()),
            ("violation", violated.into()),
        ],
    );
    let m = obs.metrics();
    m.add("checker.states_generated", stats.states_generated as u64);
    m.add("checker.distinct_states", stats.distinct_states as u64);
    m.add("checker.edges", stats.edges as u64);
    m.set_gauge("checker.depth", stats.depth as f64);
    m.set_gauge("checker.workers", stats.workers as f64);
    m.observe(
        "timing.checker.elapsed_seconds",
        stats.elapsed.as_secs_f64(),
    );
    if stats.elapsed.as_secs_f64() > 0.0 {
        m.observe(
            "timing.checker.states_per_sec",
            stats.states_generated as f64 / stats.elapsed.as_secs_f64(),
        );
    }
    obs.flush();
}

/// Walks parent links back to an initial state and returns the
/// behavior in forward order.
fn reconstruct_trace(
    graph: &StateGraph,
    id: NodeId,
    parent: &[Option<(NodeId, EdgeId)>],
) -> Vec<(Option<mocket_tla::ActionInstance>, State)> {
    let mut rev = Vec::new();
    let mut cur = id;
    loop {
        match parent[cur.0] {
            Some((p, eid)) => {
                rev.push((
                    Some(graph.edge(eid).action.clone()),
                    graph.state(cur).clone(),
                ));
                cur = p;
            }
            None => {
                rev.push((None, graph.state(cur).clone()));
                break;
            }
        }
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::{ActionClass, ActionDef, Value, VarClass, VarDef};

    /// `n` counts 0..=limit with `Inc`; `Reset` returns to 0.
    pub(crate) struct Clock {
        pub(crate) limit: i64,
    }

    impl Spec for Clock {
        fn name(&self) -> &str {
            "Clock"
        }

        fn variables(&self) -> Vec<VarDef> {
            vec![VarDef::new("n", VarClass::StateRelated)]
        }

        fn init_states(&self) -> Vec<State> {
            vec![State::from_pairs([("n", Value::Int(0))])]
        }

        fn actions(&self) -> Vec<ActionDef> {
            let limit = self.limit;
            vec![
                ActionDef::nullary("Inc", ActionClass::SingleNode, move |s| {
                    let n = s.expect("n").expect_int();
                    (n < limit).then(|| s.with("n", Value::Int(n + 1)))
                }),
                ActionDef::nullary("Reset", ActionClass::SingleNode, |s| {
                    let n = s.expect("n").expect_int();
                    (n > 0).then(|| s.with("n", Value::Int(0)))
                }),
            ]
        }
    }

    #[test]
    fn explores_to_fixpoint() {
        let r = ModelChecker::new(Arc::new(Clock { limit: 5 })).run();
        assert!(r.ok());
        assert_eq!(r.stats.distinct_states, 6);
        // Inc edges: 5; Reset edges from 1..=5: 5.
        assert_eq!(r.stats.edges, 10);
        assert!(!r.stats.truncated);
        assert_eq!(r.graph.initial_states().len(), 1);
        assert_eq!(r.stats.depth, 5);
    }

    #[test]
    fn invariant_violation_yields_trace() {
        let r = ModelChecker::new(Arc::new(Clock { limit: 5 }))
            .invariant(Invariant::new("Below3", |s| s.expect("n").expect_int() < 3))
            .run();
        let v = r.violation.expect("must violate");
        assert_eq!(v.invariant, "Below3");
        assert_eq!(v.state.expect("n"), &Value::Int(3));
        // Trace: init(0) -> 1 -> 2 -> 3, all by Inc.
        assert_eq!(v.trace.len(), 4);
        assert!(v.trace[0].0.is_none());
        assert!(v.trace[1..]
            .iter()
            .all(|(a, _)| a.as_ref().unwrap().name == "Inc"));
    }

    #[test]
    fn max_states_truncates() {
        let r = ModelChecker::new(Arc::new(Clock { limit: 1000 }))
            .max_states(10)
            .run();
        assert!(r.stats.truncated);
        assert!(r.stats.distinct_states <= 11);
    }

    #[test]
    fn max_depth_truncates() {
        let r = ModelChecker::new(Arc::new(Clock { limit: 1000 }))
            .max_depth(3)
            .run();
        assert!(r.stats.truncated);
        assert_eq!(r.stats.distinct_states, 4);
    }

    #[test]
    fn constraint_stops_expansion_but_keeps_state() {
        let r = ModelChecker::new(Arc::new(Clock { limit: 1000 }))
            .constraint(|s| s.expect("n").expect_int() < 3)
            .run();
        assert!(r.ok());
        // States 0,1,2 expand; state 3 is kept but not expanded.
        assert_eq!(r.stats.distinct_states, 4);
    }

    #[test]
    fn generated_counts_revisits() {
        let r = ModelChecker::new(Arc::new(Clock { limit: 2 })).run();
        assert!(r.stats.states_generated > r.stats.distinct_states);
    }
}
