//! Invariants and their violation reports.
//!
//! Properties constrain the behaviors a specification allows (§2.1 of
//! the paper). As the paper notes, properties have no effect on the
//! construction of the state space; the checker evaluates them on
//! every state it discovers and stops at the first violation.

use std::sync::Arc;

use mocket_tla::{ActionInstance, State};

/// A named state predicate, e.g. Figure 1's
/// `Cardinality(cache) <= Cardinality(Data)`.
#[derive(Clone)]
pub struct Invariant {
    /// The invariant's name for reports.
    pub name: String,
    check: Arc<dyn Fn(&State) -> bool + Send + Sync>,
}

impl Invariant {
    /// Defines a named invariant.
    pub fn new<F>(name: impl Into<String>, check: F) -> Self
    where
        F: Fn(&State) -> bool + Send + Sync + 'static,
    {
        Invariant {
            name: name.into(),
            check: Arc::new(check),
        }
    }

    /// Evaluates the invariant on a state.
    pub fn holds(&self, state: &State) -> bool {
        (self.check)(state)
    }
}

impl std::fmt::Debug for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Invariant")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// A counterexample: the violated invariant plus the behavior (states
/// interleaved with actions) leading from an initial state to the
/// violating state.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: String,
    /// The violating state.
    pub state: State,
    /// The trace from an initial state: `trace[0]` is initial, each
    /// following entry pairs the action taken with the state reached.
    pub trace: Vec<(Option<ActionInstance>, State)>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Invariant {} is violated.", self.invariant)?;
        for (i, (action, state)) in self.trace.iter().enumerate() {
            match action {
                None => writeln!(f, "State {i}: <Initial predicate>")?,
                Some(a) => writeln!(f, "State {i}: <Action {a}>")?,
            }
            writeln!(f, "{state}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::Value;

    #[test]
    fn invariant_evaluates_predicate() {
        let inv = Invariant::new("NonNegative", |s: &State| s.expect("n").expect_int() >= 0);
        assert!(inv.holds(&State::from_pairs([("n", Value::Int(0))])));
        assert!(!inv.holds(&State::from_pairs([("n", Value::Int(-1))])));
    }

    #[test]
    fn violation_display_is_tlc_like() {
        let init = State::from_pairs([("n", Value::Int(0))]);
        let bad = State::from_pairs([("n", Value::Int(-1))]);
        let v = Violation {
            invariant: "NonNegative".into(),
            state: bad.clone(),
            trace: vec![(None, init), (Some(ActionInstance::nullary("Dec")), bad)],
        };
        let text = v.to_string();
        assert!(text.contains("Invariant NonNegative is violated."));
        assert!(text.contains("<Initial predicate>"));
        assert!(text.contains("<Action Dec>"));
    }
}
