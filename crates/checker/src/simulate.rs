//! Random simulation of a specification (TLC's `-simulate` mode).
//!
//! Instead of exhaustive exploration, sample random behaviors of
//! bounded length and check invariants along each — useful when the
//! state space is too large to enumerate, and as a cheap smoke test
//! while developing a specification.

use std::sync::Arc;

use mocket_tla::{successors_with, ActionInstance, Spec, State};

use crate::invariant::{Invariant, Violation};

/// Configuration for a simulation run.
#[derive(Debug, Clone)]
pub struct SimulateConfig {
    /// Number of behaviors to sample.
    pub behaviors: usize,
    /// Maximum length of each behavior.
    pub max_depth: usize,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
}

impl Default for SimulateConfig {
    fn default() -> Self {
        SimulateConfig {
            behaviors: 100,
            max_depth: 50,
            seed: 1,
        }
    }
}

/// Statistics from a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimulateStats {
    /// Behaviors completed.
    pub behaviors: usize,
    /// Total transitions taken.
    pub transitions: usize,
    /// Behaviors that ended in a deadlock (no enabled action).
    pub deadlocked: usize,
    /// Distinct states seen (by fingerprint).
    pub distinct_states_seen: usize,
}

/// Outcome of a simulation run.
#[derive(Debug)]
pub struct SimulateResult {
    /// Statistics.
    pub stats: SimulateStats,
    /// The first invariant violation, with its behavior, if any.
    pub violation: Option<Violation>,
}

impl SimulateResult {
    /// Whether the run completed without violations.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Samples random behaviors of `spec` and checks `invariants` on
/// every visited state.
pub fn simulate(
    spec: Arc<dyn Spec>,
    invariants: &[Invariant],
    config: &SimulateConfig,
) -> SimulateResult {
    let mut rng = config.seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    let actions = spec.actions();
    let inits = spec.init_states();
    let mut stats = SimulateStats::default();
    let mut seen = std::collections::HashSet::new();

    for _ in 0..config.behaviors {
        let mut state = inits[(next() as usize) % inits.len().max(1)].clone();
        let mut trace: Vec<(Option<ActionInstance>, State)> = vec![(None, state.clone())];
        seen.insert(state.fingerprint());
        if let Some(v) = check(invariants, &state, &trace) {
            return SimulateResult {
                stats,
                violation: Some(v),
            };
        }
        for _ in 0..config.max_depth {
            let succ = successors_with(&actions, &state);
            if succ.is_empty() {
                stats.deadlocked += 1;
                break;
            }
            let (action, nxt) = succ[(next() as usize) % succ.len()].clone();
            stats.transitions += 1;
            seen.insert(nxt.fingerprint());
            trace.push((Some(action), nxt.clone()));
            state = nxt;
            if let Some(v) = check(invariants, &state, &trace) {
                stats.behaviors += 1;
                stats.distinct_states_seen = seen.len();
                return SimulateResult {
                    stats,
                    violation: Some(v),
                };
            }
        }
        stats.behaviors += 1;
    }
    stats.distinct_states_seen = seen.len();
    SimulateResult {
        stats,
        violation: None,
    }
}

fn check(
    invariants: &[Invariant],
    state: &State,
    trace: &[(Option<ActionInstance>, State)],
) -> Option<Violation> {
    for inv in invariants {
        if !inv.holds(state) {
            return Some(Violation {
                invariant: inv.name.clone(),
                state: state.clone(),
                trace: trace.to_vec(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::{ActionClass, ActionDef, Value, VarClass, VarDef};

    struct Counter;

    impl Spec for Counter {
        fn name(&self) -> &str {
            "Counter"
        }
        fn variables(&self) -> Vec<VarDef> {
            vec![VarDef::new("n", VarClass::StateRelated)]
        }
        fn init_states(&self) -> Vec<State> {
            vec![State::from_pairs([("n", Value::Int(0))])]
        }
        fn actions(&self) -> Vec<ActionDef> {
            vec![
                ActionDef::nullary("Inc", ActionClass::SingleNode, |s| {
                    let n = s.expect("n").expect_int();
                    (n < 5).then(|| s.with("n", Value::Int(n + 1)))
                }),
                ActionDef::nullary("Dec", ActionClass::SingleNode, |s| {
                    let n = s.expect("n").expect_int();
                    (n > 0).then(|| s.with("n", Value::Int(n - 1)))
                }),
            ]
        }
    }

    #[test]
    fn simulation_visits_states_and_reports_stats() {
        let r = simulate(Arc::new(Counter), &[], &SimulateConfig::default());
        assert!(r.ok());
        assert_eq!(r.stats.behaviors, 100);
        assert!(r.stats.transitions > 0);
        assert!(r.stats.distinct_states_seen >= 2);
        assert!(r.stats.distinct_states_seen <= 6, "only 6 states exist");
    }

    #[test]
    fn simulation_finds_violations_with_trace() {
        let r = simulate(
            Arc::new(Counter),
            &[Invariant::new("Below4", |s| s.expect("n").expect_int() < 4)],
            &SimulateConfig::default(),
        );
        let v = r.violation.expect("must hit n = 4 eventually");
        assert_eq!(v.state.expect("n"), &Value::Int(4));
        assert!(v.trace.len() >= 5, "trace reaches the violation");
        assert!(v.trace[0].0.is_none(), "trace starts at an initial state");
    }

    #[test]
    fn simulation_is_reproducible_by_seed() {
        let cfg = SimulateConfig {
            behaviors: 10,
            max_depth: 10,
            seed: 42,
        };
        let a = simulate(Arc::new(Counter), &[], &cfg);
        let b = simulate(Arc::new(Counter), &[], &cfg);
        assert_eq!(a.stats.transitions, b.stats.transitions);
        assert_eq!(a.stats.distinct_states_seen, b.stats.distinct_states_seen);
    }

    #[test]
    fn deadlocks_are_counted() {
        struct Dead;
        impl Spec for Dead {
            fn name(&self) -> &str {
                "Dead"
            }
            fn variables(&self) -> Vec<VarDef> {
                vec![VarDef::new("x", VarClass::StateRelated)]
            }
            fn init_states(&self) -> Vec<State> {
                vec![State::from_pairs([("x", Value::Int(0))])]
            }
            fn actions(&self) -> Vec<ActionDef> {
                vec![ActionDef::nullary("Once", ActionClass::SingleNode, |s| {
                    (s.expect("x").expect_int() == 0).then(|| s.with("x", Value::Int(1)))
                })]
            }
        }
        let r = simulate(
            Arc::new(Dead),
            &[],
            &SimulateConfig {
                behaviors: 5,
                max_depth: 10,
                seed: 3,
            },
        );
        assert_eq!(r.stats.deadlocked, 5, "every behavior hits the deadlock");
    }
}
