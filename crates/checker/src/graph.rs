//! The state-space graph.
//!
//! The model checker's output — and Mocket's central input — is a
//! directed graph whose nodes are verified states and whose edges are
//! action instances (Figure 2 of the paper). Edges carry stable ids so
//! the edge-coverage traversal and partial-order reduction can mark
//! them individually.
//!
//! Two representation choices keep large graphs cheap:
//!
//! * The fingerprint dedup index is sharded by `fp % N_SHARDS` under
//!   striped `parking_lot::RwLock`s. Single-threaded insertion goes
//!   through `get_mut` (no locking); the parallel explorer's workers
//!   probe shards with read locks while the merge thread is the only
//!   writer between waves.
//! * Out-adjacency starts as per-node vectors while the graph is being
//!   built and is compacted into CSR form (offsets + one flat edge
//!   array) by [`StateGraph::finish`] — traversal and partial-order
//!   reduction iterate out-edges constantly, and the CSR form is one
//!   allocation instead of one per node.

use std::collections::HashMap;

use parking_lot::RwLock;

use mocket_tla::{ActionInstance, State};

/// Number of fingerprint shards (power of two so `fp & (N-1)` works).
const N_SHARDS: usize = 64;

/// Index of a state in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Index of an edge in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// A transition: `from --action--> to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source state.
    pub from: NodeId,
    /// The action instance labeling the transition.
    pub action: ActionInstance,
    /// Destination state.
    pub to: NodeId,
}

/// Ids of the states sharing one fingerprint. Almost every fingerprint
/// maps to exactly one state, so the single-id case stays inline and
/// allocation-free; genuine 64-bit collisions spill into a vector.
#[derive(Debug, Clone)]
enum Bucket {
    One(u32),
    Many(Vec<u32>),
}

impl Bucket {
    fn ids(&self) -> &[u32] {
        match self {
            Bucket::One(id) => std::slice::from_ref(id),
            Bucket::Many(ids) => ids,
        }
    }

    fn push(&mut self, id: u32) {
        match self {
            Bucket::One(first) => *self = Bucket::Many(vec![*first, id]),
            Bucket::Many(ids) => ids.push(id),
        }
    }
}

/// The fingerprint → state-ids dedup index, sharded for concurrency.
#[derive(Debug)]
struct FingerprintIndex {
    shards: Vec<RwLock<HashMap<u64, Bucket>>>,
}

impl FingerprintIndex {
    fn new() -> Self {
        FingerprintIndex {
            shards: (0..N_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    #[inline]
    fn shard_of(fp: u64) -> usize {
        (fp as usize) & (N_SHARDS - 1)
    }

    /// Lock-free insert for the exclusive owner.
    fn insert(&mut self, fp: u64, id: u32) {
        use std::collections::hash_map::Entry;
        match self.shards[Self::shard_of(fp)].get_mut().entry(fp) {
            Entry::Occupied(mut e) => e.get_mut().push(id),
            Entry::Vacant(v) => {
                v.insert(Bucket::One(id));
            }
        }
    }

    /// Candidate ids for `fp`, visible to the exclusive owner.
    fn candidates(&mut self, fp: u64) -> &[u32] {
        self.shards[Self::shard_of(fp)]
            .get_mut()
            .get(&fp)
            .map(|b| b.ids())
            .unwrap_or(&[])
    }

    fn shrink(&mut self) {
        for shard in &mut self.shards {
            let map = shard.get_mut();
            for bucket in map.values_mut() {
                if let Bucket::Many(ids) = bucket {
                    ids.shrink_to_fit();
                }
            }
            map.shrink_to_fit();
        }
    }
}

impl Clone for FingerprintIndex {
    fn clone(&self) -> Self {
        FingerprintIndex {
            shards: self
                .shards
                .iter()
                .map(|s| RwLock::new(s.read().clone()))
                .collect(),
        }
    }
}

impl Default for FingerprintIndex {
    fn default() -> Self {
        FingerprintIndex::new()
    }
}

/// Out-adjacency: growable while the graph is under construction,
/// compacted to CSR by [`StateGraph::finish`].
#[derive(Debug, Clone)]
enum OutAdjacency {
    Building(Vec<Vec<EdgeId>>),
    Csr { offsets: Vec<u32>, list: Vec<EdgeId> },
}

impl OutAdjacency {
    fn out_edges(&self, id: usize) -> &[EdgeId] {
        match self {
            OutAdjacency::Building(per_node) => &per_node[id],
            OutAdjacency::Csr { offsets, list } => {
                &list[offsets[id] as usize..offsets[id + 1] as usize]
            }
        }
    }
}

/// A read-locked view of the fingerprint index and state table; see
/// [`StateGraph::read_index`].
pub(crate) struct IndexReader<'g> {
    states: &'g [State],
    shards: Vec<parking_lot::RwLockReadGuard<'g, HashMap<u64, Bucket>>>,
}

impl IndexReader<'_> {
    /// Resolves `state` (with fingerprint `fp`) to its node id, if the
    /// graph already holds it.
    pub(crate) fn resolve(&self, fp: u64, state: &State) -> Option<NodeId> {
        self.shards[FingerprintIndex::shard_of(fp)]
            .get(&fp)?
            .ids()
            .iter()
            .copied()
            .find(|&i| &self.states[i as usize] == state)
            .map(|i| NodeId(i as usize))
    }
}

/// A state-space graph with fingerprint-deduplicated states.
#[derive(Debug, Clone, Default)]
pub struct StateGraph {
    states: Vec<State>,
    index: FingerprintIndex,
    edges: Vec<Edge>,
    out: OutAdjacency,
    initial: Vec<NodeId>,
}

impl Default for OutAdjacency {
    fn default() -> Self {
        OutAdjacency::Building(Vec::new())
    }
}

impl StateGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        StateGraph::default()
    }

    /// Number of distinct states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The initial states (in insertion order).
    pub fn initial_states(&self) -> &[NodeId] {
        &self.initial
    }

    /// The state stored at `id`.
    pub fn state(&self, id: NodeId) -> &State {
        &self.states[id.0]
    }

    /// The edge stored at `id`.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Out-edges of `id`, in insertion order.
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        self.out.out_edges(id.0)
    }

    /// The action instances enabled at `id` according to the graph.
    pub fn enabled_at(&self, id: NodeId) -> Vec<&ActionInstance> {
        self.out_edges(id)
            .iter()
            .map(|e| &self.edges[e.0].action)
            .collect()
    }

    /// Iterates over `(NodeId, &State)`.
    pub fn states(&self) -> impl Iterator<Item = (NodeId, &State)> {
        self.states.iter().enumerate().map(|(i, s)| (NodeId(i), s))
    }

    /// Inserts `state` if new, returning its id and whether it was new.
    pub fn insert_state(&mut self, state: State) -> (NodeId, bool) {
        let fp = state.fingerprint();
        self.insert_with_fingerprint(state, fp)
    }

    /// [`StateGraph::insert_state`] with a caller-supplied fingerprint
    /// (the parallel explorer's workers hash successors off-thread).
    pub(crate) fn insert_with_fingerprint(&mut self, state: State, fp: u64) -> (NodeId, bool) {
        // Fingerprints collide with vanishing probability, but when
        // they do the colliding states are distinct: compare each
        // candidate by full state equality.
        for &i in self.index.candidates(fp) {
            if self.states[i as usize] == state {
                return (NodeId(i as usize), false);
            }
        }
        let id = self.states.len();
        assert!(id <= u32::MAX as usize, "state space exceeds u32 ids");
        self.index.insert(fp, id as u32);
        self.states.push(state);
        if let OutAdjacency::Building(per_node) = &mut self.out {
            per_node.push(Vec::new());
        } else {
            // A finished graph being grown again: reopen it.
            self.reopen();
            if let OutAdjacency::Building(per_node) = &mut self.out {
                per_node.push(Vec::new());
            }
        }
        (NodeId(id), true)
    }

    /// Resolves `state` against the graph under a shard read lock
    /// without inserting — safe for concurrent use by exploration
    /// workers while no writer is active.
    pub(crate) fn resolve_shared(&self, fp: u64, state: &State) -> Option<NodeId> {
        let shard = self.index.shards[FingerprintIndex::shard_of(fp)].read();
        shard
            .get(&fp)?
            .ids()
            .iter()
            .copied()
            .find(|&i| &self.states[i as usize] == state)
            .map(|i| NodeId(i as usize))
    }

    /// Takes read locks on every index shard at once, returning a view
    /// that resolves states without further locking. The parallel
    /// explorer's workers share one view per wave — one round of lock
    /// acquisitions instead of one per successor probe. Holding the
    /// view blocks writers, so it must be dropped before the merge.
    pub(crate) fn read_index(&self) -> IndexReader<'_> {
        IndexReader {
            states: &self.states,
            shards: self.index.shards.iter().map(|s| s.read()).collect(),
        }
    }

    /// Looks up a state without inserting it.
    pub fn find_state(&self, state: &State) -> Option<NodeId> {
        self.resolve_shared(state.fingerprint(), state)
    }

    /// Marks `id` as an initial state.
    pub fn mark_initial(&mut self, id: NodeId) {
        if !self.initial.contains(&id) {
            self.initial.push(id);
        }
    }

    /// Adds an edge; duplicate `(from, action, to)` triples are merged.
    pub fn add_edge(&mut self, from: NodeId, action: ActionInstance, to: NodeId) -> EdgeId {
        for &eid in self.out.out_edges(from.0) {
            let e = &self.edges[eid.0];
            if e.to == to && e.action == action {
                return eid;
            }
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { from, action, to });
        if matches!(self.out, OutAdjacency::Csr { .. }) {
            self.reopen();
        }
        if let OutAdjacency::Building(per_node) = &mut self.out {
            per_node[from.0].push(id);
        }
        id
    }

    /// Compacts the graph after construction: converts out-adjacency
    /// to CSR form and releases spare capacity in state and edge
    /// storage. Idempotent; the explorer calls it once exploration is
    /// complete, and further mutation transparently reopens the graph.
    pub fn finish(&mut self) {
        if let OutAdjacency::Building(per_node) = &self.out {
            let total: usize = per_node.iter().map(Vec::len).sum();
            assert!(total <= u32::MAX as usize, "edge count exceeds u32 offsets");
            let mut offsets = Vec::with_capacity(per_node.len() + 1);
            let mut list = Vec::with_capacity(total);
            offsets.push(0u32);
            for node_edges in per_node {
                list.extend_from_slice(node_edges);
                offsets.push(list.len() as u32);
            }
            self.out = OutAdjacency::Csr { offsets, list };
        }
        self.states.shrink_to_fit();
        self.edges.shrink_to_fit();
        self.initial.shrink_to_fit();
        self.index.shrink();
    }

    /// Rebuilds the growable adjacency from CSR form.
    fn reopen(&mut self) {
        if let OutAdjacency::Csr { offsets, list } = &self.out {
            let mut per_node: Vec<Vec<EdgeId>> = Vec::with_capacity(self.states.len());
            for w in offsets.windows(2) {
                per_node.push(list[w[0] as usize..w[1] as usize].to_vec());
            }
            self.out = OutAdjacency::Building(per_node);
        }
    }

    /// States with no outgoing edges (deadlocks or exploration
    /// frontier cut-offs).
    pub fn terminal_states(&self) -> Vec<NodeId> {
        (0..self.states.len())
            .filter(|&i| self.out.out_edges(i).is_empty())
            .map(NodeId)
            .collect()
    }

    /// Nodes reachable from the initial states.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<usize> = self.initial.iter().map(|n| n.0).collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(n) = stack.pop() {
            for &eid in self.out.out_edges(n) {
                let t = self.edges[eid.0].to.0;
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// The distinct action names appearing on edges.
    pub fn action_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.edges.iter().map(|e| e.action.name.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Maximum distance from an initial state (graph diameter along
    /// BFS layers); `None` for an empty graph.
    pub fn depth(&self) -> Option<usize> {
        if self.initial.is_empty() {
            return None;
        }
        let mut dist = vec![usize::MAX; self.states.len()];
        let mut queue = std::collections::VecDeque::new();
        for &n in &self.initial {
            dist[n.0] = 0;
            queue.push_back(n.0);
        }
        let mut max = 0;
        while let Some(n) = queue.pop_front() {
            for &eid in self.out.out_edges(n) {
                let t = self.edges[eid.0].to.0;
                if dist[t] == usize::MAX {
                    dist[t] = dist[n] + 1;
                    max = max.max(dist[t]);
                    queue.push_back(t);
                }
            }
        }
        Some(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::Value;

    fn st(n: i64) -> State {
        State::from_pairs([("n", Value::Int(n))])
    }

    fn act(name: &str) -> ActionInstance {
        ActionInstance::nullary(name)
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = StateGraph::new();
        let (a, new_a) = g.insert_state(st(1));
        let (b, new_b) = g.insert_state(st(1));
        assert!(new_a && !new_b);
        assert_eq!(a, b);
        assert_eq!(g.state_count(), 1);
    }

    #[test]
    fn fingerprint_collisions_keep_distinct_states() {
        // Force two distinct states onto one fingerprint: the bucket
        // must keep both and resolve them by full state equality.
        let mut g = StateGraph::new();
        let (a, new_a) = g.insert_with_fingerprint(st(1), 0xdead_beef);
        let (b, new_b) = g.insert_with_fingerprint(st(2), 0xdead_beef);
        assert!(new_a && new_b);
        assert_ne!(a, b);
        assert_eq!(g.state_count(), 2);
        // Re-inserting either colliding state resolves to its own id.
        let (a2, new_a2) = g.insert_with_fingerprint(st(1), 0xdead_beef);
        let (b2, new_b2) = g.insert_with_fingerprint(st(2), 0xdead_beef);
        assert!(!new_a2 && !new_b2);
        assert_eq!(a2, a);
        assert_eq!(b2, b);
        // Three-way pileup still works.
        let (c, new_c) = g.insert_with_fingerprint(st(3), 0xdead_beef);
        assert!(new_c);
        assert_eq!(g.state_count(), 3);
        assert_ne!(c, a);
        assert_ne!(c, b);
        // Shared-probe resolution sees all collision candidates.
        assert_eq!(g.resolve_shared(0xdead_beef, &st(2)), Some(b));
        assert_eq!(g.resolve_shared(0xdead_beef, &st(9)), None);
    }

    #[test]
    fn add_edge_merges_duplicates() {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(st(1));
        let (b, _) = g.insert_state(st(2));
        let e1 = g.add_edge(a, act("Inc"), b);
        let e2 = g.add_edge(a, act("Inc"), b);
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        let e3 = g.add_edge(a, act("Jump"), b);
        assert_ne!(e1, e3);
        assert_eq!(g.out_edges(a).len(), 2);
    }

    #[test]
    fn finish_compacts_and_preserves_adjacency() {
        let mut g = StateGraph::new();
        let ids: Vec<_> = (0..4).map(|i| g.insert_state(st(i)).0).collect();
        g.mark_initial(ids[0]);
        g.add_edge(ids[0], act("A"), ids[1]);
        g.add_edge(ids[0], act("B"), ids[2]);
        g.add_edge(ids[1], act("C"), ids[3]);
        let before: Vec<Vec<EdgeId>> = ids.iter().map(|&i| g.out_edges(i).to_vec()).collect();
        g.finish();
        let after: Vec<Vec<EdgeId>> = ids.iter().map(|&i| g.out_edges(i).to_vec()).collect();
        assert_eq!(before, after);
        assert_eq!(g.depth(), Some(2));
        // Finishing twice is a no-op.
        g.finish();
        assert_eq!(g.out_edges(ids[0]).len(), 2);
    }

    #[test]
    fn finished_graph_can_be_grown_again() {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(st(1));
        let (b, _) = g.insert_state(st(2));
        g.add_edge(a, act("Go"), b);
        g.finish();
        // Insert + edge after finish: the graph reopens transparently
        // (the DOT importer and tests build graphs incrementally).
        let (c, new) = g.insert_state(st(3));
        assert!(new);
        g.add_edge(b, act("On"), c);
        assert_eq!(g.out_edges(b), [EdgeId(1)]);
        assert_eq!(g.out_edges(a), [EdgeId(0)]);
    }

    #[test]
    fn reachability_and_terminals() {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(st(1));
        let (b, _) = g.insert_state(st(2));
        let (c, _) = g.insert_state(st(3));
        g.mark_initial(a);
        g.add_edge(a, act("Go"), b);
        let r = g.reachable();
        assert!(r[a.0] && r[b.0] && !r[c.0]);
        assert_eq!(g.terminal_states(), vec![b, c]);
    }

    #[test]
    fn depth_counts_bfs_layers() {
        let mut g = StateGraph::new();
        let ids: Vec<_> = (0..4).map(|i| g.insert_state(st(i)).0).collect();
        g.mark_initial(ids[0]);
        for w in ids.windows(2) {
            g.add_edge(w[0], act("Step"), w[1]);
        }
        assert_eq!(g.depth(), Some(3));
    }

    #[test]
    fn action_names_deduplicated_sorted() {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(st(1));
        let (b, _) = g.insert_state(st(2));
        g.add_edge(a, act("B"), b);
        g.add_edge(b, act("A"), a);
        g.add_edge(a, act("A"), a);
        assert_eq!(g.action_names(), ["A", "B"]);
    }

    #[test]
    fn find_state_matches_insert() {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(st(7));
        assert_eq!(g.find_state(&st(7)), Some(a));
        assert_eq!(g.find_state(&st(8)), None);
    }
}
