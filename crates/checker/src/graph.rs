//! The state-space graph.
//!
//! The model checker's output — and Mocket's central input — is a
//! directed graph whose nodes are verified states and whose edges are
//! action instances (Figure 2 of the paper). Edges carry stable ids so
//! the edge-coverage traversal and partial-order reduction can mark
//! them individually.

use std::collections::HashMap;

use mocket_tla::{ActionInstance, State};

/// Index of a state in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Index of an edge in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// A transition: `from --action--> to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source state.
    pub from: NodeId,
    /// The action instance labeling the transition.
    pub action: ActionInstance,
    /// Destination state.
    pub to: NodeId,
}

/// A state-space graph with fingerprint-deduplicated states.
#[derive(Debug, Clone, Default)]
pub struct StateGraph {
    states: Vec<State>,
    by_fingerprint: HashMap<u64, Vec<usize>>,
    edges: Vec<Edge>,
    out: Vec<Vec<EdgeId>>,
    initial: Vec<NodeId>,
}

impl StateGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        StateGraph::default()
    }

    /// Number of distinct states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The initial states (in insertion order).
    pub fn initial_states(&self) -> &[NodeId] {
        &self.initial
    }

    /// The state stored at `id`.
    pub fn state(&self, id: NodeId) -> &State {
        &self.states[id.0]
    }

    /// The edge stored at `id`.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Out-edges of `id`, in insertion order.
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.out[id.0]
    }

    /// The action instances enabled at `id` according to the graph.
    pub fn enabled_at(&self, id: NodeId) -> Vec<&ActionInstance> {
        self.out[id.0]
            .iter()
            .map(|e| &self.edges[e.0].action)
            .collect()
    }

    /// Iterates over `(NodeId, &State)`.
    pub fn states(&self) -> impl Iterator<Item = (NodeId, &State)> {
        self.states.iter().enumerate().map(|(i, s)| (NodeId(i), s))
    }

    /// Inserts `state` if new, returning its id and whether it was new.
    pub fn insert_state(&mut self, state: State) -> (NodeId, bool) {
        let fp = state.fingerprint();
        if let Some(bucket) = self.by_fingerprint.get(&fp) {
            for &i in bucket {
                if self.states[i] == state {
                    return (NodeId(i), false);
                }
            }
        }
        let id = self.states.len();
        self.by_fingerprint.entry(fp).or_default().push(id);
        self.states.push(state);
        self.out.push(Vec::new());
        (NodeId(id), true)
    }

    /// Looks up a state without inserting it.
    pub fn find_state(&self, state: &State) -> Option<NodeId> {
        let fp = state.fingerprint();
        self.by_fingerprint.get(&fp).and_then(|bucket| {
            bucket
                .iter()
                .copied()
                .find(|&i| &self.states[i] == state)
                .map(NodeId)
        })
    }

    /// Marks `id` as an initial state.
    pub fn mark_initial(&mut self, id: NodeId) {
        if !self.initial.contains(&id) {
            self.initial.push(id);
        }
    }

    /// Adds an edge; duplicate `(from, action, to)` triples are merged.
    pub fn add_edge(&mut self, from: NodeId, action: ActionInstance, to: NodeId) -> EdgeId {
        for &eid in &self.out[from.0] {
            let e = &self.edges[eid.0];
            if e.to == to && e.action == action {
                return eid;
            }
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { from, action, to });
        self.out[from.0].push(id);
        id
    }

    /// States with no outgoing edges (deadlocks or exploration
    /// frontier cut-offs).
    pub fn terminal_states(&self) -> Vec<NodeId> {
        (0..self.states.len())
            .filter(|&i| self.out[i].is_empty())
            .map(NodeId)
            .collect()
    }

    /// Nodes reachable from the initial states.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<usize> = self.initial.iter().map(|n| n.0).collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(n) = stack.pop() {
            for &eid in &self.out[n] {
                let t = self.edges[eid.0].to.0;
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// The distinct action names appearing on edges.
    pub fn action_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.edges.iter().map(|e| e.action.name.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Maximum distance from an initial state (graph diameter along
    /// BFS layers); `None` for an empty graph.
    pub fn depth(&self) -> Option<usize> {
        if self.initial.is_empty() {
            return None;
        }
        let mut dist = vec![usize::MAX; self.states.len()];
        let mut queue = std::collections::VecDeque::new();
        for &n in &self.initial {
            dist[n.0] = 0;
            queue.push_back(n.0);
        }
        let mut max = 0;
        while let Some(n) = queue.pop_front() {
            for &eid in &self.out[n] {
                let t = self.edges[eid.0].to.0;
                if dist[t] == usize::MAX {
                    dist[t] = dist[n] + 1;
                    max = max.max(dist[t]);
                    queue.push_back(t);
                }
            }
        }
        Some(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::Value;

    fn st(n: i64) -> State {
        State::from_pairs([("n", Value::Int(n))])
    }

    fn act(name: &str) -> ActionInstance {
        ActionInstance::nullary(name)
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = StateGraph::new();
        let (a, new_a) = g.insert_state(st(1));
        let (b, new_b) = g.insert_state(st(1));
        assert!(new_a && !new_b);
        assert_eq!(a, b);
        assert_eq!(g.state_count(), 1);
    }

    #[test]
    fn add_edge_merges_duplicates() {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(st(1));
        let (b, _) = g.insert_state(st(2));
        let e1 = g.add_edge(a, act("Inc"), b);
        let e2 = g.add_edge(a, act("Inc"), b);
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        let e3 = g.add_edge(a, act("Jump"), b);
        assert_ne!(e1, e3);
        assert_eq!(g.out_edges(a).len(), 2);
    }

    #[test]
    fn reachability_and_terminals() {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(st(1));
        let (b, _) = g.insert_state(st(2));
        let (c, _) = g.insert_state(st(3));
        g.mark_initial(a);
        g.add_edge(a, act("Go"), b);
        let r = g.reachable();
        assert!(r[a.0] && r[b.0] && !r[c.0]);
        assert_eq!(g.terminal_states(), vec![b, c]);
    }

    #[test]
    fn depth_counts_bfs_layers() {
        let mut g = StateGraph::new();
        let ids: Vec<_> = (0..4).map(|i| g.insert_state(st(i)).0).collect();
        g.mark_initial(ids[0]);
        for w in ids.windows(2) {
            g.add_edge(w[0], act("Step"), w[1]);
        }
        assert_eq!(g.depth(), Some(3));
    }

    #[test]
    fn action_names_deduplicated_sorted() {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(st(1));
        let (b, _) = g.insert_state(st(2));
        g.add_edge(a, act("B"), b);
        g.add_edge(b, act("A"), a);
        g.add_edge(a, act("A"), a);
        assert_eq!(g.action_names(), ["A", "B"]);
    }

    #[test]
    fn find_state_matches_insert() {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(st(7));
        assert_eq!(g.find_state(&st(7)), Some(a));
        assert_eq!(g.find_state(&st(8)), None);
    }
}
