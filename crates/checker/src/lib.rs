//! Explicit-state model checker producing state-space graphs.
//!
//! This crate is the TLC analog in the Mocket pipeline (§2.2 of the
//! paper): it exhaustively explores a [`mocket_tla::Spec`], checks
//! invariants with counterexample traces, and produces the
//! [`StateGraph`] — exportable to and re-importable from GraphViz DOT
//! — that guides test-case generation in `mocket-core`.

pub mod dot;
pub mod explore;
pub mod graph;
pub mod invariant;
pub(crate) mod parallel;
pub mod simulate;

pub use dot::{
    from_dot, read_dot, to_dot, to_dot_overlay, uncovered_frontier, write_dot, write_dot_overlay,
    DotError,
};
pub use explore::{CheckResult, CheckStats, ModelChecker, WorkerStats};
pub use graph::{Edge, EdgeId, NodeId, StateGraph};
pub use invariant::{Invariant, Violation};
pub use simulate::{simulate, SimulateConfig, SimulateResult, SimulateStats};
