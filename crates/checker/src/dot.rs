//! GraphViz DOT export and import of state-space graphs.
//!
//! TLC can dump the state space it verified as a GraphViz DOT file,
//! and Mocket's test-case generator consumes exactly that file
//! (§4.2). We reproduce both sides of the boundary: [`to_dot`] writes
//! a graph, [`from_dot`] parses one back. Node labels carry the full
//! state in TLA+ conjunction syntax; edge labels carry the action
//! instance.

use std::fmt::Write as _;

use mocket_tla::{parse_action_instance, parse_state, ParseError};

use crate::graph::{NodeId, StateGraph};

/// Serializes a graph as GraphViz DOT.
pub fn to_dot(graph: &StateGraph) -> String {
    let mut out = String::new();
    out.push_str("digraph StateSpace {\n");
    out.push_str("  nodesep = 0.35;\n");
    for (id, state) in graph.states() {
        let initial = graph.initial_states().contains(&id);
        let _ = writeln!(
            out,
            "  s{} [label=\"{}\"{}];",
            id.0,
            escape(&state.to_string()),
            if initial {
                ", style=bold, initial=true"
            } else {
                ""
            },
        );
    }
    for edge in graph.edges() {
        let _ = writeln!(
            out,
            "  s{} -> s{} [label=\"{}\"];",
            edge.from.0,
            edge.to.0,
            escape(&edge.action.to_string()),
        );
    }
    out.push_str("}\n");
    out
}

/// Parses a DOT file produced by [`to_dot`] back into a graph.
///
/// Node ids are remapped densely in order of appearance, preserving
/// initial-state marks and edge order.
pub fn from_dot(input: &str) -> Result<StateGraph, DotError> {
    let mut graph = StateGraph::new();
    // DOT node name ("s12") -> graph NodeId.
    let mut names: std::collections::HashMap<String, NodeId> = std::collections::HashMap::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim().trim_end_matches(';');
        if line.is_empty()
            || line.starts_with("digraph")
            || line.starts_with('}')
            || line.starts_with("//")
            || !line.contains('[')
        {
            continue;
        }
        let (head, attrs) = split_attrs(line).ok_or_else(|| DotError::syntax(lineno, line))?;
        if let Some((from, to)) = head.split_once("->") {
            // Edge line.
            let from = from.trim();
            let to = to.trim();
            let label = attr_label(attrs).ok_or_else(|| DotError::syntax(lineno, line))?;
            let action = parse_action_instance(&label).map_err(|e| DotError::parse(lineno, e))?;
            let f = *names
                .get(from)
                .ok_or_else(|| DotError::unknown_node(lineno, from))?;
            let t = *names
                .get(to)
                .ok_or_else(|| DotError::unknown_node(lineno, to))?;
            graph.add_edge(f, action, t);
        } else {
            // Node line.
            let name = head.trim().to_string();
            if name == "nodesep" {
                continue;
            }
            let label = attr_label(attrs).ok_or_else(|| DotError::syntax(lineno, line))?;
            let state = parse_state(&label).map_err(|e| DotError::parse(lineno, e))?;
            let (id, _) = graph.insert_state(state);
            if attrs.contains("initial=true") {
                graph.mark_initial(id);
            }
            names.insert(name, id);
        }
    }
    Ok(graph)
}

/// Splits `head [attrs]` into `(head, attrs)`.
fn split_attrs(line: &str) -> Option<(&str, &str)> {
    let open = line.find('[')?;
    let close = line.rfind(']')?;
    (close > open).then(|| (&line[..open], &line[open + 1..close]))
}

/// Extracts and unescapes the quoted `label="..."` attribute.
fn attr_label(attrs: &str) -> Option<String> {
    let idx = attrs.find("label=\"")?;
    let rest = &attrs[idx + 7..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                other => out.push(other),
            },
            '"' => return Some(out),
            other => out.push(other),
        }
    }
    None
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Errors from DOT parsing.
#[derive(Debug, Clone)]
pub enum DotError {
    /// Line did not match the expected node/edge shape.
    Syntax {
        /// Zero-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A label failed to parse as a state or action.
    Label {
        /// Zero-based line number.
        line: usize,
        /// The underlying parse error.
        error: ParseError,
    },
    /// An edge referenced a node that was never declared.
    UnknownNode {
        /// Zero-based line number.
        line: usize,
        /// The undeclared node name.
        name: String,
    },
}

impl DotError {
    fn syntax(line: usize, text: &str) -> Self {
        DotError::Syntax {
            line,
            text: text.to_string(),
        }
    }

    fn parse(line: usize, error: ParseError) -> Self {
        DotError::Label { line, error }
    }

    fn unknown_node(line: usize, name: &str) -> Self {
        DotError::UnknownNode {
            line,
            name: name.to_string(),
        }
    }
}

impl std::fmt::Display for DotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DotError::Syntax { line, text } => {
                write!(f, "DOT syntax error on line {}: {text:?}", line + 1)
            }
            DotError::Label { line, error } => {
                write!(f, "bad label on line {}: {error}", line + 1)
            }
            DotError::UnknownNode { line, name } => {
                write!(
                    f,
                    "edge on line {} references unknown node {name:?}",
                    line + 1
                )
            }
        }
    }
}

impl std::error::Error for DotError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::{ActionInstance, State, Value};

    fn sample_graph() -> StateGraph {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(State::from_pairs([
            ("cache", Value::empty_set()),
            ("msg", Value::Nil),
            ("stage", Value::str("request")),
        ]));
        let (b, _) = g.insert_state(State::from_pairs([
            ("cache", Value::empty_set()),
            ("msg", Value::Int(1)),
            ("stage", Value::str("respond")),
        ]));
        g.mark_initial(a);
        g.add_edge(a, ActionInstance::new("Request", vec![Value::Int(1)]), b);
        g.add_edge(b, ActionInstance::nullary("Respond"), a);
        g
    }

    #[test]
    fn dot_contains_labels_and_marks() {
        let dot = to_dot(&sample_graph());
        assert!(dot.starts_with("digraph StateSpace {"));
        assert!(dot.contains("initial=true"));
        assert!(dot.contains("Request(1)"));
        assert!(dot.contains("stage = \\\"request\\\""));
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample_graph();
        let g2 = from_dot(&to_dot(&g)).unwrap();
        assert_eq!(g2.state_count(), g.state_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.initial_states().len(), 1);
        assert_eq!(
            g2.state(g2.initial_states()[0]),
            g.state(g.initial_states()[0])
        );
        let actions: Vec<String> = g2.edges().iter().map(|e| e.action.to_string()).collect();
        assert_eq!(actions, ["Request(1)", "Respond"]);
    }

    #[test]
    fn unknown_node_is_reported() {
        let bad = "digraph X {\n  s0 -> s1 [label=\"A\"];\n}\n";
        match from_dot(bad) {
            Err(DotError::UnknownNode { name, .. }) => assert_eq!(name, "s0"),
            other => panic!("expected UnknownNode, got {other:?}"),
        }
    }

    #[test]
    fn bad_label_is_reported() {
        let bad = "digraph X {\n  s0 [label=\"not a state\"];\n}\n";
        assert!(matches!(from_dot(bad), Err(DotError::Label { .. })));
    }

    #[test]
    fn parser_ignores_preamble_noise() {
        let dot = to_dot(&sample_graph());
        let noisy = dot.replace(
            "digraph StateSpace {",
            "digraph StateSpace {\n  // a comment\n",
        );
        assert!(from_dot(&noisy).is_ok());
    }
}
