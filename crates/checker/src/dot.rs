//! GraphViz DOT export and import of state-space graphs.
//!
//! TLC can dump the state space it verified as a GraphViz DOT file,
//! and Mocket's test-case generator consumes exactly that file
//! (§4.2). We reproduce both sides of the boundary: [`write_dot`]
//! streams a graph to any writer and [`read_dot`] parses one back
//! from any buffered reader; [`to_dot`] / [`from_dot`] are the
//! in-memory conveniences on top. Node labels carry the full state in
//! TLA+ conjunction syntax; edge labels carry the action instance.
//!
//! The streaming pair is the hot path for large graphs: output goes
//! through one `BufWriter` with a single reusable label buffer (no
//! per-node or per-edge `String` allocation), and the escaper copies
//! unescaped spans in bulk instead of byte-at-a-time. Import reads
//! line by line through one reusable line buffer, so neither
//! direction ever holds the whole file in memory.

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::sync::Arc;

use mocket_tla::{parse_action_instance, parse_state, ParseError};

use crate::graph::{EdgeId, NodeId, StateGraph};

/// Streams a graph as GraphViz DOT to `w`.
///
/// Output is byte-identical to [`to_dot`]. The writer is wrapped in a
/// [`io::BufWriter`] internally; callers pass the raw sink.
pub fn write_dot<W: Write>(graph: &StateGraph, w: W) -> io::Result<()> {
    let mut w = io::BufWriter::new(w);
    // One label buffer reused for every node and edge: states and
    // actions format into it, then the escaper streams it out.
    let mut label = String::new();
    w.write_all(b"digraph StateSpace {\n")?;
    w.write_all(b"  nodesep = 0.35;\n")?;
    for (id, state) in graph.states() {
        label.clear();
        let _ = write!(label, "{state}");
        write!(w, "  s{} [label=\"", id.0)?;
        write_escaped(&mut w, &label)?;
        if graph.initial_states().contains(&id) {
            w.write_all(b"\", style=bold, initial=true];\n")?;
        } else {
            w.write_all(b"\"];\n")?;
        }
    }
    for edge in graph.edges() {
        label.clear();
        let _ = write!(label, "{}", edge.action);
        write!(w, "  s{} -> s{} [label=\"", edge.from.0, edge.to.0)?;
        write_escaped(&mut w, &label)?;
        w.write_all(b"\"];\n")?;
    }
    w.write_all(b"}\n")?;
    w.flush()
}

/// Serializes a graph as a GraphViz DOT string.
pub fn to_dot(graph: &StateGraph) -> String {
    let mut buf = Vec::new();
    write_dot(graph, &mut buf).expect("writing DOT to memory cannot fail");
    String::from_utf8(buf).expect("DOT output is UTF-8")
}

/// The GitHub-contribution-style green ramp used by the coverage
/// overlay, bucketed by hit count; 0 hits renders grey.
fn hit_color(hits: u64) -> &'static str {
    match hits {
        0 => "#d9d9d9",
        1 => "#c6e48b",
        2..=3 => "#7bc96f",
        4..=7 => "#239a3b",
        _ => "#196127",
    }
}

/// Edges on the *uncovered frontier*: never executed by any test case
/// (`hits[e] == 0`) but enabled at a visited state — their source node
/// is an initial state or the target of an executed edge. These are
/// the edges a campaign could have scheduled next but didn't; a fully
/// covered campaign has none. `hits` is indexed by edge id (shorter
/// slices read as zero).
pub fn uncovered_frontier(graph: &StateGraph, hits: &[u64]) -> Vec<EdgeId> {
    let hit = |e: usize| hits.get(e).copied().unwrap_or(0);
    let mut visited = vec![false; graph.state_count()];
    for &n in graph.initial_states() {
        visited[n.0] = true;
    }
    for (i, edge) in graph.edges().iter().enumerate() {
        if hit(i) > 0 {
            visited[edge.from.0] = true;
            visited[edge.to.0] = true;
        }
    }
    graph
        .edges()
        .iter()
        .enumerate()
        .filter(|(i, edge)| hit(*i) == 0 && visited[edge.from.0])
        .map(|(i, _)| EdgeId(i))
        .collect()
}

/// Streams the graph as a coverage-annotated DOT file: nodes are
/// filled by visit count (sum of executed incoming edges), edges are
/// colored by hit count with frontier edges dashed, and a `//`-comment
/// header lists the covered/frontier tallies plus every frontier edge.
/// The output stays parseable by [`read_dot`] (comments are skipped,
/// extra attributes ignored) and is a pure function of `graph` and
/// `hits`, hence byte-identical across repeat runs and worker counts.
pub fn write_dot_overlay<W: Write>(graph: &StateGraph, hits: &[u64], w: W) -> io::Result<()> {
    let hit = |e: usize| hits.get(e).copied().unwrap_or(0);
    let frontier = uncovered_frontier(graph, hits);
    let covered = (0..graph.edge_count()).filter(|&e| hit(e) > 0).count();
    let mut visits = vec![0u64; graph.state_count()];
    for (i, edge) in graph.edges().iter().enumerate() {
        visits[edge.to.0] += hit(i);
    }

    let mut w = io::BufWriter::new(w);
    let mut label = String::new();
    w.write_all(b"digraph StateSpace {\n")?;
    writeln!(
        w,
        "  // coverage overlay: {covered}/{} edges covered, {} frontier",
        graph.edge_count(),
        frontier.len()
    )?;
    for &eid in &frontier {
        let edge = graph.edge(eid);
        label.clear();
        let _ = write!(label, "{}", edge.action);
        write!(w, "  // frontier: e{} s{} -> s{} [", eid.0, edge.from.0, edge.to.0)?;
        write_escaped(&mut w, &label)?;
        w.write_all(b"]\n")?;
    }
    w.write_all(b"  nodesep = 0.35;\n")?;
    for (id, state) in graph.states() {
        label.clear();
        let _ = write!(label, "{state}");
        write!(w, "  s{} [label=\"", id.0)?;
        write_escaped(&mut w, &label)?;
        let style = if graph.initial_states().contains(&id) {
            "\", style=\"bold,filled\", initial=true"
        } else {
            "\", style=filled"
        };
        writeln!(
            w,
            "{style}, fillcolor=\"{}\", visits={}];",
            hit_color(visits[id.0]),
            visits[id.0]
        )?;
    }
    let mut frontier_flag = vec![false; graph.edge_count()];
    for &eid in &frontier {
        frontier_flag[eid.0] = true;
    }
    for (i, edge) in graph.edges().iter().enumerate() {
        label.clear();
        let _ = write!(label, "{}", edge.action);
        write!(w, "  s{} -> s{} [label=\"", edge.from.0, edge.to.0)?;
        write_escaped(&mut w, &label)?;
        write!(w, "\", color=\"{}\", hits={}", hit_color(hit(i)), hit(i))?;
        if frontier_flag[i] {
            w.write_all(b", style=dashed")?;
        }
        w.write_all(b"];\n")?;
    }
    w.write_all(b"}\n")?;
    w.flush()
}

/// Serializes the coverage-annotated graph as a DOT string.
pub fn to_dot_overlay(graph: &StateGraph, hits: &[u64]) -> String {
    let mut buf = Vec::new();
    write_dot_overlay(graph, hits, &mut buf).expect("writing DOT to memory cannot fail");
    String::from_utf8(buf).expect("DOT output is UTF-8")
}

/// Streams a DOT file produced by [`write_dot`] back into a graph.
///
/// Node ids are remapped densely in order of appearance, preserving
/// initial-state marks and edge order. The returned graph is
/// [`StateGraph::finish`]ed: compacted, with its CSR adjacency built.
pub fn read_dot<R: BufRead>(mut r: R) -> Result<StateGraph, DotError> {
    let mut graph = StateGraph::new();
    // DOT node name ("s12") -> graph NodeId.
    let mut names: std::collections::HashMap<String, NodeId> = std::collections::HashMap::new();
    let mut raw = String::new();

    let mut lineno = 0usize;
    loop {
        raw.clear();
        if r.read_line(&mut raw)? == 0 {
            break;
        }
        parse_line(&raw, lineno, &mut graph, &mut names)?;
        lineno += 1;
    }
    graph.finish();
    Ok(graph)
}

/// Parses a DOT string produced by [`to_dot`] back into a graph.
pub fn from_dot(input: &str) -> Result<StateGraph, DotError> {
    read_dot(input.as_bytes())
}

/// Processes one DOT line: node declaration, edge, or ignorable noise.
fn parse_line(
    raw: &str,
    lineno: usize,
    graph: &mut StateGraph,
    names: &mut std::collections::HashMap<String, NodeId>,
) -> Result<(), DotError> {
    let line = raw.trim().trim_end_matches(';');
    if line.is_empty()
        || line.starts_with("digraph")
        || line.starts_with('}')
        || line.starts_with("//")
        || !line.contains('[')
    {
        return Ok(());
    }
    let (head, attrs) = split_attrs(line).ok_or_else(|| DotError::syntax(lineno, line))?;
    if let Some((from, to)) = head.split_once("->") {
        // Edge line.
        let from = from.trim();
        let to = to.trim();
        let label = attr_label(attrs).ok_or_else(|| DotError::syntax(lineno, line))?;
        let action = parse_action_instance(&label).map_err(|e| DotError::parse(lineno, e))?;
        let f = *names
            .get(from)
            .ok_or_else(|| DotError::unknown_node(lineno, from))?;
        let t = *names
            .get(to)
            .ok_or_else(|| DotError::unknown_node(lineno, to))?;
        graph.add_edge(f, action, t);
    } else {
        // Node line.
        let name = head.trim().to_string();
        if name == "nodesep" {
            return Ok(());
        }
        let label = attr_label(attrs).ok_or_else(|| DotError::syntax(lineno, line))?;
        let state = parse_state(&label).map_err(|e| DotError::parse(lineno, e))?;
        let (id, _) = graph.insert_state(state);
        if attrs.contains("initial=true") {
            graph.mark_initial(id);
        }
        names.insert(name, id);
    }
    Ok(())
}

/// Splits `head [attrs]` into `(head, attrs)`.
fn split_attrs(line: &str) -> Option<(&str, &str)> {
    let open = line.find('[')?;
    let close = line.rfind(']')?;
    (close > open).then(|| (&line[..open], &line[open + 1..close]))
}

/// Extracts and unescapes the quoted `label="..."` attribute.
fn attr_label(attrs: &str) -> Option<String> {
    let idx = attrs.find("label=\"")?;
    let rest = &attrs[idx + 7..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                other => out.push(other),
            },
            '"' => return Some(out),
            other => out.push(other),
        }
    }
    None
}

/// Streams `s` with `\`, `"`, newline, and carriage return escaped,
/// copying the clean spans in bulk rather than allocating an escaped
/// copy. Raw line breaks must never reach the output: the DOT format
/// here is line-oriented, so an unescaped `\n` or `\r` inside a label
/// would split the statement and corrupt the file for [`read_dot`].
fn write_escaped<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let esc: &[u8] = match b {
            b'\\' => b"\\\\",
            b'"' => b"\\\"",
            b'\n' => b"\\n",
            b'\r' => b"\\r",
            _ => continue,
        };
        w.write_all(&bytes[start..i])?;
        w.write_all(esc)?;
        start = i + 1;
    }
    w.write_all(&bytes[start..])
}

/// Errors from DOT parsing.
#[derive(Debug, Clone)]
pub enum DotError {
    /// Line did not match the expected node/edge shape.
    Syntax {
        /// Zero-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A label failed to parse as a state or action.
    Label {
        /// Zero-based line number.
        line: usize,
        /// The underlying parse error.
        error: ParseError,
    },
    /// An edge referenced a node that was never declared.
    UnknownNode {
        /// Zero-based line number.
        line: usize,
        /// The undeclared node name.
        name: String,
    },
    /// The underlying reader failed.
    Io(Arc<io::Error>),
}

impl DotError {
    fn syntax(line: usize, text: &str) -> Self {
        DotError::Syntax {
            line,
            text: text.to_string(),
        }
    }

    fn parse(line: usize, error: ParseError) -> Self {
        DotError::Label { line, error }
    }

    fn unknown_node(line: usize, name: &str) -> Self {
        DotError::UnknownNode {
            line,
            name: name.to_string(),
        }
    }
}

impl From<io::Error> for DotError {
    fn from(e: io::Error) -> Self {
        DotError::Io(Arc::new(e))
    }
}

impl std::fmt::Display for DotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DotError::Syntax { line, text } => {
                write!(f, "DOT syntax error on line {}: {text:?}", line + 1)
            }
            DotError::Label { line, error } => {
                write!(f, "bad label on line {}: {error}", line + 1)
            }
            DotError::UnknownNode { line, name } => {
                write!(
                    f,
                    "edge on line {} references unknown node {name:?}",
                    line + 1
                )
            }
            DotError::Io(e) => write!(f, "DOT I/O error: {e}"),
        }
    }
}

impl std::error::Error for DotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DotError::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::{ActionInstance, State, Value};

    fn sample_graph() -> StateGraph {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(State::from_pairs([
            ("cache", Value::empty_set()),
            ("msg", Value::Nil),
            ("stage", Value::str("request")),
        ]));
        let (b, _) = g.insert_state(State::from_pairs([
            ("cache", Value::empty_set()),
            ("msg", Value::Int(1)),
            ("stage", Value::str("respond")),
        ]));
        g.mark_initial(a);
        g.add_edge(a, ActionInstance::new("Request", vec![Value::Int(1)]), b);
        g.add_edge(b, ActionInstance::nullary("Respond"), a);
        g
    }

    #[test]
    fn dot_contains_labels_and_marks() {
        let dot = to_dot(&sample_graph());
        assert!(dot.starts_with("digraph StateSpace {"));
        assert!(dot.contains("initial=true"));
        assert!(dot.contains("Request(1)"));
        assert!(dot.contains("stage = \\\"request\\\""));
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample_graph();
        let g2 = from_dot(&to_dot(&g)).unwrap();
        assert_eq!(g2.state_count(), g.state_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.initial_states().len(), 1);
        assert_eq!(
            g2.state(g2.initial_states()[0]),
            g.state(g.initial_states()[0])
        );
        let actions: Vec<String> = g2.edges().iter().map(|e| e.action.to_string()).collect();
        assert_eq!(actions, ["Request(1)", "Respond"]);
    }

    #[test]
    fn streaming_writer_matches_to_dot() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_dot(&g, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), to_dot(&g));
    }

    #[test]
    fn read_dot_streams_from_reader() {
        let g = sample_graph();
        let dot = to_dot(&g);
        let g2 = read_dot(io::BufReader::new(dot.as_bytes())).unwrap();
        assert_eq!(g2.state_count(), g.state_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        // Import finishes the graph: re-export is identical.
        assert_eq!(to_dot(&g2), dot);
    }

    #[test]
    fn unknown_node_is_reported() {
        let bad = "digraph X {\n  s0 -> s1 [label=\"A\"];\n}\n";
        match from_dot(bad) {
            Err(DotError::UnknownNode { name, .. }) => assert_eq!(name, "s0"),
            other => panic!("expected UnknownNode, got {other:?}"),
        }
    }

    #[test]
    fn bad_label_is_reported() {
        let bad = "digraph X {\n  s0 [label=\"not a state\"];\n}\n";
        assert!(matches!(from_dot(bad), Err(DotError::Label { .. })));
    }

    #[test]
    fn hostile_labels_roundtrip() {
        // Property-style sweep over label contents that historically
        // corrupted the DOT round trip: raw line breaks split the
        // line-oriented format, and backslash sequences collided with
        // the reader's escape handling.
        let hostiles = [
            "back\\slash",
            "trailing\\",
            "line\nbreak",
            "cr\rreturn",
            "crlf\r\npair",
            "\\n literal backslash-n",
            "\\r literal backslash-r",
            "\n\r\\\\\n",
        ];
        for hostile in hostiles {
            let mut g = StateGraph::new();
            let (a, _) = g.insert_state(State::from_pairs([("v", Value::str(hostile))]));
            let (b, _) = g.insert_state(State::from_pairs([("v", Value::str("plain"))]));
            g.mark_initial(a);
            g.add_edge(a, ActionInstance::new("Act", vec![Value::str(hostile)]), b);
            let dot = to_dot(&g);
            // No raw line breaks may survive inside the emitted DOT
            // beyond the one statement terminator per line.
            for line in dot.lines() {
                assert!(!line.contains('\r'), "raw CR leaked into DOT: {line:?}");
            }
            let g2 = from_dot(&dot).unwrap_or_else(|e| {
                panic!("round trip failed for hostile label {hostile:?}: {e}")
            });
            assert_eq!(g2.state_count(), g.state_count(), "label {hostile:?}");
            assert_eq!(
                g2.state(g2.initial_states()[0]),
                g.state(g.initial_states()[0]),
                "state corrupted for label {hostile:?}"
            );
            assert_eq!(
                g2.edges()[0].action, g.edges()[0].action,
                "action corrupted for label {hostile:?}"
            );
            // Re-export must be byte-identical: escaping is canonical.
            assert_eq!(to_dot(&g2), dot, "re-export differs for {hostile:?}");
        }
    }

    /// a --Inc--> b --Inc--> c, plus a --Alt--> c and c --Back--> a.
    fn chain_graph() -> StateGraph {
        let mut g = StateGraph::new();
        let st = |n: i64| State::from_pairs([("x", Value::Int(n))]);
        let (a, _) = g.insert_state(st(0));
        let (b, _) = g.insert_state(st(1));
        let (c, _) = g.insert_state(st(2));
        g.mark_initial(a);
        g.add_edge(a, ActionInstance::nullary("Inc"), b); // e0
        g.add_edge(b, ActionInstance::nullary("Inc"), c); // e1
        g.add_edge(a, ActionInstance::nullary("Alt"), c); // e2
        g.add_edge(c, ActionInstance::nullary("Back"), a); // e3
        g
    }

    #[test]
    fn frontier_is_enabled_but_never_scheduled() {
        let g = chain_graph();
        // Only e0 executed: b is visited, so e1 (from b) and e2 (from
        // the initial a) are frontier; e3 (from unvisited c) is not.
        let frontier = uncovered_frontier(&g, &[1, 0, 0, 0]);
        assert_eq!(frontier, vec![EdgeId(1), EdgeId(2)]);
        // Everything executed: no frontier.
        assert!(uncovered_frontier(&g, &[1, 2, 1, 1]).is_empty());
        // Nothing executed: only edges out of the initial state.
        assert_eq!(uncovered_frontier(&g, &[0, 0, 0, 0]), vec![EdgeId(0), EdgeId(2)]);
    }

    #[test]
    fn overlay_lists_frontier_and_colors_by_hits() {
        let g = chain_graph();
        let dot = to_dot_overlay(&g, &[5, 0, 0, 0]);
        assert!(dot.contains("// coverage overlay: 1/4 edges covered, 2 frontier"));
        assert!(dot.contains("// frontier: e1 s1 -> s2 [Inc]"));
        assert!(dot.contains("// frontier: e2 s0 -> s2 [Alt]"));
        // Hit edge gets a green bucket, frontier edges dash.
        assert!(dot.contains("color=\"#239a3b\", hits=5"));
        assert!(dot.contains("hits=0, style=dashed"));
        // Node visited 5 times is filled dark; unvisited stays grey.
        assert!(dot.contains("visits=5]"));
        assert!(dot.contains("fillcolor=\"#d9d9d9\", visits=0]"));
        // Short hit slices read as zero instead of panicking.
        assert!(to_dot_overlay(&g, &[1]).contains("1/4 edges covered"));
    }

    #[test]
    fn overlay_is_deterministic_and_reimportable() {
        let g = chain_graph();
        let hits = [2, 1, 0, 0];
        let dot = to_dot_overlay(&g, &hits);
        assert_eq!(dot, to_dot_overlay(&g, &hits), "pure function of inputs");
        // read_dot skips the comment header and ignores the extra
        // attributes: the underlying graph round-trips.
        let g2 = from_dot(&dot).unwrap();
        assert_eq!(g2.state_count(), g.state_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.initial_states().len(), 1);
        assert_eq!(to_dot(&g2), to_dot(&g));
    }

    #[test]
    fn parser_ignores_preamble_noise() {
        let dot = to_dot(&sample_graph());
        let noisy = dot.replace(
            "digraph StateSpace {",
            "digraph StateSpace {\n  // a comment\n",
        );
        assert!(from_dot(&noisy).is_ok());
    }
}
