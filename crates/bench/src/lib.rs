//! Shared scenario definitions for the benchmark harness.
//!
//! Each table and figure of the paper has a bench binary under
//! `benches/`; the model configurations they share live here so the
//! numbers across tables are consistent.

use std::sync::Arc;

use mocket_core::{Pipeline, PipelineConfig, RunConfig};
use mocket_specs::raft::{RaftSpec, RaftSpecConfig};
use mocket_specs::zab::{ZabSpec, ZabSpecConfig};
use mocket_tla::Spec;

/// The Xraft bench model (asynchronous Raft with duplicate and
/// restart faults).
pub fn xraft_model() -> RaftSpecConfig {
    RaftSpecConfig::xraft(vec![1, 2])
}

/// The Raft-java bench model (synchronous Raft, two candidates, two
/// client requests — deep enough for the log-conflict scenario).
pub fn raft_java_model() -> RaftSpecConfig {
    let mut cfg = RaftSpecConfig::raft_java(vec![1, 2, 3]);
    cfg.max_term = 3;
    cfg.client_request_limit = 2;
    cfg.candidates = Some(vec![1, 2]);
    cfg.max_in_flight = 1;
    cfg
}

/// The ZooKeeper bench model (full election + sync + broadcast).
pub fn zookeeper_model() -> ZabSpecConfig {
    ZabSpecConfig::small(vec![1, 2])
}

/// The three bench specs with their display names.
pub fn bench_specs() -> Vec<(&'static str, Arc<dyn Spec>)> {
    vec![
        ("Xraft", Arc::new(RaftSpec::new(xraft_model()))),
        ("Raft-java", Arc::new(RaftSpec::new(raft_java_model()))),
        ("ZooKeeper", Arc::new(ZabSpec::new(zookeeper_model()))),
    ]
}

/// A pipeline with bench-wide defaults.
pub fn bench_pipeline(
    spec: Arc<dyn Spec>,
    registry: mocket_core::MappingRegistry,
    por: bool,
) -> Pipeline {
    let mut pc = PipelineConfig::default();
    pc.por = por;
    pc.stop_at_first_bug = true;
    pc.max_path_len = 60;
    pc.run = RunConfig::fast();
    Pipeline::new(spec, registry, pc).expect("bench mapping is valid")
}

/// Formats a duration in the style of the paper's Table 2.
pub fn fmt_secs(seconds: f64) -> String {
    if seconds < 60.0 {
        format!("{seconds:.1} s")
    } else if seconds < 3600.0 {
        format!("{:.1} min", seconds / 60.0)
    } else {
        format!("{:.1} h", seconds / 3600.0)
    }
}
