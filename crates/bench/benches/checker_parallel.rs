//! Parallel checker throughput: states/sec by worker count.
//!
//! Explores the asynchronous Raft bench model with 1, 2, 4, and
//! all-core workers, asserts every run's DOT export is byte-identical
//! to the sequential baseline, and writes the numbers (states/sec,
//! peak-RSS proxy, speedup over one worker, DOT round-trip time,
//! insight-layer costs: coverage-overlay render and divergence
//! explainer) to `BENCH_checker.json` at the repository root.
//!
//! `BENCH_SMOKE=1` switches to a small model and two worker counts so
//! CI can exercise the whole harness in seconds; the full model is a
//! scaled-up Xraft configuration with > 100k distinct states.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use mocket_bench::xraft_model;
use mocket_checker::{
    read_dot, to_dot, to_dot_overlay, uncovered_frontier, CheckResult, ModelChecker,
};
use mocket_core::{explain_failure, ExplainConfig, Inconsistency, TestCase, VariableDivergence};
use mocket_obs::CoverageMap;
use mocket_specs::raft::{RaftSpec, RaftSpecConfig};
use mocket_tla::Spec;

/// The full-mode model: Xraft's asynchronous Raft with a third
/// server. The unconstrained space runs to millions of states, so
/// full mode explores it under a distinct-state cap (well past the
/// 100k mark) — the truncation point is deterministic, so the
/// byte-identity assertion holds exactly as on exhausted spaces.
fn full_model() -> RaftSpecConfig {
    let mut cfg = RaftSpecConfig::xraft(vec![1, 2, 3]);
    cfg.max_term = 2;
    cfg.client_request_limit = 1;
    cfg.max_in_flight = 2;
    cfg
}

/// Distinct-state cap for full mode.
const FULL_MODE_MAX_STATES: usize = 200_000;

/// Peak resident set size in kilobytes (`VmHWM` from
/// `/proc/self/status`); 0 where the proc filesystem is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

struct Run {
    workers: usize,
    secs: f64,
    states_per_sec: f64,
    speedup: f64,
}

fn explore(spec: &Arc<dyn Spec>, workers: usize, max_states: usize) -> (CheckResult, f64) {
    let start = Instant::now();
    let r = ModelChecker::new(spec.clone())
        .workers(workers)
        .max_states(max_states)
        .run();
    (r, start.elapsed().as_secs_f64())
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (name, cfg) = if smoke {
        ("Xraft-smoke", xraft_model())
    } else {
        ("Xraft-large", full_model())
    };
    let spec: Arc<dyn Spec> = Arc::new(RaftSpec::new(cfg));
    let mut counts: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4] };
    if !smoke && cores > 4 && !counts.contains(&cores) {
        counts.push(cores);
    }

    let max_states = if smoke {
        usize::MAX
    } else {
        FULL_MODE_MAX_STATES
    };

    println!("=== Parallel checker throughput ({name}) ===");
    let (baseline, base_secs) = explore(&spec, 1, max_states);
    assert!(baseline.ok(), "bench model must satisfy its invariants");
    let states = baseline.stats.distinct_states;
    let edges = baseline.stats.edges;
    if !smoke {
        assert!(
            states >= 100_000,
            "full bench model must exceed 100k states, got {states}"
        );
    }
    let base_dot = to_dot(&baseline.graph);
    println!(
        "model: {states} distinct states, {edges} edges, depth {}",
        baseline.stats.depth
    );
    println!(
        "{:>8} {:>10} {:>14} {:>9}",
        "workers", "time", "states/sec", "speedup"
    );

    let mut runs = Vec::new();
    for &w in &counts {
        let (secs, result) = if w == 1 {
            (base_secs, None)
        } else {
            let (r, secs) = explore(&spec, w, max_states);
            (secs, Some(r))
        };
        if let Some(r) = &result {
            assert_eq!(r.stats.distinct_states, states, "workers={w} state count");
            assert_eq!(r.stats.edges, edges, "workers={w} edge count");
            assert_eq!(
                to_dot(&r.graph),
                base_dot,
                "workers={w} DOT must be byte-identical to sequential"
            );
        }
        let rate = states as f64 / secs;
        let speedup = base_secs / secs;
        println!("{w:>8} {secs:>9.2}s {rate:>14.0} {speedup:>8.2}x");
        runs.push(Run {
            workers: w,
            secs,
            states_per_sec: rate,
            speedup,
        });
    }

    // DOT round-trip on the explored graph: streaming export to a
    // byte buffer, then streaming import back.
    let export_start = Instant::now();
    let mut dot_buf = Vec::with_capacity(base_dot.len());
    mocket_checker::write_dot(&baseline.graph, &mut dot_buf).expect("DOT export");
    let export_secs = export_start.elapsed().as_secs_f64();
    let import_start = Instant::now();
    let reread = read_dot(dot_buf.as_slice()).expect("DOT import");
    let import_secs = import_start.elapsed().as_secs_f64();
    assert_eq!(reread.state_count(), states, "round-trip state count");
    assert_eq!(reread.edge_count(), edges, "round-trip edge count");
    println!(
        "DOT round-trip: {} bytes, export {export_secs:.3}s, import {import_secs:.3}s",
        dot_buf.len()
    );

    // Insight layer: one verified path through the graph provides the
    // hit counts for the coverage overlay and the executed prefix for
    // the divergence explainer.
    let mut node = baseline.graph.initial_states()[0];
    let mut path = Vec::new();
    for _ in 0..20 {
        let Some(&eid) = baseline.graph.out_edges(node).first() else {
            break;
        };
        path.push(eid);
        node = baseline.graph.edge(eid).to;
    }
    let mut coverage = CoverageMap::new(edges);
    coverage.record_case(
        path.iter().map(|e| e.0),
        path.iter()
            .map(|&e| baseline.graph.edge(e).action.name.as_str()),
    );
    let overlay_start = Instant::now();
    let overlay = to_dot_overlay(&baseline.graph, coverage.edge_hits());
    let overlay_secs = overlay_start.elapsed().as_secs_f64();
    let frontier = uncovered_frontier(&baseline.graph, coverage.edge_hits());
    println!(
        "coverage overlay: {} bytes, render {overlay_secs:.3}s, {} frontier edges",
        overlay.len(),
        frontier.len()
    );

    // Divergence explainer: a synthetic inconsistent-state failure at
    // the end of the path, diverging one mapped variable towards its
    // initial-state value, so the bounded nearest-state search does
    // real work.
    let case = TestCase::from_edge_path(&baseline.graph, &path).expect("path is a case");
    let registry = mocket_raft_async::mapping();
    let step = path.len() - 1;
    let edge = baseline.graph.edge(path[step]);
    let center = baseline.graph.state(edge.to);
    let initial = baseline.graph.state(baseline.graph.initial_states()[0]);
    let var = registry
        .variables()
        .iter()
        .find(|v| v.target.is_some() && center.get(&v.spec_name).is_some())
        .expect("mapped variable present in the state");
    let inconsistency = Inconsistency::InconsistentState {
        step,
        action: edge.action.clone(),
        divergences: vec![VariableDivergence {
            variable: var.spec_name.clone(),
            expected: center.expect(&var.spec_name).clone(),
            actual: Some(initial.expect(&var.spec_name).clone()),
        }],
    };
    let explain_cfg = ExplainConfig::default();
    let iters = if smoke { 50 } else { 200 };
    let explain_start = Instant::now();
    let mut explained = 0usize;
    for _ in 0..iters {
        if explain_failure(
            &baseline.graph,
            &registry,
            &case,
            &inconsistency,
            case.len(),
            &explain_cfg,
        )
        .is_some()
        {
            explained += 1;
        }
    }
    let explain_secs = explain_start.elapsed().as_secs_f64();
    assert_eq!(explained, iters, "every iteration must explain the failure");
    let explain_mean_us = explain_secs / iters as f64 * 1e6;
    println!("explainer: {iters} iterations, mean {explain_mean_us:.1}us");

    let rss_kb = peak_rss_kb();
    println!("peak RSS: {:.1} MiB", rss_kb as f64 / 1024.0);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"checker_parallel\",");
    let _ = writeln!(json, "  \"model\": \"{name}\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"distinct_states\": {states},");
    let _ = writeln!(json, "  \"edges\": {edges},");
    let _ = writeln!(json, "  \"peak_rss_kb\": {rss_kb},");
    let _ = writeln!(
        json,
        "  \"dot_bytes\": {}, \"dot_export_secs\": {export_secs:.4}, \"dot_import_secs\": {import_secs:.4},",
        dot_buf.len()
    );
    let _ = writeln!(
        json,
        "  \"overlay_bytes\": {}, \"overlay_render_secs\": {overlay_secs:.4}, \"frontier_edges\": {},",
        overlay.len(),
        frontier.len()
    );
    let _ = writeln!(
        json,
        "  \"explain_iters\": {iters}, \"explain_mean_us\": {explain_mean_us:.1},"
    );
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"secs\": {:.4}, \"states_per_sec\": {:.0}, \"speedup\": {:.3}}}{}",
            r.workers,
            r.secs,
            r.states_per_sec,
            r.speedup,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    // Walk up from the bench crate to the workspace root so the
    // artifact lands beside the other BENCH_*.json files.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = root.join("BENCH_checker.json");
    std::fs::write(&out, &json).expect("write BENCH_checker.json");
    println!("wrote {}", out.display());
}
