//! Table 2: the nine bugs found by Mocket.
//!
//! Each row turns one seeded bug switch (or spec-bug flag) on, runs
//! the full pipeline until the first report, and prints the detected
//! inconsistency, the wall-clock time to reveal it, and the number of
//! actions in the revealing test case — the three columns of the
//! paper's Table 2. Absolute times are far below the paper's (the
//! simulated cluster executes actions in microseconds, the authors'
//! JVM testbed took seconds per case); the *shape* to check is that
//! every row fires with the right inconsistency type and that deeper
//! bugs need longer revealing cases.

use std::sync::Arc;
use std::time::Instant;

use mocket_bench::fmt_secs;
use mocket_core::{BugReport, Pipeline, PipelineConfig, RunConfig};
use mocket_raft_async::XraftBugs;
use mocket_raft_sync::SyncRaftBugs;
use mocket_specs::raft::{RaftSpec, RaftSpecConfig};
use mocket_specs::zab::{ZabSpec, ZabSpecConfig};
use mocket_tla::Spec;
use mocket_zab::ZabBugs;

struct Row {
    id: &'static str,
    class: &'static str,
    report: Option<BugReport>,
    seconds: f64,
}

fn pipeline_for(
    spec: Arc<dyn Spec>,
    registry: mocket_core::MappingRegistry,
    case_filter: Option<Arc<dyn Fn(&[&str]) -> bool + Send + Sync>>,
) -> Pipeline {
    let mut pc = PipelineConfig::default();
    pc.por = false;
    pc.stop_at_first_bug = true;
    pc.max_path_len = 60;
    pc.case_filter = case_filter;
    pc.run = RunConfig::fast();
    Pipeline::new(spec, registry, pc).expect("mapping is valid")
}

fn hunt<F>(id: &'static str, class: &'static str, p: Pipeline, mut sut: F) -> Row
where
    F: FnMut() -> Box<dyn mocket_core::SystemUnderTest>,
{
    let start = Instant::now();
    let result = p.run(&mut sut);
    Row {
        id,
        class,
        report: result.reports.into_iter().next(),
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn main() {
    let mut rows = Vec::new();

    // ---- Xraft bug #1: duplicate vote counting ----
    {
        let cfg = RaftSpecConfig {
            restart_limit: 0,
            client_request_limit: 0,
            ..RaftSpecConfig::xraft(vec![1, 2])
        };
        rows.push(hunt(
            "Xraft Bug #1 (new)",
            "Impl. Bug",
            pipeline_for(
                Arc::new(RaftSpec::new(cfg)),
                mocket_raft_async::mapping(),
                None,
            ),
            || {
                Box::new(mocket_raft_async::make_sut(
                    vec![1, 2],
                    XraftBugs {
                        duplicate_vote_counting: true,
                        ..XraftBugs::none()
                    },
                ))
            },
        ));
    }

    // ---- Xraft bug #2: votedFor not persisted ----
    {
        let cfg = RaftSpecConfig {
            dup_limit: 0,
            client_request_limit: 0,
            ..RaftSpecConfig::xraft(vec![1, 2])
        };
        rows.push(hunt(
            "Xraft Bug #2 (new)",
            "Impl. Bug",
            pipeline_for(
                Arc::new(RaftSpec::new(cfg)),
                mocket_raft_async::mapping(),
                None,
            ),
            || {
                Box::new(mocket_raft_async::make_sut(
                    vec![1, 2],
                    XraftBugs {
                        voted_for_not_persisted: true,
                        ..XraftBugs::none()
                    },
                ))
            },
        ));
    }

    // ---- Xraft bug #3: NoOp-discounting vote grant ----
    {
        let cfg = RaftSpecConfig {
            dup_limit: 0,
            restart_limit: 0,
            client_request_limit: 0,
            max_term: 3,
            ..RaftSpecConfig::xraft(vec![1, 2])
        };
        rows.push(hunt(
            "Xraft Bug #3 (new)",
            "Impl. Bug",
            pipeline_for(
                Arc::new(RaftSpec::new(cfg)),
                mocket_raft_async::mapping(),
                None,
            ),
            || {
                Box::new(mocket_raft_async::make_sut(
                    vec![1, 2],
                    XraftBugs {
                        noop_log_grant: true,
                        ..XraftBugs::none()
                    },
                ))
            },
        ));
    }

    // ---- Raft-java bug #1: dropped vote response ----
    {
        let mut cfg = RaftSpecConfig::raft_java(vec![1, 2, 3]);
        cfg.max_term = 2;
        cfg.client_request_limit = 0;
        cfg.candidates = Some(vec![1]);
        rows.push(hunt(
            "Raft-java Bug #1",
            "Impl. Bug",
            pipeline_for(
                Arc::new(RaftSpec::new(cfg)),
                mocket_raft_sync::mapping(false),
                None,
            ),
            || {
                Box::new(mocket_raft_sync::make_sut(
                    vec![1, 2, 3],
                    SyncRaftBugs {
                        ignore_extra_vote_response: true,
                        ..SyncRaftBugs::none()
                    },
                ))
            },
        ));
    }

    // ---- Raft-java bug #2: off-by-one log truncation (the deep one)
    {
        rows.push(hunt(
            "Raft-java Bug #2",
            "Impl. Bug",
            pipeline_for(
                Arc::new(RaftSpec::new(mocket_bench::raft_java_model())),
                mocket_raft_sync::mapping(false),
                Some(Arc::new(|names: &[&str]| {
                    names.iter().filter(|n| **n == "BecomeLeader").count() >= 2
                        && names.iter().filter(|n| **n == "ClientRequest").count() >= 2
                })),
            ),
            || {
                Box::new(mocket_raft_sync::make_sut(
                    vec![1, 2, 3],
                    SyncRaftBugs {
                        log_truncation_bug: true,
                        ..SyncRaftBugs::none()
                    },
                ))
            },
        ));
    }

    // ---- ZooKeeper bug #1: election echo storm ----
    {
        rows.push(hunt(
            "ZooKeeper Bug #1",
            "Impl. Bug",
            pipeline_for(
                Arc::new(ZabSpec::new(ZabSpecConfig::small(vec![1, 2]))),
                mocket_zab::mapping(),
                None,
            ),
            || {
                Box::new(mocket_zab::make_sut(
                    vec![1, 2],
                    ZabBugs {
                        election_echo_storm: true,
                        ..ZabBugs::none()
                    },
                ))
            },
        ));
    }

    // ---- ZooKeeper bug #2: inconsistent epoch on restart ----
    {
        let mut cfg = ZabSpecConfig::small(vec![1, 2]);
        cfg.restart_limit = 1;
        cfg.client_request_limit = 0;
        rows.push(hunt(
            "ZooKeeper Bug #2",
            "Impl. Bug",
            pipeline_for(Arc::new(ZabSpec::new(cfg)), mocket_zab::mapping(), None),
            || {
                Box::new(mocket_zab::make_sut(
                    vec![1, 2],
                    ZabBugs {
                        epoch_marker_race: true,
                        ..ZabBugs::none()
                    },
                ))
            },
        ));
    }

    // ---- Raft-spec issue #1: independent UpdateTerm ----
    {
        rows.push(hunt(
            "Raft-spec issue #1 (new)",
            "Spec. Bug",
            pipeline_for(
                Arc::new(RaftSpec::new(RaftSpecConfig::official_buggy(vec![1, 2]))),
                mocket_raft_sync::mapping(true),
                None,
            ),
            || {
                Box::new(mocket_raft_sync::make_sut_with_options(
                    vec![1, 2],
                    SyncRaftBugs::none(),
                    true,
                ))
            },
        ));
    }

    // ---- Raft-spec issue #2: missing Reply branch ----
    {
        rows.push(hunt(
            "Raft-spec issue #2 (new)",
            "Spec. Bug",
            pipeline_for(
                Arc::new(RaftSpec::new(RaftSpecConfig::official_buggy(vec![1, 2]))),
                mocket_raft_sync::mapping(true),
                None,
            ),
            || {
                Box::new(mocket_raft_sync::make_sut_with_options(
                    vec![1, 2],
                    SyncRaftBugs::none(),
                    false,
                ))
            },
        ));
    }

    println!("=== Table 2: Bugs Found by Mocket ===");
    println!(
        "{:<26} {:<10} {:<48} {:>10} {:>9}",
        "ID", "Type", "Reported Inconsistency", "Elapsed", "#Actions"
    );
    for row in &rows {
        match &row.report {
            Some(report) => println!(
                "{:<26} {:<10} {:<48} {:>10} {:>9}",
                row.id,
                row.class,
                format!(
                    "{} : {}",
                    report.inconsistency.kind(),
                    report.inconsistency.subject()
                ),
                fmt_secs(row.seconds),
                report.test_case.len(),
            ),
            None => println!(
                "{:<26} {:<10} {:<48} {:>10} {:>9}",
                row.id,
                row.class,
                "NOT DETECTED",
                fmt_secs(row.seconds),
                "-"
            ),
        }
    }
    println!();
    println!("Paper's Table 2 verdicts for comparison:");
    println!("  Xraft #1:  Inconsistent state votesGranted   (1 min,  6 actions)");
    println!("  Xraft #2:  Inconsistent state votedFor       (7 min,  9 actions)");
    println!("  Xraft #3:  Unexpected HandleRequestVoteResponse (39 min, 19 actions)");
    println!("  Raft-java #1: Missing HandleRequestVoteResponse  (6 min, 18 actions)");
    println!("  Raft-java #2: Inconsistent state log             (5 h,   31 actions)");
    println!("  ZooKeeper #1: Unexpected receive (HandleVote)    (13 h,  39 actions)");
    println!("  ZooKeeper #2: Missing StartElection              (29 h,  51 actions)");
    println!("  Raft-spec #1: Inconsistent state messages        (<1 min, 8 actions)");
    println!("  Raft-spec #2: Missing UpdateTerm                 (<1 min, 5 actions)");

    let detected = rows.iter().filter(|r| r.report.is_some()).count();
    assert_eq!(detected, rows.len(), "every Table 2 row must fire");
}
