//! Criterion microbenchmarks for the pipeline's hot paths:
//! fingerprinting, successor generation, graph insertion, DOT
//! round-trips and vote-message wire codecs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mocket_checker::{from_dot, to_dot, ModelChecker};
use mocket_dsnet::Wire;
use mocket_raft_async::{Entry, RaftMsg};
use mocket_specs::cachemax::CacheMax;
use mocket_specs::raft::{RaftSpec, RaftSpecConfig};
use mocket_tla::{successors_with, Spec, State, Value};

fn sample_state() -> State {
    RaftSpec::new(RaftSpecConfig::xraft(vec![1, 2, 3]))
        .init_states()
        .remove(0)
}

fn bench_fingerprint(c: &mut Criterion) {
    let state = sample_state();
    c.bench_function("state_fingerprint_raft3", |b| {
        b.iter(|| std::hint::black_box(state.fingerprint()))
    });
}

fn bench_successors(c: &mut Criterion) {
    let spec = RaftSpec::new(RaftSpecConfig::xraft(vec![1, 2]));
    let actions = spec.actions();
    let init = spec.init_states().remove(0);
    c.bench_function("successors_raft2_init", |b| {
        b.iter(|| std::hint::black_box(successors_with(&actions, &init).len()))
    });
}

fn bench_model_check(c: &mut Criterion) {
    c.bench_function("model_check_cachemax_data4", |b| {
        b.iter(|| {
            let r = ModelChecker::new(Arc::new(CacheMax::with_data_size(4))).run();
            std::hint::black_box(r.stats.distinct_states)
        })
    });
}

fn bench_dot_roundtrip(c: &mut Criterion) {
    let graph = ModelChecker::new(Arc::new(CacheMax::with_data_size(3)))
        .run()
        .graph;
    let dot = to_dot(&graph);
    c.bench_function("dot_write_cachemax3", |b| {
        b.iter(|| std::hint::black_box(to_dot(&graph).len()))
    });
    c.bench_function("dot_parse_cachemax3", |b| {
        b.iter(|| std::hint::black_box(from_dot(&dot).unwrap().state_count()))
    });
}

fn bench_wire(c: &mut Criterion) {
    let msg = RaftMsg::AppendRequest {
        term: 3,
        prev_log_index: 1,
        prev_log_term: 2,
        entries: vec![Entry::noop(3), Entry::data(3, 42)],
        commit_index: 1,
        source: 1,
        dest: 2,
    };
    c.bench_function("wire_roundtrip_append_entries", |b| {
        b.iter(|| std::hint::black_box(msg.wire_roundtrip().unwrap()))
    });
    c.bench_function("msg_to_spec_record", |b| {
        b.iter(|| std::hint::black_box(msg.to_value()))
    });
}

fn bench_state_ops(c: &mut Criterion) {
    let state = sample_state();
    c.bench_function("state_with_update", |b| {
        b.iter_batched(
            || state.clone(),
            |s| {
                std::hint::black_box(s.with(
                    "currentTerm",
                    Value::const_fun([Value::Int(1), Value::Int(2), Value::Int(3)], Value::Int(2)),
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_fingerprint,
    bench_successors,
    bench_model_check,
    bench_dot_roundtrip,
    bench_wire,
    bench_state_ops,
);
criterion_main!(benches);
