//! Microbenchmarks for the pipeline's hot paths: fingerprinting,
//! successor generation, model checking, DOT round-trips and
//! vote-message wire codecs.
//!
//! Criterion is unavailable offline, so this is a plain
//! `harness = false` timing loop: each benchmark is warmed up, then
//! run for a fixed wall-clock window and reported as ns/iter.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mocket_checker::{from_dot, to_dot, ModelChecker};
use mocket_dsnet::Wire;
use mocket_raft_async::{Entry, RaftMsg};
use mocket_specs::cachemax::CacheMax;
use mocket_specs::raft::{RaftSpec, RaftSpecConfig};
use mocket_tla::{successors_with, Spec, State, Value};

const WARMUP: Duration = Duration::from_millis(100);
const WINDOW: Duration = Duration::from_millis(400);

fn bench(name: &str, mut f: impl FnMut()) {
    let start = Instant::now();
    while start.elapsed() < WARMUP {
        f();
    }
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < WINDOW {
        f();
        iters += 1;
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:40} {ns:>14.1} ns/iter   ({iters} iters)");
}

fn sample_state() -> State {
    RaftSpec::new(RaftSpecConfig::xraft(vec![1, 2, 3]))
        .init_states()
        .remove(0)
}

fn main() {
    let state = sample_state();
    bench("state_fingerprint_raft3", || {
        std::hint::black_box(state.fingerprint());
    });

    let spec = RaftSpec::new(RaftSpecConfig::xraft(vec![1, 2]));
    let actions = spec.actions();
    let init = spec.init_states().remove(0);
    bench("successors_raft2_init", || {
        std::hint::black_box(successors_with(&actions, &init).len());
    });

    bench("model_check_cachemax_data4", || {
        let r = ModelChecker::new(Arc::new(CacheMax::with_data_size(4))).run();
        std::hint::black_box(r.stats.distinct_states);
    });

    let graph = ModelChecker::new(Arc::new(CacheMax::with_data_size(3)))
        .run()
        .graph;
    let dot = to_dot(&graph);
    bench("dot_write_cachemax3", || {
        std::hint::black_box(to_dot(&graph).len());
    });
    bench("dot_parse_cachemax3", || {
        std::hint::black_box(from_dot(&dot).unwrap().state_count());
    });

    let msg = RaftMsg::AppendRequest {
        term: 3,
        prev_log_index: 1,
        prev_log_term: 2,
        entries: vec![Entry::noop(3), Entry::data(3, 42)],
        commit_index: 1,
        source: 1,
        dest: 2,
    };
    bench("wire_roundtrip_append_entries", || {
        std::hint::black_box(msg.wire_roundtrip().unwrap());
    });
    bench("msg_to_spec_record", || {
        std::hint::black_box(msg.to_value());
    });

    let state = sample_state();
    bench("state_with_update", || {
        std::hint::black_box(state.clone().with(
            "currentTerm",
            Value::const_fun([Value::Int(1), Value::Int(2), Value::Int(3)], Value::Int(2)),
        ));
    });
}
