//! Table 3: testing effort per system.
//!
//! Columns mirror the paper: distinct states in the state-space
//! graph, paths from edge-coverage traversal alone (`PathEC`), paths
//! with partial-order reduction (`PathEC+POR`), and controlled-testing
//! time. The time column is measured by executing a sample of the
//! reduced cases against the conformant implementation and
//! extrapolating to the full reduced set (the paper ran everything
//! for days; the shape to check is the POR reduction ratio and the
//! ordering between systems).

use std::sync::Arc;
use std::time::Instant;

use mocket_bench::fmt_secs;
use mocket_checker::ModelChecker;
use mocket_core::{
    edge_coverage_paths, partial_order_reduction, run_test_case, RunConfig, TestCase,
    TraversalConfig,
};
use mocket_raft_async::XraftBugs;
use mocket_raft_sync::SyncRaftBugs;
use mocket_specs::raft::RaftSpec;
use mocket_specs::zab::ZabSpec;
use mocket_zab::ZabBugs;

const SAMPLE: usize = 150;
const MAX_PATH_LEN: usize = 60;

struct SystemRow {
    name: &'static str,
    states: usize,
    edges: usize,
    path_ec: usize,
    path_ec_por: usize,
    check_secs: f64,
    est_test_secs: f64,
    sample_passed: usize,
    sample_run: usize,
}

fn measure(
    name: &'static str,
    spec: Arc<dyn mocket_tla::Spec>,
    registry: mocket_core::MappingRegistry,
    mut make_sut: Box<dyn FnMut() -> Box<dyn mocket_core::SystemUnderTest>>,
) -> SystemRow {
    let start = Instant::now();
    let result = ModelChecker::new(spec).run();
    let check_secs = start.elapsed().as_secs_f64();
    let graph = result.graph;

    let mut plain = TraversalConfig::default();
    plain.max_path_len = MAX_PATH_LEN;
    let ec = edge_coverage_paths(&graph, &plain);

    let por = partial_order_reduction(&graph);
    let mut reduced_cfg = TraversalConfig::default().with_excluded_edges(por.excluded_edges);
    reduced_cfg.max_path_len = MAX_PATH_LEN;
    let reduced = edge_coverage_paths(&graph, &reduced_cfg);

    // Execute a sample of the reduced cases to estimate per-case cost.
    let run_cfg = RunConfig::fast();
    let sample_start = Instant::now();
    let mut sample_run = 0usize;
    let mut sample_passed = 0usize;
    let step = (reduced.paths.len() / SAMPLE).max(1);
    for path in reduced.paths.iter().step_by(step).take(SAMPLE) {
        let tc = TestCase::from_edge_path(&graph, path).expect("traversal paths are non-empty");
        let final_node = graph.edge(*path.last().unwrap()).to;
        let final_enabled: Vec<_> = graph.enabled_at(final_node).into_iter().cloned().collect();
        let mut sut = make_sut();
        let (outcome, _) = run_test_case(sut.as_mut(), &tc, &registry, &final_enabled, &run_cfg)
            .expect("no SUT failure");
        sample_run += 1;
        if outcome.passed() {
            sample_passed += 1;
        }
    }
    let per_case = sample_start.elapsed().as_secs_f64() / sample_run.max(1) as f64;

    SystemRow {
        name,
        states: graph.state_count(),
        edges: graph.edge_count(),
        path_ec: ec.paths.len(),
        path_ec_por: reduced.paths.len(),
        check_secs,
        est_test_secs: per_case * reduced.paths.len() as f64,
        sample_passed,
        sample_run,
    }
}

fn main() {
    let rows = vec![
        measure(
            "Xraft",
            Arc::new(RaftSpec::new(mocket_bench::xraft_model())),
            mocket_raft_async::mapping(),
            Box::new(|| Box::new(mocket_raft_async::make_sut(vec![1, 2], XraftBugs::none()))),
        ),
        measure(
            "Raft-java",
            Arc::new(RaftSpec::new(mocket_bench::raft_java_model())),
            mocket_raft_sync::mapping(false),
            Box::new(|| {
                Box::new(mocket_raft_sync::make_sut(
                    vec![1, 2, 3],
                    SyncRaftBugs::none(),
                ))
            }),
        ),
        measure(
            "ZooKeeper",
            Arc::new(ZabSpec::new(mocket_bench::zookeeper_model())),
            mocket_zab::mapping(),
            Box::new(|| Box::new(mocket_zab::make_sut(vec![1, 2], ZabBugs::none()))),
        ),
    ];

    println!("=== Table 3: Testing Effort ===");
    println!(
        "{:<11} {:>8} {:>8} {:>9} {:>11} {:>7} {:>10} {:>12}",
        "System", "State", "Edges", "PathEC", "PathEC+POR", "POR-%", "Check", "Time(est.)"
    );
    for r in &rows {
        let reduction = if r.path_ec == 0 {
            0.0
        } else {
            100.0 * (1.0 - r.path_ec_por as f64 / r.path_ec as f64)
        };
        println!(
            "{:<11} {:>8} {:>8} {:>9} {:>11} {:>6.1}% {:>10} {:>12}",
            r.name,
            r.states,
            r.edges,
            r.path_ec,
            r.path_ec_por,
            reduction,
            fmt_secs(r.check_secs),
            fmt_secs(r.est_test_secs),
        );
        assert_eq!(
            r.sample_passed, r.sample_run,
            "{}: conformant samples must all pass",
            r.name
        );
    }
    println!();
    println!("Paper's Table 3 for comparison:");
    println!("  Xraft      91,532 states, 296,154 EC paths, 39,047 EC+POR (86.8% cut),  75 h");
    println!("  Raft-java  23,911 states,  85,976 EC paths,  9,829 EC+POR (88.6% cut),  13 h");
    println!("  ZooKeeper 105,054 states, 342,770 EC paths, 44,361 EC+POR (87.1% cut), 123 h");
    println!();
    println!(
        "Shape checks: POR removes the large majority of EC paths on \
         every system, and ZooKeeper's per-case testing is the most \
         expensive."
    );
}
