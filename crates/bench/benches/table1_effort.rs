//! Table 1: development effort on the three real-world systems.
//!
//! The paper reports, per system: implementation LOC, specification
//! LOC, variable count, action count, and mapping LOC. Our analogs:
//! implementation LOC is counted from the target crates' sources
//! (embedded at compile time), specification "LOC" is the Rust spec
//! module's line count, variables/actions come from the spec itself,
//! and mapping LOC uses the paper's own weighting (message-related
//! actions cost ~10 lines, others ~5, one line per variable).

use mocket_tla::Spec;

fn loc(sources: &[&str]) -> usize {
    sources
        .iter()
        .map(|s| {
            s.lines()
                .filter(|l| {
                    let t = l.trim();
                    !t.is_empty() && !t.starts_with("//")
                })
                .count()
        })
        .sum()
}

fn main() {
    let xraft_impl = loc(&[
        include_str!("../../raft-async/src/node.rs"),
        include_str!("../../raft-async/src/msg.rs"),
        include_str!("../../raft-async/src/bugs.rs"),
        include_str!("../../raft-async/src/sut.rs"),
    ]);
    let raft_java_impl = loc(&[
        include_str!("../../raft-sync/src/node.rs"),
        include_str!("../../raft-sync/src/msg.rs"),
        include_str!("../../raft-sync/src/logstore.rs"),
        include_str!("../../raft-sync/src/bugs.rs"),
        include_str!("../../raft-sync/src/sut.rs"),
    ]);
    let zk_impl = loc(&[
        include_str!("../../zab/src/node.rs"),
        include_str!("../../zab/src/msg.rs"),
        include_str!("../../zab/src/bugs.rs"),
        include_str!("../../zab/src/sut.rs"),
    ]);
    let raft_spec_loc = loc(&[include_str!("../../specs/src/raft.rs")]);
    let zab_spec_loc = loc(&[include_str!("../../specs/src/zab.rs")]);

    let rows = [
        (
            "Xraft",
            xraft_impl,
            raft_spec_loc,
            mocket_specs::raft::RaftSpec::new(mocket_bench::xraft_model())
                .variables()
                .len(),
            mocket_specs::raft::RaftSpec::new(mocket_bench::xraft_model())
                .actions()
                .len(),
            mocket_raft_async::mapping().mapping_loc(),
        ),
        (
            "Raft-java",
            raft_java_impl,
            raft_spec_loc,
            mocket_specs::raft::RaftSpec::new(mocket_bench::raft_java_model())
                .variables()
                .len(),
            mocket_specs::raft::RaftSpec::new(mocket_bench::raft_java_model())
                .actions()
                .len(),
            mocket_raft_sync::mapping(false).mapping_loc(),
        ),
        (
            "ZooKeeper",
            zk_impl,
            zab_spec_loc,
            mocket_specs::zab::ZabSpec::new(mocket_bench::zookeeper_model())
                .variables()
                .len(),
            mocket_specs::zab::ZabSpec::new(mocket_bench::zookeeper_model())
                .actions()
                .len(),
            mocket_zab::mapping().mapping_loc(),
        ),
    ];

    println!("=== Table 1: Development Effort on Real-World Systems ===");
    println!(
        "{:<12} {:>10} {:>10} {:>7} {:>7} {:>9}",
        "System", "Impl(LOC)", "Spec(LOC)", "#Var", "#Act", "Map(LOC)"
    );
    for (name, impl_loc, spec_loc, vars, acts, map_loc) in rows {
        println!("{name:<12} {impl_loc:>10} {spec_loc:>10} {vars:>7} {acts:>7} {map_loc:>9}");
    }
    println!();
    println!("Paper's Table 1 for comparison:");
    println!("  Xraft      16,530 / 841 / 15 / 17 / 151");
    println!("  Raft-java  15,017 / 809 / 15 / 15 / 152");
    println!("  ZooKeeper  15,895 / 1,053 / 25 / 20 / 134");
    println!();
    println!(
        "Shape check: mapping effort is two orders of magnitude below \
         implementation size, and the message-heavy ZooKeeper spec is \
         the largest."
    );
}
