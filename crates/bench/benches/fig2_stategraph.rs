//! Figure 1 / Figure 2: the CacheMax example and its state space.
//!
//! With `Data = {1, 2}` the paper's Figure 2 shows a 13-state graph;
//! this bench regenerates it, prints the DOT rendering, and measures
//! checker throughput as the `Data` set grows.

use std::sync::Arc;
use std::time::Instant;

use mocket_checker::{from_dot, to_dot, ModelChecker};
use mocket_specs::cachemax::{cache_bounded_invariant, CacheMax};

fn main() {
    println!("=== Figure 2: CacheMax state space (Data = {{1, 2}}) ===");
    let result = ModelChecker::new(Arc::new(CacheMax::paper_model()))
        .invariant(cache_bounded_invariant(2))
        .run();
    assert!(result.ok(), "the Figure 1 invariant must hold");
    println!(
        "states = {} (paper: 13), edges = {} (paper: 18), depth = {}",
        result.stats.distinct_states, result.stats.edges, result.stats.depth,
    );
    assert_eq!(result.stats.distinct_states, 13, "Figure 2 has 13 states");
    assert_eq!(result.stats.edges, 18, "Figure 2 has 18 transitions");

    // Round-trip the GraphViz artifact like the TLC -> Mocket boundary.
    let dot = to_dot(&result.graph);
    let back = from_dot(&dot).expect("DOT round-trip");
    assert_eq!(back.state_count(), result.graph.state_count());
    assert_eq!(back.edge_count(), result.graph.edge_count());
    println!("\n--- GraphViz DOT (first 12 lines) ---");
    for line in dot.lines().take(12) {
        println!("{line}");
    }

    println!("\n=== Checker scaling on CacheMax ===");
    println!(
        "{:>6} {:>10} {:>10} {:>12}",
        "|Data|", "states", "edges", "time"
    );
    for n in [2, 3, 4, 5, 6] {
        let start = Instant::now();
        let r = ModelChecker::new(Arc::new(CacheMax::with_data_size(n))).run();
        println!(
            "{:>6} {:>10} {:>10} {:>12?}",
            n,
            r.stats.distinct_states,
            r.stats.edges,
            start.elapsed(),
        );
    }
}
