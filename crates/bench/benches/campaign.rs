//! Campaign-harness throughput and recovery overhead.
//!
//! Runs the Xraft campaign end-to-end **in-process** (worker loops on
//! threads instead of child processes — the orchestration, lease, and
//! journal code paths are identical), measures cases/sec by worker
//! count, then interrupts a campaign mid-flight with an injected drain
//! and times the resume. Canonical merge outputs are asserted
//! byte-identical across worker counts and across the
//! interrupt-and-resume cycle, and the numbers go to
//! `BENCH_campaign.json` at the repository root.
//!
//! `BENCH_SMOKE=1` shrinks the case set and worker-count sweep so CI
//! can exercise the whole harness in seconds.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mocket_checker::StateGraph;
use mocket_core::orchestrator::{
    clear_drain_marker, merge_campaign, worker_loop, CampaignPlan, InjectionConfig, LeaseConfig,
    MergeInputs, PlanCase, ShardSetup, WorkerConfig, WorkerContext,
};
use mocket_core::{Pipeline, PipelineConfig, RunConfig, TestCase};
use mocket_obs::Obs;
use mocket_core::SystemUnderTest;
use mocket_raft_async::{make_sut, mapping, XraftBugs};
use mocket_runtime::Backend;
use mocket_sim::SimHandle;
use mocket_specs::raft::{RaftSpec, RaftSpecConfig};
use mocket_tla::Spec;

/// Peak RSS (VmHWM) in kB, from /proc/self/status; 0 off-Linux.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|rest| rest.split_whitespace().next())
                    .and_then(|kb| kb.parse().ok())
            })
        })
        .unwrap_or(0)
}

/// One campaign scenario: the model, the case budget, sharding.
#[derive(Clone)]
struct Scenario {
    max_states: usize,
    max_test_cases: usize,
    max_path_len: usize,
    shard_size: usize,
}

impl Scenario {
    fn smoke() -> Scenario {
        Scenario {
            max_states: 2000,
            max_test_cases: 12,
            max_path_len: 0,
            shard_size: 4,
        }
    }

    fn full() -> Scenario {
        Scenario {
            max_states: 20_000,
            max_test_cases: 48,
            max_path_len: 0,
            shard_size: 8,
        }
    }

    fn pipeline_config(&self) -> PipelineConfig {
        let mut pc = PipelineConfig::default();
        pc.max_states = self.max_states;
        pc.por = false;
        pc.stop_at_first_bug = false;
        pc.max_path_len = self.max_path_len;
        pc.max_test_cases = self.max_test_cases;
        pc.run = RunConfig::fast();
        pc
    }
}

fn xraft_spec() -> Arc<dyn Spec> {
    Arc::new(RaftSpec::new(RaftSpecConfig::xraft(vec![1, 2])))
}

fn xraft_servers() -> Vec<u64> {
    RaftSpecConfig::xraft(vec![1, 2])
        .servers
        .iter()
        .map(|&i| i as u64)
        .collect()
}

/// Materializes the plan's view of the selected paths, exactly as the
/// CLI does when pinning a campaign.
fn plan_cases(graph: &StateGraph, paths: &[Vec<mocket_checker::EdgeId>]) -> Vec<PlanCase> {
    paths
        .iter()
        .map(|p| match TestCase::from_edge_path(graph, p) {
            Some(tc) => PlanCase {
                hash: tc.stable_hash(),
                len: tc.len(),
            },
            None => PlanCase {
                hash: "-".into(),
                len: 0,
            },
        })
        .collect()
}

const LEASE: LeaseConfig = LeaseConfig {
    heartbeat: Duration::from_millis(50),
    ttl: Duration::from_millis(2000),
};

/// Runs one worker loop on the current thread — the same code a
/// `campaign-worker` child process runs, minus the process boundary.
fn run_worker(scenario: &Scenario, dir: &Path, worker_id: usize, inject: InjectionConfig) {
    let spec = xraft_spec();
    let registry = mapping();
    let servers = xraft_servers();
    let plan = CampaignPlan::load(dir)
        .expect("load pinned plan")
        .expect("plan pinned before workers start");
    let worker_dir = dir.join(format!("worker-{worker_id}"));
    let obs = Obs::jsonl_in(&worker_dir).unwrap_or_else(|_| Obs::disabled());

    let mut base_pc = scenario.pipeline_config();
    base_pc.obs = obs.clone();
    let base = Pipeline::new(spec.clone(), registry.clone(), base_pc).expect("bench mapping");
    let (graph, check_seconds) = base.check();
    let (paths, _ec, _ecpor, _excl) = base.generate_paths(&graph);

    let run_cfg = RunConfig::fast();
    let spec_name = spec.name().to_string();
    let wcfg = WorkerConfig {
        campaign_dir: dir.to_path_buf(),
        worker_id,
        lease: LEASE,
        poison_threshold: 2,
        plan_hash: plan.stable_hash(),
        inject,
    };
    let ctx = WorkerContext {
        plan: &plan,
        spec_name: &spec_name,
        spec_config: "target=xraft bug=-",
        run: &run_cfg,
        paths: &paths,
        check_seconds,
    };
    let build = |setup: &ShardSetup| {
        let mut pc = scenario.pipeline_config();
        pc.obs = obs.clone();
        pc.case_range = Some(setup.range);
        pc.case_gate = Some(setup.gate.clone());
        pc.triage.campaign_dir = Some(setup.shard_dir.clone());
        pc.triage.spec_config = "target=xraft bug=-".to_string();
        Pipeline::new(spec.clone(), registry.clone(), pc).expect("bench mapping")
    };
    let mut make = move || -> Box<dyn mocket_core::SystemUnderTest> {
        Box::new(make_sut(servers.clone(), XraftBugs::none()))
    };
    worker_loop(&wcfg, &ctx, graph, build, &mut make).expect("worker loop");
}

/// Pins the plan (or verifies resume), runs `workers` worker loops on
/// threads, merges. Returns the wall-clock seconds of the worker +
/// merge phase (planning/model-checking excluded — that cost is
/// amortized across a real campaign's lifetime and reported
/// separately).
fn run_campaign(
    scenario: &Scenario,
    dir: &Path,
    workers: usize,
    inject: InjectionConfig,
) -> (f64, usize) {
    let spec = xraft_spec();
    let obs = Obs::disabled();
    let mut pc = scenario.pipeline_config();
    pc.obs = obs.clone();
    let pipeline = Pipeline::new(spec.clone(), mapping(), pc).expect("bench mapping");
    let (graph, _check_seconds) = pipeline.check();
    let (paths, _ec, _ecpor, por_excluded) = pipeline.generate_paths(&graph);
    let fresh = CampaignPlan {
        target: "xraft".into(),
        bug: None,
        max_states: scenario.max_states,
        max_path_len: scenario.max_path_len,
        max_test_cases: scenario.max_test_cases,
        shard_size: scenario.shard_size,
        cases: plan_cases(&graph, &paths),
    };
    let plan = match CampaignPlan::load(dir).expect("load plan") {
        Some(existing) => {
            existing.verify_matches(&fresh).expect("resume plan matches");
            existing
        }
        None => {
            fresh.write_to(dir).expect("pin plan");
            fresh
        }
    };
    clear_drain_marker(dir);

    let started = Instant::now();
    std::thread::scope(|scope| {
        for id in 0..workers {
            let scenario = scenario.clone();
            let inject = inject.clone();
            let dir = dir.to_path_buf();
            scope.spawn(move || run_worker(&scenario, &dir, id, inject));
        }
    });

    let m = obs.metrics();
    let merged = merge_campaign(&MergeInputs {
        campaign_dir: dir,
        plan: &plan,
        graph: &graph,
        paths: &paths,
        spec_name: spec.name(),
        coverage_visited: m.gauge("coverage.edges_visited").unwrap_or(0.0) as u64,
        coverage_targets: m.gauge("coverage.edge_targets").unwrap_or(0.0) as u64,
        coverage_fraction: m.gauge("coverage.fraction").unwrap_or(0.0),
        por_excluded: por_excluded as u64,
        completed: true,
        obs: obs.clone(),
    })
    .expect("merge");
    (started.elapsed().as_secs_f64(), merged.cases_with_verdict)
}

/// The canonical outputs that must not depend on worker count or on
/// an interrupt-and-resume cycle.
const CANONICAL_STABLE: &[&str] = &["journal.log", "coverage.json"];

fn read_canonical(dir: &Path) -> Vec<(String, Vec<u8>)> {
    CANONICAL_STABLE
        .iter()
        .map(|name| {
            let bytes = std::fs::read(dir.join(name))
                .unwrap_or_else(|e| panic!("read {name} in {}: {e}", dir.display()));
            (name.to_string(), bytes)
        })
        .collect()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("mocket-bench-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create bench dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Run {
    workers: usize,
    secs: f64,
    cases_per_sec: f64,
    speedup: f64,
}

/// One timed case phase on one cluster backend.
struct BackendRow {
    workload: &'static str,
    sim: bool,
    secs: f64,
    cases: usize,
    cases_per_sec: f64,
    /// Throughput relative to the real (threaded) row of the same
    /// workload; 1.0 for the real row itself.
    speedup: f64,
}

/// Times the case-execution phase of one workload on one backend
/// (model checking excluded — it is backend-independent). Returns
/// wall seconds, cases run, and the verdict kinds for parity checks.
fn time_backend<M>(
    spec: Arc<dyn Spec>,
    registry: mocket_core::MappingRegistry,
    max_test_cases: usize,
    mut make: M,
    sim: Option<&SimHandle>,
) -> (f64, usize, Vec<String>)
where
    M: FnMut(Backend) -> Box<dyn SystemUnderTest>,
{
    let mut pc = PipelineConfig::default();
    pc.max_states = 20_000;
    pc.por = false;
    pc.stop_at_first_bug = false;
    pc.max_path_len = 60;
    pc.max_test_cases = max_test_cases;
    pc.run = RunConfig::fast();
    pc.obs = Obs::disabled();
    let backend = match sim {
        Some(handle) => {
            pc.clock = handle.clock.clone();
            Backend::Sim(handle.clone())
        }
        None => Backend::Threads,
    };
    let pipeline = Pipeline::new(spec, registry, pc).expect("bench mapping");
    let (graph, check_seconds) = pipeline.check();
    let started = Instant::now();
    let result = pipeline.run_prepared(graph, check_seconds, || make(backend.clone()));
    let secs = started.elapsed().as_secs_f64();
    let cases = result.passed + result.reports.len() + result.quarantined.len();
    let verdicts = result
        .reports
        .iter()
        .map(|r| r.inconsistency.kind().to_string())
        .collect();
    (secs, cases, verdicts)
}

/// Real-vs-sim throughput on two workloads: the clean Xraft campaign
/// (every case passes; real mode still pays per-step thread
/// round-trips) and a bug-seeded SyncRaft campaign (failing cases
/// wait out 50ms offer deadlines through the runner's backoff, then
/// pay them again during triage and minimization — in sim those waits
/// are instant virtual-time jumps). Verdict parity between backends
/// is asserted before any number is reported.
fn run_backend_comparison(smoke: bool) -> Vec<BackendRow> {
    let mut rows = Vec::new();
    let workloads: Vec<(
        &'static str,
        Arc<dyn Spec>,
        mocket_core::MappingRegistry,
        usize,
        Box<dyn FnMut(Backend) -> Box<dyn SystemUnderTest>>,
    )> = vec![
        (
            "xraft-clean",
            xraft_spec(),
            mapping(),
            if smoke { 8 } else { 24 },
            Box::new(|backend| {
                Box::new(mocket_raft_async::make_sut_backend(
                    xraft_servers(),
                    XraftBugs::none(),
                    backend,
                ))
            }),
        ),
        (
            "raft-java-buggy",
            {
                let mut cfg = RaftSpecConfig::raft_java(vec![1, 2, 3]);
                cfg.max_term = 2;
                cfg.client_request_limit = 0;
                cfg.candidates = Some(vec![1]);
                Arc::new(RaftSpec::new(cfg))
            },
            mocket_raft_sync::mapping(false),
            if smoke { 4 } else { 12 },
            Box::new(|backend| {
                let mut bugs = mocket_raft_sync::SyncRaftBugs::none();
                bugs.ignore_extra_vote_response = true;
                Box::new(mocket_raft_sync::make_sut_backend(
                    vec![1, 2, 3],
                    bugs,
                    backend,
                ))
            }),
        ),
        // The same buggy campaign under seeded time-based delay
        // faults: every deployment holds ~40% of messages for a
        // 5–12ms RTT maturing on the cluster clock. Real mode pays
        // the holds in wall time; sim mode jumps them — and the
        // verdict-parity assertion below doubles as the delay-fault
        // equivalence gate.
        (
            "raft-java-buggy-delays",
            {
                let mut cfg = RaftSpecConfig::raft_java(vec![1, 2, 3]);
                cfg.max_term = 2;
                cfg.client_request_limit = 0;
                cfg.candidates = Some(vec![1]);
                Arc::new(RaftSpec::new(cfg))
            },
            mocket_raft_sync::mapping(false),
            if smoke { 4 } else { 12 },
            Box::new(|backend| {
                let mut bugs = mocket_raft_sync::SyncRaftBugs::none();
                bugs.ignore_extra_vote_response = true;
                let plan = mocket_dsnet::FaultPlan::with_config(
                    99,
                    mocket_dsnet::FaultPlanConfig::timed_delays(
                        Duration::from_millis(5),
                        Duration::from_millis(2),
                    ),
                );
                Box::new(mocket_raft_sync::make_sut_full(
                    vec![1, 2, 3],
                    bugs,
                    false,
                    backend,
                    Some(plan),
                ))
            }),
        ),
    ];
    for (workload, spec, registry, cases_budget, mut make) in workloads {
        let (real_secs, real_cases, real_verdicts) =
            time_backend(spec.clone(), registry.clone(), cases_budget, &mut make, None);
        let handle = SimHandle::new(42);
        let (sim_secs, sim_cases, sim_verdicts) =
            time_backend(spec, registry, cases_budget, &mut make, Some(&handle));
        assert_eq!(
            real_verdicts, sim_verdicts,
            "{workload}: sim backend must reproduce the real backend's verdicts"
        );
        assert_eq!(real_cases, sim_cases);
        let real_rate = real_cases as f64 / real_secs.max(1e-9);
        let sim_rate = sim_cases as f64 / sim_secs.max(1e-9);
        let speedup = sim_rate / real_rate.max(1e-9);
        println!(
            "backend {workload}: real {real_cases} case(s) in {real_secs:.3}s \
             ({real_rate:.1}/sec), sim in {sim_secs:.3}s ({sim_rate:.1}/sec, {speedup:.1}x)"
        );
        rows.push(BackendRow {
            workload,
            sim: false,
            secs: real_secs,
            cases: real_cases,
            cases_per_sec: real_rate,
            speedup: 1.0,
        });
        rows.push(BackendRow {
            workload,
            sim: true,
            secs: sim_secs,
            cases: sim_cases,
            cases_per_sec: sim_rate,
            speedup,
        });
    }
    rows
}

/// The tracing no-op-path guard's measurements.
struct TracingGuard {
    cases: usize,
    off_secs: f64,
    on_secs: f64,
    off_cases_per_sec: f64,
    on_cases_per_sec: f64,
    /// Throughput lost by turning tracing on: `1 - on_rate/off_rate`.
    on_overhead_frac: f64,
}

/// Measures the case-execution loop with causal tracing off (the
/// default every campaign gets) against the same loop with tracing on,
/// interleaved best-of-N on the sim backend so the timing is dominated
/// by the loop itself rather than sleeps or I/O (no campaign dir: the
/// traced runs record events in memory, isolating the hook cost from
/// file appends).
///
/// The guard asserted in `main` (full mode): the off path must not run
/// more than 2% slower than the on path. A disabled tracer is one
/// null-check per hook; if the off path falls measurably behind even
/// the *tracing* loop, the no-op gate broke and every untraced
/// campaign is paying for tracing it did not ask for. The on path's
/// own cost is real work and is recorded, not bounded.
fn run_tracing_guard(smoke: bool) -> TracingGuard {
    let cases = if smoke { 8 } else { 48 };
    let reps = if smoke { 3 } else { 7 };
    let run_once = |trace: bool| -> (f64, usize) {
        let handle = SimHandle::new(42);
        let mut pc = PipelineConfig::default();
        pc.max_states = 20_000;
        pc.por = false;
        pc.stop_at_first_bug = false;
        pc.max_path_len = 60;
        pc.max_test_cases = cases;
        pc.run = RunConfig::fast();
        pc.obs = Obs::disabled();
        pc.clock = handle.clock.clone();
        pc.trace = trace;
        let pipeline = Pipeline::new(xraft_spec(), mapping(), pc).expect("bench mapping");
        let (graph, check_seconds) = pipeline.check();
        let started = Instant::now();
        let result = pipeline.run_prepared(graph, check_seconds, || {
            Box::new(mocket_raft_async::make_sut_backend(
                xraft_servers(),
                XraftBugs::none(),
                Backend::Sim(handle.clone()),
            )) as Box<dyn SystemUnderTest>
        });
        let secs = started.elapsed().as_secs_f64();
        let ran = result.passed + result.reports.len() + result.quarantined.len();
        (secs, ran)
    };
    let (mut off_secs, mut on_secs) = (f64::INFINITY, f64::INFINITY);
    let mut ran = 0usize;
    for _ in 0..reps {
        let (off, n) = run_once(false);
        let (on, m) = run_once(true);
        assert_eq!(n, m, "tracing must not change which cases run");
        ran = n;
        off_secs = off_secs.min(off);
        on_secs = on_secs.min(on);
    }
    let off_rate = ran as f64 / off_secs.max(1e-9);
    let on_rate = ran as f64 / on_secs.max(1e-9);
    let guard = TracingGuard {
        cases: ran,
        off_secs,
        on_secs,
        off_cases_per_sec: off_rate,
        on_cases_per_sec: on_rate,
        on_overhead_frac: 1.0 - on_rate / off_rate.max(1e-9),
    };
    println!(
        "tracing guard: off {ran} case(s) in {off_secs:.4}s ({off_rate:.1}/sec), \
         on in {on_secs:.4}s ({on_rate:.1}/sec, overhead {:.1}%)",
        guard.on_overhead_frac * 100.0
    );
    guard
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let scenario = if smoke {
        Scenario::smoke()
    } else {
        Scenario::full()
    };
    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };

    // Throughput sweep: one fresh campaign per worker count, canonical
    // outputs byte-compared against the single-worker baseline.
    let mut runs: Vec<Run> = Vec::new();
    let mut cases_total = 0usize;
    let mut baseline: Option<Vec<(String, Vec<u8>)>> = None;
    let mut reference: Option<(usize, f64)> = None;
    for &workers in worker_counts {
        let dir = TempDir::new(&format!("w{workers}"));
        let (secs, cases) = run_campaign(&scenario, &dir.0, workers, InjectionConfig::default());
        cases_total = cases;
        let outputs = read_canonical(&dir.0);
        match &baseline {
            None => baseline = Some(outputs),
            Some(base) => {
                for ((name, a), (_, b)) in base.iter().zip(&outputs) {
                    assert_eq!(a, b, "{name} must not depend on worker count");
                }
            }
        }
        let base_secs = reference.get_or_insert((workers, secs)).1;
        let speedup = if secs > 0.0 { base_secs / secs } else { 1.0 };
        println!(
            "workers={workers}: {cases} case(s) in {secs:.3}s ({:.1} cases/sec, {speedup:.2}x)",
            cases as f64 / secs.max(1e-9)
        );
        runs.push(Run {
            workers,
            secs,
            cases_per_sec: cases as f64 / secs.max(1e-9),
            speedup,
        });
    }

    // Recovery overhead: drain mid-campaign, then resume the same
    // directory and verify the merged outputs match an uninterrupted
    // run byte for byte.
    let workers = *worker_counts.last().unwrap();
    let clean = TempDir::new("recovery-clean");
    let (clean_secs, _) = run_campaign(&scenario, &clean.0, workers, InjectionConfig::default());
    let interrupted = TempDir::new("recovery-interrupted");
    let drain_at = scenario.max_test_cases / 2;
    let inject = InjectionConfig {
        drain: Some(drain_at),
        ..InjectionConfig::default()
    };
    let (interrupted_secs, _) = run_campaign(&scenario, &interrupted.0, workers, inject);
    let (resume_secs, _) =
        run_campaign(&scenario, &interrupted.0, workers, InjectionConfig::default());
    for ((name, a), (_, b)) in read_canonical(&clean.0)
        .iter()
        .zip(&read_canonical(&interrupted.0))
    {
        assert_eq!(a, b, "{name} must survive interrupt-and-resume unchanged");
    }
    let overhead_frac = ((interrupted_secs + resume_secs) - clean_secs) / clean_secs.max(1e-9);
    println!(
        "recovery: clean {clean_secs:.3}s, interrupted {interrupted_secs:.3}s + resume \
         {resume_secs:.3}s (overhead {:.0}%)",
        overhead_frac * 100.0
    );

    // Causal tracing's fast no-op path: the default (untraced) loop
    // must not pay for the tracing hooks.
    let tracing = run_tracing_guard(smoke);
    if !smoke {
        assert!(
            tracing.off_cases_per_sec >= tracing.on_cases_per_sec * 0.98,
            "tracing-off loop regressed >2% below the tracing-on loop \
             ({:.1} vs {:.1} cases/sec) — the no-op gate is broken",
            tracing.off_cases_per_sec,
            tracing.on_cases_per_sec
        );
    }

    // Simulation backend: same campaigns, virtual clock, no wall-clock
    // sleeps.
    let backend_rows = run_backend_comparison(smoke);
    if !smoke {
        let buggy_sim = backend_rows
            .iter()
            .find(|r| r.workload == "raft-java-buggy" && r.sim)
            .expect("buggy sim row");
        assert!(
            buggy_sim.speedup >= 50.0,
            "sim backend must deliver >=50x cases/sec on the bug-seeded \
             workload, got {:.1}x",
            buggy_sim.speedup
        );
    }

    let rss_kb = peak_rss_kb();
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"campaign\",");
    let _ = writeln!(json, "  \"model\": \"xraft\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"cases\": {cases_total},");
    let _ = writeln!(json, "  \"shard_size\": {},", scenario.shard_size);
    let _ = writeln!(json, "  \"peak_rss_kb\": {rss_kb},");
    let _ = writeln!(
        json,
        "  \"recovery\": {{\"clean_secs\": {clean_secs:.4}, \"interrupted_secs\": \
         {interrupted_secs:.4}, \"resume_secs\": {resume_secs:.4}, \"overhead_frac\": \
         {overhead_frac:.4}}},"
    );
    let _ = writeln!(
        json,
        "  \"tracing_guard\": {{\"cases\": {}, \"off_secs\": {:.4}, \"on_secs\": {:.4}, \
         \"off_cases_per_sec\": {:.1}, \"on_cases_per_sec\": {:.1}, \"on_overhead_frac\": \
         {:.4}, \"off_regression_budget_frac\": 0.02}},",
        tracing.cases,
        tracing.off_secs,
        tracing.on_secs,
        tracing.off_cases_per_sec,
        tracing.on_cases_per_sec,
        tracing.on_overhead_frac
    );
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"secs\": {:.4}, \"cases_per_sec\": {:.1}, \"speedup\": {:.3}}}{}",
            r.workers,
            r.secs,
            r.cases_per_sec,
            r.speedup,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"backends\": [");
    for (i, r) in backend_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"sim\": {}, \"secs\": {:.4}, \"cases\": {}, \
             \"cases_per_sec\": {:.1}, \"speedup\": {:.1}}}{}",
            r.workload,
            r.sim,
            r.secs,
            r.cases,
            r.cases_per_sec,
            r.speedup,
            if i + 1 < backend_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    // Walk up from the bench crate to the workspace root so the
    // artifact lands beside the other BENCH_*.json files.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = root.join("BENCH_campaign.json");
    std::fs::write(&out, &json).expect("write BENCH_campaign.json");
    println!("wrote {}", out.display());
}
