//! Ablation: traversal strategy and partial-order reduction.
//!
//! §4.2.1 argues for edge coverage over node coverage; §4.2.2 adds
//! POR; §6.3 compares against random approaches. This bench puts the
//! three strategies side by side on the same graphs: how many paths
//! each generates and what fraction of the graph's edges (the
//! conformance surface) each covers.

use std::sync::Arc;

use mocket_checker::ModelChecker;
use mocket_core::{
    edge_coverage_paths, node_coverage_paths, partial_order_reduction, random_walk_paths,
    TraversalConfig,
};
use mocket_specs::cachemax::CacheMax;
use mocket_specs::raft::RaftSpec;
use mocket_specs::zab::ZabSpec;

fn main() {
    let graphs: Vec<(&str, mocket_checker::StateGraph)> = vec![
        (
            "CacheMax",
            ModelChecker::new(Arc::new(CacheMax::with_data_size(4)))
                .run()
                .graph,
        ),
        (
            "Xraft",
            ModelChecker::new(Arc::new(RaftSpec::new(mocket_bench::xraft_model())))
                .run()
                .graph,
        ),
        (
            "ZooKeeper",
            ModelChecker::new(Arc::new(ZabSpec::new(mocket_bench::zookeeper_model())))
                .run()
                .graph,
        ),
    ];

    println!("=== Ablation: traversal strategies ===");
    println!(
        "{:<10} {:<14} {:>9} {:>12} {:>10}",
        "Graph", "Strategy", "paths", "edges cov.", "coverage"
    );
    for (name, graph) in &graphs {
        let mut cfg = TraversalConfig::default();
        cfg.max_path_len = 60;
        let ec = edge_coverage_paths(graph, &cfg);

        let mut cfg = TraversalConfig::default();
        cfg.max_path_len = 60;
        let nc = node_coverage_paths(graph, &cfg);

        // Random walks with the same budget of scheduled actions EC
        // used.
        let ec_steps: usize = ec.paths.iter().map(Vec::len).sum();
        let walks = (ec_steps / 30).max(1);
        let rw = random_walk_paths(graph, walks, 30, 42);

        let por = partial_order_reduction(graph);
        let mut cfg = TraversalConfig::default();
        cfg.max_path_len = 60;
        let reduced = edge_coverage_paths(graph, &cfg.with_excluded_edges(por.excluded_edges));

        for (strategy, r) in [
            ("edge cov.", &ec),
            ("edge cov.+POR", &reduced),
            ("node cov.", &nc),
            ("random walk", &rw),
        ] {
            println!(
                "{:<10} {:<14} {:>9} {:>12} {:>9.1}%",
                name,
                strategy,
                r.paths.len(),
                r.edges_visited,
                100.0 * r.edges_visited as f64 / graph.edge_count().max(1) as f64,
            );
        }
        // Shape: EC covers (nearly) everything; node coverage covers
        // far fewer edges; POR keeps full *target* coverage with far
        // fewer paths.
        assert!(ec.edges_visited >= nc.edges_visited);
        assert!(reduced.paths.len() <= ec.paths.len());
        println!();
    }
}
