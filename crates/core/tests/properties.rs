//! Randomized (seed-driven) tests for traversal, partial-order
//! reduction and test-case handling over randomly generated state
//! graphs.
//!
//! Formerly written against `proptest`; now driven by a local
//! deterministic xorshift generator so the suite builds without
//! third-party dependencies.

use mocket_checker::StateGraph;
use mocket_core::{
    edge_coverage_paths, node_coverage_paths, partial_order_reduction, random_walk_paths, TestCase,
    TraversalConfig,
};
use mocket_tla::{ActionInstance, State, Value};

/// Deterministic xorshift64 generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(if seed == 0 { 0x9e3779b97f4a7c15 } else { seed })
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() as usize) % n
    }
}

/// A random connected-ish graph: `n` nodes, edges from each node to
/// random targets with random action labels; node 0 is initial.
fn arb_graph(rng: &mut Rng) -> StateGraph {
    let n = 2 + rng.pick(18);
    let edge_count = 1 + rng.pick(59);
    let mut g = StateGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            g.insert_state(State::from_pairs([("n", Value::Int(i as i64))]))
                .0
        })
        .collect();
    g.mark_initial(ids[0]);
    for _ in 0..edge_count {
        let f = ids[rng.pick(n)];
        let t = ids[rng.pick(n)];
        let label = rng.pick(5);
        g.add_edge(f, ActionInstance::new(format!("a{label}"), vec![]), t);
    }
    g
}

/// Edges reachable from the initial states (the coverage upper bound).
fn reachable_edges(g: &StateGraph) -> usize {
    let reach = g.reachable();
    g.edges().iter().filter(|e| reach[e.from.0]).count()
}

const CASES: u64 = 120;

#[test]
fn edge_coverage_is_complete_on_reachable_edges() {
    for seed in 1..=CASES {
        let g = arb_graph(&mut Rng::new(seed));
        let r = edge_coverage_paths(&g, &TraversalConfig::default());
        // Without end states or exclusions, the DFS must walk every
        // edge reachable from the initial state exactly once.
        assert_eq!(r.edges_visited, reachable_edges(&g), "seed {seed}");
        let mut walked = std::collections::HashSet::new();
        for p in &r.paths {
            for e in p {
                walked.insert(*e);
            }
        }
        assert_eq!(walked.len(), r.edges_visited, "seed {seed}");
    }
}

#[test]
fn every_generated_path_is_walkable_from_an_initial_state() {
    for seed in 1..=CASES {
        let g = arb_graph(&mut Rng::new(seed.wrapping_mul(31)));
        let r = edge_coverage_paths(&g, &TraversalConfig::default());
        for p in &r.paths {
            let first = g.edge(p[0]);
            assert!(g.initial_states().contains(&first.from), "seed {seed}");
            for w in p.windows(2) {
                assert_eq!(g.edge(w[0]).to, g.edge(w[1]).from, "seed {seed}");
            }
        }
    }
}

#[test]
fn test_cases_from_paths_validate_and_roundtrip() {
    for seed in 1..=CASES {
        let g = arb_graph(&mut Rng::new(seed.wrapping_mul(17)));
        let r = edge_coverage_paths(&g, &TraversalConfig::default());
        for p in r.paths.iter().take(10) {
            let tc = TestCase::from_edge_path(&g, p).expect("traversal paths are non-empty");
            assert!(tc.validate_against(&g).is_ok(), "seed {seed}");
            let back = TestCase::deserialize(&tc.serialize()).unwrap();
            assert_eq!(back, tc, "seed {seed}");
        }
    }
}

#[test]
fn por_exclusions_are_sound() {
    for seed in 1..=CASES {
        let g = arb_graph(&mut Rng::new(seed.wrapping_mul(101)));
        let por = partial_order_reduction(&g);
        // 1. Kept orders are never excluded.
        for d in &por.diamonds {
            assert!(!por.excluded_edges.contains(&d.kept.0), "seed {seed}");
            assert!(!por.excluded_edges.contains(&d.kept.1), "seed {seed}");
        }
        // 2. Each diamond's dropped order schedules exactly the same
        //    two actions as its kept order (that is what makes the
        //    order redundant).
        for d in &por.diamonds {
            let kept: std::collections::BTreeSet<_> = [
                g.edge(d.kept.0).action.name.clone(),
                g.edge(d.kept.1).action.name.clone(),
            ]
            .into();
            let dropped: std::collections::BTreeSet<_> = [
                g.edge(d.dropped.0).action.name.clone(),
                g.edge(d.dropped.1).action.name.clone(),
            ]
            .into();
            assert_eq!(kept, dropped, "seed {seed}");
            // Both orders reconverge.
            assert_eq!(g.edge(d.kept.1).to, d.target, "seed {seed}");
            assert_eq!(g.edge(d.dropped.1).to, d.target, "seed {seed}");
        }
        // 3. Excluded edges all come from some diamond's dropped
        //    order. (Reachability of *other* labels behind a dropped
        //    bridge edge is NOT guaranteed — the §7.2 limitation; the
        //    pipeline tests exercise that trade-off directly.)
        for e in &por.excluded_edges {
            assert!(
                por.diamonds
                    .iter()
                    .any(|d| d.dropped.0 == *e || d.dropped.1 == *e),
                "seed {seed}"
            );
        }
        let full = edge_coverage_paths(&g, &TraversalConfig::default());
        let reduced = edge_coverage_paths(
            &g,
            &TraversalConfig::default().with_excluded_edges(por.excluded_edges.clone()),
        );
        assert!(reduced.edges_visited <= full.edges_visited, "seed {seed}");
    }
}

#[test]
fn node_coverage_visits_no_more_edges_than_edge_coverage() {
    for seed in 1..=CASES {
        let g = arb_graph(&mut Rng::new(seed.wrapping_mul(7)));
        let ec = edge_coverage_paths(&g, &TraversalConfig::default());
        let nc = node_coverage_paths(&g, &TraversalConfig::default());
        assert!(nc.edges_visited <= ec.edges_visited, "seed {seed}");
    }
}

#[test]
fn random_walks_never_exceed_bounds() {
    for seed in 1..=CASES {
        let mut rng = Rng::new(seed.wrapping_mul(13));
        let g = arb_graph(&mut rng);
        let walk_seed = 1 + rng.next_u64() % 1000;
        let r = random_walk_paths(&g, 20, 7, walk_seed);
        assert!(r.paths.len() <= 20, "seed {seed}");
        for p in &r.paths {
            assert!(p.len() <= 7, "seed {seed}");
            let first = g.edge(p[0]);
            assert!(g.initial_states().contains(&first.from), "seed {seed}");
        }
        assert!(r.edges_visited <= g.edge_count(), "seed {seed}");
    }
}

#[test]
fn max_path_len_is_respected() {
    for seed in 1..=CASES {
        let mut rng = Rng::new(seed.wrapping_mul(43));
        let g = arb_graph(&mut rng);
        let cap = 1 + rng.pick(5);
        let mut cfg = TraversalConfig::default();
        cfg.max_path_len = cap;
        let r = edge_coverage_paths(&g, &cfg);
        for p in &r.paths {
            assert!(p.len() <= cap, "seed {seed}");
        }
    }
}
