//! Property-based tests for traversal, partial-order reduction and
//! test-case handling over randomly generated state graphs.

use proptest::prelude::*;

use mocket_checker::StateGraph;
use mocket_core::{
    edge_coverage_paths, node_coverage_paths, partial_order_reduction, random_walk_paths, TestCase,
    TraversalConfig,
};
use mocket_tla::{ActionInstance, State, Value};

/// A random connected-ish graph: `n` nodes, edges from each node to
/// random targets with random action labels; node 0 is initial.
fn arb_graph() -> impl Strategy<Value = StateGraph> {
    (
        2usize..20,
        prop::collection::vec((0usize..20, 0usize..20, 0u8..5), 1..60),
    )
        .prop_map(|(n, edges)| {
            let mut g = StateGraph::new();
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    g.insert_state(State::from_pairs([("n", Value::Int(i as i64))]))
                        .0
                })
                .collect();
            g.mark_initial(ids[0]);
            for (from, to, label) in edges {
                let f = ids[from % n];
                let t = ids[to % n];
                g.add_edge(f, ActionInstance::new(format!("a{label}"), vec![]), t);
            }
            g
        })
}

/// Edges reachable from the initial states (the coverage upper bound).
fn reachable_edges(g: &StateGraph) -> usize {
    let reach = g.reachable();
    g.edges().iter().filter(|e| reach[e.from.0]).count()
}

proptest! {
    #[test]
    fn edge_coverage_is_complete_on_reachable_edges(g in arb_graph()) {
        let r = edge_coverage_paths(&g, &TraversalConfig::default());
        // Without end states or exclusions, the DFS must walk every
        // edge reachable from the initial state exactly once.
        prop_assert_eq!(r.edges_visited, reachable_edges(&g));
        let mut seen = std::collections::HashSet::new();
        let mut walked = std::collections::HashSet::new();
        for p in &r.paths {
            for e in p {
                walked.insert(*e);
            }
            // Each path's *last* edge is freshly covered by that path.
            seen.insert(*p.last().unwrap());
        }
        prop_assert_eq!(walked.len(), r.edges_visited);
    }

    #[test]
    fn every_generated_path_is_walkable_from_an_initial_state(g in arb_graph()) {
        let r = edge_coverage_paths(&g, &TraversalConfig::default());
        for p in &r.paths {
            let first = g.edge(p[0]);
            prop_assert!(g.initial_states().contains(&first.from));
            for w in p.windows(2) {
                prop_assert_eq!(g.edge(w[0]).to, g.edge(w[1]).from);
            }
        }
    }

    #[test]
    fn test_cases_from_paths_validate_and_roundtrip(g in arb_graph()) {
        let r = edge_coverage_paths(&g, &TraversalConfig::default());
        for p in r.paths.iter().take(10) {
            let tc = TestCase::from_edge_path(&g, p);
            prop_assert!(tc.validate_against(&g).is_ok());
            let back = TestCase::deserialize(&tc.serialize()).unwrap();
            prop_assert_eq!(back, tc);
        }
    }

    #[test]
    fn por_exclusions_are_sound(g in arb_graph()) {
        let por = partial_order_reduction(&g);
        // 1. Kept orders are never excluded.
        for d in &por.diamonds {
            prop_assert!(!por.excluded_edges.contains(&d.kept.0));
            prop_assert!(!por.excluded_edges.contains(&d.kept.1));
        }
        // 2. Each diamond's dropped order schedules exactly the same
        //    two actions as its kept order (that is what makes the
        //    order redundant).
        for d in &por.diamonds {
            let kept: std::collections::BTreeSet<_> = [
                g.edge(d.kept.0).action.name.clone(),
                g.edge(d.kept.1).action.name.clone(),
            ]
            .into();
            let dropped: std::collections::BTreeSet<_> = [
                g.edge(d.dropped.0).action.name.clone(),
                g.edge(d.dropped.1).action.name.clone(),
            ]
            .into();
            prop_assert_eq!(kept, dropped);
            // Both orders reconverge.
            prop_assert_eq!(g.edge(d.kept.1).to, d.target);
            prop_assert_eq!(g.edge(d.dropped.1).to, d.target);
        }
        // 3. Excluded edges all come from some diamond's dropped
        //    order. (Reachability of *other* labels behind a dropped
        //    bridge edge is NOT guaranteed — the §7.2 limitation; the
        //    pipeline tests exercise that trade-off directly.)
        for e in &por.excluded_edges {
            prop_assert!(por.diamonds.iter().any(|d| d.dropped.0 == *e || d.dropped.1 == *e));
        }
        let full = edge_coverage_paths(&g, &TraversalConfig::default());
        let reduced = edge_coverage_paths(
            &g,
            &TraversalConfig::default().with_excluded_edges(por.excluded_edges.clone()),
        );
        prop_assert!(reduced.edges_visited <= full.edges_visited);
    }

    #[test]
    fn node_coverage_visits_no_more_edges_than_edge_coverage(g in arb_graph()) {
        let ec = edge_coverage_paths(&g, &TraversalConfig::default());
        let nc = node_coverage_paths(&g, &TraversalConfig::default());
        prop_assert!(nc.edges_visited <= ec.edges_visited);
    }

    #[test]
    fn random_walks_never_exceed_bounds(g in arb_graph(), seed in 1u64..1000) {
        let r = random_walk_paths(&g, 20, 7, seed);
        prop_assert!(r.paths.len() <= 20);
        for p in &r.paths {
            prop_assert!(p.len() <= 7);
            let first = g.edge(p[0]);
            prop_assert!(g.initial_states().contains(&first.from));
        }
        prop_assert!(r.edges_visited <= g.edge_count());
    }

    #[test]
    fn max_path_len_is_respected(g in arb_graph(), cap in 1usize..6) {
        let mut cfg = TraversalConfig::default();
        cfg.max_path_len = cap;
        let r = edge_coverage_paths(&g, &cfg);
        for p in &r.paths {
            prop_assert!(p.len() <= cap);
        }
    }
}
