//! Test cases (§4.2).
//!
//! A test case is a path through the state-space graph starting at an
//! initial state: an action sequence plus the expected (verified)
//! state after each action. During controlled testing each action is
//! scheduled in order and each intermediate state is a check point.

use std::fmt;

use mocket_tla::{parse_action_instance, parse_state, ActionInstance, ParseError, State, Value};

use mocket_checker::{NodeId, StateGraph};

/// One scheduled step: the action and the verified state it must
/// produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The action to schedule.
    pub action: ActionInstance,
    /// The verified state after the action.
    pub expected: State,
}

/// An executable test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCase {
    /// The verified initial state (checked before the first action).
    pub initial: State,
    /// The action/state sequence.
    pub steps: Vec<Step>,
}

impl TestCase {
    /// Builds a test case from an initial state and `(action, state)`
    /// pairs.
    pub fn new(initial: State, steps: Vec<(ActionInstance, State)>) -> Self {
        TestCase {
            initial,
            steps: steps
                .into_iter()
                .map(|(action, expected)| Step { action, expected })
                .collect(),
        }
    }

    /// Builds a test case from a node path in a state-space graph.
    ///
    /// `path` lists edge ids in traversal order; the path must be
    /// connected and start at an initial state of the graph. An empty
    /// path yields `None` — a traversal can legitimately produce no
    /// walkable edges (e.g. an initial state whose every out-edge was
    /// excluded by partial-order reduction), and that must skip the
    /// case, not panic the campaign.
    pub fn from_edge_path(graph: &StateGraph, path: &[mocket_checker::EdgeId]) -> Option<Self> {
        let first = graph.edge(*path.first()?);
        let initial = graph.state(first.from).clone();
        let mut steps = Vec::with_capacity(path.len());
        let mut cur = first.from;
        for &eid in path {
            let e = graph.edge(eid);
            assert_eq!(e.from, cur, "edge path is not connected");
            steps.push(Step {
                action: e.action.clone(),
                expected: graph.state(e.to).clone(),
            });
            cur = e.to;
        }
        Some(TestCase { initial, steps })
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the test case has no actions.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The final expected state (the initial state for empty cases).
    pub fn final_state(&self) -> &State {
        self.steps
            .last()
            .map(|s| &s.expected)
            .unwrap_or(&self.initial)
    }

    /// The action names along the case, in order.
    pub fn action_names(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.action.name.as_str()).collect()
    }

    /// Assigns concrete data to user requests (§4.1.2): the *k*-th
    /// occurrence of a user-request action gets datum `k` (the paper
    /// writes `(1, 1)` for the first `ClientRequest`, `(2, 2)` for the
    /// second). Returns, per step, `Some(k)` for user-request steps.
    pub fn user_request_data(&self, user_request_actions: &[&str]) -> Vec<Option<i64>> {
        let mut counter = 0;
        self.steps
            .iter()
            .map(|s| {
                if user_request_actions.contains(&s.action.name.as_str()) {
                    counter += 1;
                    Some(counter)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Serializes into a line-oriented format (`init:`/`step:` lines).
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("init: {}\n", self.initial));
        for s in &self.steps {
            out.push_str(&format!("step: {} => {}\n", s.action, s.expected));
        }
        out
    }

    /// Parses the [`serialize`](Self::serialize) format.
    pub fn deserialize(input: &str) -> Result<Self, ParseError> {
        let mut initial = None;
        let mut steps = Vec::new();
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("init:") {
                initial = Some(parse_state(rest.trim())?);
            } else if let Some(rest) = line.strip_prefix("step:") {
                let (action, state) = rest.split_once("=>").ok_or(ParseError {
                    at: 0,
                    message: "step line missing '=>'".into(),
                })?;
                steps.push(Step {
                    action: parse_action_instance(action.trim())?,
                    expected: parse_state(state.trim())?,
                });
            } else {
                return Err(ParseError {
                    at: 0,
                    message: format!("unrecognized line {line:?}"),
                });
            }
        }
        Ok(TestCase {
            initial: initial.ok_or(ParseError {
                at: 0,
                message: "missing init line".into(),
            })?,
            steps,
        })
    }

    /// A stable 64-bit identity hash (FNV-1a over the serialized
    /// text), rendered as fixed-width hex. Stable across processes and
    /// platforms — the campaign journal keys completed cases by it.
    pub fn stable_hash(&self) -> String {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.serialize().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        format!("{h:016x}")
    }

    /// Validates the case against a graph: every step must follow an
    /// existing edge from the current state. Returns the node path.
    pub fn validate_against(&self, graph: &StateGraph) -> Result<Vec<NodeId>, String> {
        let mut cur = graph
            .find_state(&self.initial)
            .ok_or_else(|| "initial state not in graph".to_string())?;
        if !graph.initial_states().contains(&cur) {
            return Err("test case does not start at an initial state".into());
        }
        let mut nodes = vec![cur];
        for (i, step) in self.steps.iter().enumerate() {
            let next = graph
                .out_edges(cur)
                .iter()
                .map(|&e| graph.edge(e))
                .find(|e| e.action == step.action && graph.state(e.to) == &step.expected)
                .map(|e| e.to)
                .ok_or_else(|| format!("step {i} ({}) has no matching edge", step.action))?;
            nodes.push(next);
            cur = next;
        }
        Ok(nodes)
    }
}

impl fmt::Display for TestCase {
    /// `s0 -> a1 -> s1 -> a2 -> ...` in the style of Figure 3, with
    /// the full action instances.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s[{}]", self.initial.fingerprint() % 10_000)?;
        for s in &self.steps {
            write!(
                f,
                " -> {} -> s[{}]",
                s.action,
                s.expected.fingerprint() % 10_000
            )?;
        }
        writeln!(f)
    }
}

/// A user-request datum in the implementation domain: the key/value
/// pair written for the k-th `ClientRequest` (the paper writes
/// `(k, k)`).
pub fn user_request_payload(k: i64) -> (Value, Value) {
    (Value::Int(k), Value::Int(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(n: i64) -> State {
        State::from_pairs([("n", Value::Int(n))])
    }

    fn case() -> TestCase {
        TestCase::new(
            st(0),
            vec![
                (ActionInstance::nullary("Inc"), st(1)),
                (ActionInstance::new("Add", vec![Value::Int(5)]), st(6)),
            ],
        )
    }

    #[test]
    fn accessors() {
        let tc = case();
        assert_eq!(tc.len(), 2);
        assert!(!tc.is_empty());
        assert_eq!(tc.final_state(), &st(6));
        assert_eq!(tc.action_names(), ["Inc", "Add"]);
    }

    #[test]
    fn serialization_roundtrip() {
        let tc = case();
        let text = tc.serialize();
        let back = TestCase::deserialize(&text).unwrap();
        assert_eq!(back, tc);
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(TestCase::deserialize("bogus").is_err());
        assert!(TestCase::deserialize("step: A => /\\ n = 1").is_err());
        assert!(TestCase::deserialize("init: /\\ n = 0\nstep: A -> bad").is_err());
    }

    #[test]
    fn stable_hash_distinguishes_cases_and_is_stable() {
        let a = case();
        assert_eq!(a.stable_hash(), case().stable_hash());
        assert_eq!(a.stable_hash().len(), 16);
        let b = TestCase::new(st(0), vec![(ActionInstance::nullary("Inc"), st(1))]);
        assert_ne!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn user_request_numbering_counts_occurrences() {
        let tc = TestCase::new(
            st(0),
            vec![
                (ActionInstance::nullary("ClientRequest"), st(1)),
                (ActionInstance::nullary("Inc"), st(2)),
                (ActionInstance::nullary("ClientRequest"), st(3)),
            ],
        );
        assert_eq!(
            tc.user_request_data(&["ClientRequest"]),
            vec![Some(1), None, Some(2)]
        );
        assert_eq!(user_request_payload(2), (Value::Int(2), Value::Int(2)));
    }

    #[test]
    fn from_edge_path_and_validate() {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(st(0));
        let (b, _) = g.insert_state(st(1));
        let (c, _) = g.insert_state(st(2));
        g.mark_initial(a);
        let e1 = g.add_edge(a, ActionInstance::nullary("Inc"), b);
        let e2 = g.add_edge(b, ActionInstance::nullary("Inc"), c);
        // An empty edge path is a skip, not a panic: a fully-excluded
        // initial node leaves the traversal nothing to walk.
        assert_eq!(TestCase::from_edge_path(&g, &[]), None);
        let tc = TestCase::from_edge_path(&g, &[e1, e2]).unwrap();
        assert_eq!(tc.initial, st(0));
        assert_eq!(tc.len(), 2);
        let nodes = tc.validate_against(&g).unwrap();
        assert_eq!(nodes, vec![a, b, c]);
    }

    #[test]
    fn validate_rejects_non_initial_start() {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(st(0));
        let (b, _) = g.insert_state(st(1));
        g.mark_initial(a);
        g.add_edge(a, ActionInstance::nullary("Inc"), b);
        let tc = TestCase::new(st(1), vec![]);
        assert!(tc.validate_against(&g).is_err());
    }

    #[test]
    fn validate_rejects_unknown_edge() {
        let mut g = StateGraph::new();
        let (a, _) = g.insert_state(st(0));
        g.mark_initial(a);
        let tc = TestCase::new(st(0), vec![(ActionInstance::nullary("Nope"), st(9))]);
        assert!(tc.validate_against(&g).is_err());
    }
}
