//! Self-contained replay artifacts and the campaign journal
//! (failure triage: persist, replay, resume).
//!
//! A bug report that dies with its campaign is a bug lost. Every
//! confirmed failure is persisted as a [`ReplayArtifact`]: one text
//! file carrying the (minimized) revealing [`TestCase`], the actions
//! the specification enables in its final state, the fault-plan
//! identity (seed + intensities, serialized by `dsnet` and opaque
//! here), the [`RunConfig`], the spec identity and the observed
//! inconsistency classification. [`replay`] re-drives a fresh SUT
//! from nothing but the artifact — the "small, deterministic
//! reproducer" that trace-validation and model-guided-fuzzing work
//! identify as the artifact that matters.
//!
//! The [`CampaignJournal`] is the resume half: an append-only file
//! with one line per *completed* case (hash, outcome, attempts).
//! `Pipeline::run` consults it on startup, skips finished cases and
//! rebuilds its coverage counters, so an interrupted campaign
//! continues instead of restarting. Quarantined cases are deliberately
//! not journaled — they reached no verdict and deserve a fresh try.
//! Corrupt lines (a crash mid-append, a hand-edited file) are
//! collected as typed [`JournalIssue`]s, never panics.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use mocket_obs::DivergenceExplanation;
use mocket_tla::{parse_action_instance, ActionInstance, ParseError};

use crate::mapping::MappingRegistry;
use crate::orchestrator::{DirLock, LockError};
use crate::report::{Determinism, Inconsistency};
use crate::runner::{run_test_case, RunConfig, RunStats, TestOutcome};
use crate::sut::{SutError, SystemUnderTest};
use crate::testcase::TestCase;

/// The artifact format version this build writes and reads.
pub const ARTIFACT_VERSION: &str = "v1";

/// A failure to parse or load an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// A required header line is missing.
    MissingField(&'static str),
    /// A header value did not parse.
    BadValue {
        /// The offending key.
        key: String,
        /// What went wrong.
        message: String,
    },
    /// An embedded test case, state or action failed to parse.
    Parse(ParseError),
    /// The file could not be read or written.
    Io(std::io::Error),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::MissingField(key) => write!(f, "artifact is missing {key:?}"),
            ArtifactError::BadValue { key, message } => {
                write!(f, "artifact field {key:?}: {message}")
            }
            ArtifactError::Parse(e) => write!(f, "artifact payload: {e}"),
            ArtifactError::Io(e) => write!(f, "artifact io: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<ParseError> for ArtifactError {
    fn from(e: ParseError) -> Self {
        ArtifactError::Parse(e)
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// A self-contained reproducer for one confirmed failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayArtifact {
    /// Specification name (`Spec::name`).
    pub spec: String,
    /// Free-form spec/model identity (servers, bug flags, bounds) —
    /// whatever the campaign operator set; informational.
    pub spec_config: String,
    /// The inconsistency kind label the failure was classified as
    /// (matches `Inconsistency::kind`).
    pub kind: String,
    /// The inconsistency subject (diverging variable / action name).
    pub subject: String,
    /// One-line rendering of the observed inconsistency.
    pub summary: String,
    /// Repro-rate classification from confirm & classify.
    pub determinism: Determinism,
    /// Serialized fault-plan identity (`dsnet` `FaultPlan::serialize`:
    /// seed + intensities), opaque to this crate. `None` when the
    /// campaign injected no planned faults.
    pub fault_plan: Option<String>,
    /// The runner configuration the failure was observed under.
    pub run: RunConfig,
    /// Length of the original revealing case (the stored case is the
    /// minimized reproducer, never longer).
    pub original_len: usize,
    /// Actions the specification enables in the stored case's final
    /// state — needed to re-check for unexpected actions on replay
    /// without the state graph.
    pub final_enabled: Vec<ActionInstance>,
    /// The divergence explanation computed for the original failure
    /// (per-variable diff + nearest-verified-state verdict), when the
    /// explainer covered its inconsistency kind.
    pub explanation: Option<DivergenceExplanation>,
    /// The causal trace recorded while the failure was observed, one
    /// `CausalEvent` JSON line per entry (see `mocket_obs::causal`).
    /// Empty when the campaign ran without `--trace`; older artifacts
    /// parse as empty.
    pub trace: Vec<String>,
    /// The reproducer to replay.
    pub test_case: TestCase,
}

fn dur_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

fn serialize_run(run: &RunConfig) -> String {
    format!(
        "check_initial={} offer_deadline_ms={} per_action_budget_ms={} \
         poll_backoff_ms={} poll_backoff_max_ms={}",
        run.check_initial,
        dur_ms(run.offer_deadline),
        dur_ms(run.per_action_budget),
        dur_ms(run.poll_backoff),
        dur_ms(run.poll_backoff_max),
    )
}

fn deserialize_run(input: &str) -> Result<RunConfig, ArtifactError> {
    let mut run = RunConfig::default();
    for token in input.split_whitespace() {
        let (key, value) = token.split_once('=').ok_or_else(|| ArtifactError::BadValue {
            key: "run".into(),
            message: format!("token {token:?} is not key=value"),
        })?;
        let bad = |message: String| ArtifactError::BadValue {
            key: format!("run.{key}"),
            message,
        };
        match key {
            "check_initial" => {
                run.check_initial = value.parse().map_err(|_| bad(format!("{value:?}")))?
            }
            "offer_deadline_ms" => {
                run.offer_deadline =
                    Duration::from_millis(value.parse().map_err(|e| bad(format!("{e}")))?)
            }
            "per_action_budget_ms" => {
                run.per_action_budget =
                    Duration::from_millis(value.parse().map_err(|e| bad(format!("{e}")))?)
            }
            "poll_backoff_ms" => {
                run.poll_backoff =
                    Duration::from_millis(value.parse().map_err(|e| bad(format!("{e}")))?)
            }
            "poll_backoff_max_ms" => {
                run.poll_backoff_max =
                    Duration::from_millis(value.parse().map_err(|e| bad(format!("{e}")))?)
            }
            other => {
                return Err(ArtifactError::BadValue {
                    key: "run".into(),
                    message: format!("unknown key {other:?}"),
                })
            }
        }
    }
    Ok(run)
}

fn serialize_determinism(d: &Determinism) -> String {
    match d {
        Determinism::Unconfirmed => "unconfirmed".to_string(),
        Determinism::Deterministic { reruns } => format!("deterministic reruns={reruns}"),
        Determinism::Flaky { reproduced, reruns } => {
            format!("flaky reproduced={reproduced} reruns={reruns}")
        }
    }
}

fn deserialize_determinism(input: &str) -> Result<Determinism, ArtifactError> {
    let bad = |message: String| ArtifactError::BadValue {
        key: "determinism".into(),
        message,
    };
    let mut parts = input.split_whitespace();
    let head = parts.next().ok_or_else(|| bad("empty".into()))?;
    let mut fields = BTreeMap::new();
    for token in parts {
        let (k, v) = token
            .split_once('=')
            .ok_or_else(|| bad(format!("token {token:?} is not key=value")))?;
        let n: usize = v.parse().map_err(|e| bad(format!("{k}: {e}")))?;
        fields.insert(k.to_string(), n);
    }
    let field = |name: &str| {
        fields
            .get(name)
            .copied()
            .ok_or_else(|| bad(format!("missing {name}")))
    };
    match head {
        "unconfirmed" => Ok(Determinism::Unconfirmed),
        "deterministic" => Ok(Determinism::Deterministic {
            reruns: field("reruns")?,
        }),
        "flaky" => Ok(Determinism::Flaky {
            reproduced: field("reproduced")?,
            reruns: field("reruns")?,
        }),
        other => Err(bad(format!("unknown classification {other:?}"))),
    }
}

/// Flattens a (possibly multi-line) rendering into one journal-safe
/// line.
fn one_line(text: &str) -> String {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect::<Vec<_>>()
        .join("; ")
}

impl ReplayArtifact {
    /// Builds an artifact from an observed failure. `test_case` is the
    /// reproducer to store (minimized when available); `original_len`
    /// the revealing case's length before shrinking.
    #[allow(clippy::too_many_arguments)]
    pub fn from_failure(
        spec: impl Into<String>,
        spec_config: impl Into<String>,
        inconsistency: &Inconsistency,
        determinism: Determinism,
        fault_plan: Option<String>,
        run: &RunConfig,
        original_len: usize,
        final_enabled: Vec<ActionInstance>,
        explanation: Option<DivergenceExplanation>,
        test_case: TestCase,
    ) -> Self {
        ReplayArtifact {
            spec: spec.into(),
            spec_config: spec_config.into(),
            kind: inconsistency.kind().to_string(),
            subject: inconsistency.subject(),
            summary: one_line(&inconsistency.to_string()),
            determinism,
            fault_plan,
            run: run.clone(),
            original_len,
            final_enabled,
            explanation,
            trace: Vec::new(),
            test_case,
        }
    }

    /// Attaches the causal trace (one event JSON line per entry)
    /// recorded while this failure was observed.
    pub fn with_trace(mut self, trace: Vec<String>) -> Self {
        self.trace = trace;
        self
    }

    /// Serializes into the line-oriented artifact format.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("mocket-artifact: {ARTIFACT_VERSION}\n"));
        out.push_str(&format!("spec: {}\n", one_line(&self.spec)));
        out.push_str(&format!("spec-config: {}\n", one_line(&self.spec_config)));
        out.push_str(&format!("kind: {}\n", one_line(&self.kind)));
        out.push_str(&format!("subject: {}\n", one_line(&self.subject)));
        out.push_str(&format!("summary: {}\n", one_line(&self.summary)));
        out.push_str(&format!(
            "determinism: {}\n",
            serialize_determinism(&self.determinism)
        ));
        if let Some(fp) = &self.fault_plan {
            out.push_str(&format!("fault-plan: {}\n", one_line(fp)));
        }
        out.push_str(&format!("run: {}\n", serialize_run(&self.run)));
        out.push_str(&format!("original-len: {}\n", self.original_len));
        for a in &self.final_enabled {
            out.push_str(&format!("final: {a}\n"));
        }
        if let Some(e) = &self.explanation {
            // Tab-separated explanation lines; tabs inside the value
            // survive the key/value split because only leading and
            // trailing whitespace is trimmed on load.
            for line in e.serialize() {
                out.push_str(&format!("explain: {line}\n"));
            }
        }
        // Trace lines only when a trace was recorded: artifacts from
        // untraced campaigns stay byte-identical to older builds.
        for line in &self.trace {
            out.push_str(&format!("trace: {}\n", one_line(line)));
        }
        out.push_str(&self.test_case.serialize());
        out
    }

    /// Parses the [`serialize`](Self::serialize) format. Malformed
    /// input yields a typed [`ArtifactError`], never a panic — a
    /// corrupt artifact is reported, not a harness abort.
    pub fn deserialize(input: &str) -> Result<Self, ArtifactError> {
        let mut version = None;
        let mut spec = None;
        let mut spec_config = None;
        let mut kind = None;
        let mut subject = None;
        let mut summary = None;
        let mut determinism = None;
        let mut fault_plan = None;
        let mut run = None;
        let mut original_len = None;
        let mut final_enabled = Vec::new();
        let mut explain_lines: Vec<String> = Vec::new();
        let mut trace = Vec::new();
        let mut case_lines = String::new();

        for line in input.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let Some((key, value)) = trimmed.split_once(':') else {
                return Err(ArtifactError::BadValue {
                    key: "<line>".into(),
                    message: format!("unrecognized line {trimmed:?}"),
                });
            };
            let value = value.trim();
            match key {
                "mocket-artifact" => version = Some(value.to_string()),
                "spec" => spec = Some(value.to_string()),
                "spec-config" => spec_config = Some(value.to_string()),
                "kind" => kind = Some(value.to_string()),
                "subject" => subject = Some(value.to_string()),
                "summary" => summary = Some(value.to_string()),
                "determinism" => determinism = Some(deserialize_determinism(value)?),
                "fault-plan" => fault_plan = Some(value.to_string()),
                "run" => run = Some(deserialize_run(value)?),
                "original-len" => {
                    original_len =
                        Some(value.parse::<usize>().map_err(|e| ArtifactError::BadValue {
                            key: "original-len".into(),
                            message: e.to_string(),
                        })?)
                }
                "final" => final_enabled.push(parse_action_instance(value)?),
                "explain" => explain_lines.push(value.to_string()),
                "trace" => trace.push(value.to_string()),
                "init" | "step" => {
                    case_lines.push_str(trimmed);
                    case_lines.push('\n');
                }
                other => {
                    return Err(ArtifactError::BadValue {
                        key: other.to_string(),
                        message: "unknown artifact key".into(),
                    })
                }
            }
        }

        let version = version.ok_or(ArtifactError::MissingField("mocket-artifact"))?;
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::BadValue {
                key: "mocket-artifact".into(),
                message: format!("unsupported version {version:?}"),
            });
        }
        let test_case = TestCase::deserialize(&case_lines)?;
        let explanation = if explain_lines.is_empty() {
            None
        } else {
            Some(
                DivergenceExplanation::parse(&explain_lines).map_err(|message| {
                    ArtifactError::BadValue {
                        key: "explain".into(),
                        message,
                    }
                })?,
            )
        };
        Ok(ReplayArtifact {
            spec: spec.ok_or(ArtifactError::MissingField("spec"))?,
            spec_config: spec_config.unwrap_or_default(),
            kind: kind.ok_or(ArtifactError::MissingField("kind"))?,
            subject: subject.unwrap_or_default(),
            summary: summary.unwrap_or_default(),
            determinism: determinism.unwrap_or(Determinism::Unconfirmed),
            fault_plan,
            run: run.ok_or(ArtifactError::MissingField("run"))?,
            original_len: original_len.unwrap_or(0),
            final_enabled,
            explanation,
            trace,
            test_case,
        })
    }

    /// The file name this artifact is stored under (keyed by the
    /// reproducer's stable hash).
    pub fn file_name(&self) -> String {
        format!("case-{}.artifact", self.test_case.stable_hash())
    }

    /// Writes the artifact into `dir` (created if needed); returns the
    /// path written.
    ///
    /// The write is idempotent and crash-safe: content goes to a
    /// temporary file first and is renamed into place, so a re-run
    /// that writes the same case again (e.g. after a journal
    /// truncation forced a replay) can never leave a torn artifact,
    /// and an interrupted write never clobbers an intact one.
    pub fn write_to(&self, dir: &Path) -> Result<PathBuf, ArtifactError> {
        let path = crate::fsio::write_atomic(
            dir,
            &self.file_name(),
            self.serialize().as_bytes(),
            crate::fsio::points::ARTIFACT_WRITE,
            &crate::fsio::RetryPolicy::io(),
        )?;
        Ok(path)
    }

    /// Loads an artifact from disk.
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let text = fs::read_to_string(path)?;
        Self::deserialize(&text)
    }
}

/// What a replayed artifact did.
#[derive(Debug, Clone)]
pub enum ReplayVerdict {
    /// The run failed with the same inconsistency kind the artifact
    /// records — the bug reproduced.
    Reproduced(Inconsistency),
    /// The run failed, but with a different inconsistency kind.
    DifferentFailure(Inconsistency),
    /// The run passed: the bug did not reproduce (fixed, or flaky).
    Passed,
}

impl ReplayVerdict {
    /// Whether the artifact's inconsistency kind reproduced.
    pub fn reproduced(&self) -> bool {
        matches!(self, ReplayVerdict::Reproduced(_))
    }
}

/// Re-drives a fresh SUT from an artifact: the replay entry point.
///
/// The caller builds the SUT (re-installing the artifact's
/// [`fault_plan`](ReplayArtifact::fault_plan) if one is recorded —
/// `dsnet`'s `FaultPlan::deserialize` reconstructs it) and supplies
/// the same mapping registry the campaign used; everything else comes
/// from the artifact.
pub fn replay(
    artifact: &ReplayArtifact,
    sut: &mut dyn SystemUnderTest,
    registry: &MappingRegistry,
) -> Result<(ReplayVerdict, RunStats), SutError> {
    let (outcome, stats) = run_test_case(
        sut,
        &artifact.test_case,
        registry,
        &artifact.final_enabled,
        &artifact.run,
    )?;
    let verdict = match outcome {
        TestOutcome::Passed => ReplayVerdict::Passed,
        TestOutcome::Failed(inc) => {
            if inc.kind() == artifact.kind {
                ReplayVerdict::Reproduced(inc)
            } else {
                ReplayVerdict::DifferentFailure(inc)
            }
        }
    };
    Ok((verdict, stats))
}

/// The verdict a completed (journaled) case reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome {
    /// All checks matched.
    Passed,
    /// Failed with the recorded inconsistency kind.
    Failed {
        /// `Inconsistency::kind` label.
        kind: String,
    },
}

/// One completed case in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// `TestCase::stable_hash` of the case.
    pub hash: String,
    /// Attempts spent reaching the verdict.
    pub attempts: usize,
    /// Determinism classification label for failed cases
    /// (`deterministic` / `flaky` / `unconfirmed`), recorded so a
    /// campaign merge can rebuild `bugs_by_determinism` without
    /// re-running triage. `None` for passed cases and for lines
    /// written by older builds.
    pub determinism: Option<String>,
    /// The verdict.
    pub outcome: CaseOutcome,
}

impl JournalEntry {
    /// Renders this entry as its single journal line (with trailing
    /// newline) — the exact bytes [`CampaignJournal::record`] appends.
    pub fn render_line(&self) -> String {
        render_journal_line(self)
    }

    /// Parses one journal line (without trailing newline).
    pub fn parse_line(line: &str) -> Result<JournalEntry, String> {
        parse_journal_line(line)
    }
}

/// A journal line that could not be parsed (reported, not fatal).
#[derive(Debug, Clone)]
pub struct JournalIssue {
    /// 1-based line number in the journal file.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for JournalIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.message)
    }
}

fn parse_journal_line(line: &str) -> Result<JournalEntry, String> {
    let rest = line
        .strip_prefix("case:")
        .ok_or_else(|| format!("unrecognized line {line:?}"))?
        .trim();
    let mut parts = rest.splitn(3, char::is_whitespace);
    let hash = parts
        .next()
        .filter(|h| !h.is_empty())
        .ok_or("missing case hash")?;
    let attempts_tok = parts.next().ok_or("missing attempts=N")?;
    let attempts = attempts_tok
        .strip_prefix("attempts=")
        .ok_or_else(|| format!("expected attempts=N, got {attempts_tok:?}"))?
        .parse::<usize>()
        .map_err(|e| format!("bad attempts: {e}"))?;
    let mut tail = parts.next().ok_or("missing outcome=...")?;
    // Optional determinism token, written before the outcome so the
    // free-form failure kind can stay at the end of the line.
    let mut determinism = None;
    if let Some(after) = tail.strip_prefix("det=") {
        let (det, rest) = after
            .split_once(char::is_whitespace)
            .ok_or("det= token without an outcome")?;
        determinism = Some(det.to_string());
        tail = rest.trim_start();
    }
    let outcome_val = tail
        .strip_prefix("outcome=")
        .ok_or_else(|| format!("expected outcome=..., got {tail:?}"))?;
    let outcome = match outcome_val.split_once(' ') {
        None if outcome_val == "passed" => CaseOutcome::Passed,
        Some(("failed", kind)) if !kind.trim().is_empty() => CaseOutcome::Failed {
            kind: kind.trim().to_string(),
        },
        _ => return Err(format!("bad outcome {outcome_val:?}")),
    };
    Ok(JournalEntry {
        hash: hash.to_string(),
        attempts,
        determinism,
        outcome,
    })
}

fn render_journal_line(entry: &JournalEntry) -> String {
    let outcome = match &entry.outcome {
        CaseOutcome::Passed => "passed".to_string(),
        CaseOutcome::Failed { kind } => format!("failed {}", one_line(kind)),
    };
    let det = match &entry.determinism {
        Some(d) => format!("det={} ", one_line(d)),
        None => String::new(),
    };
    format!(
        "case: {} attempts={} {det}outcome={}\n",
        entry.hash, entry.attempts, outcome
    )
}

/// Why a [`CampaignJournal`] could not be opened.
#[derive(Debug)]
pub enum JournalOpenError {
    /// Another live process has the campaign directory's journal
    /// locked — two campaigns pointed at the same directory would
    /// interleave appends, so the second one fails fast.
    Locked {
        /// The lock file.
        path: PathBuf,
        /// The live owner.
        owner_pid: u32,
    },
    /// Plain filesystem trouble.
    Io(std::io::Error),
}

impl fmt::Display for JournalOpenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalOpenError::Locked { path, owner_pid } => write!(
                f,
                "campaign directory is locked by live pid {owner_pid} ({})",
                path.display()
            ),
            JournalOpenError::Io(e) => write!(f, "journal io: {e}"),
        }
    }
}

impl std::error::Error for JournalOpenError {}

impl From<std::io::Error> for JournalOpenError {
    fn from(e: std::io::Error) -> Self {
        JournalOpenError::Io(e)
    }
}

impl From<LockError> for JournalOpenError {
    fn from(e: LockError) -> Self {
        match e {
            LockError::Held { path, owner_pid } => JournalOpenError::Locked { path, owner_pid },
            LockError::Io(e) => JournalOpenError::Io(e),
        }
    }
}

/// Parses a journal file's text: completed entries, issues, and
/// whether the final line was truncated mid-append.
fn parse_journal_text(
    text: &str,
) -> (BTreeMap<String, JournalEntry>, Vec<JournalIssue>, bool) {
    let mut completed = BTreeMap::new();
    let mut issues = Vec::new();
    // Every complete append ends in '\n'. A final line without one was
    // interrupted mid-write; it must not be trusted even if it happens
    // to parse (truncating `outcome=failed Missing action` at
    // `Missing` still parses, with the wrong kind). Report it and let
    // the case re-run — artifact writes are idempotent.
    let truncated = !text.is_empty() && !text.ends_with('\n');
    let line_count = text.lines().count();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if truncated && i + 1 == line_count {
            issues.push(JournalIssue {
                line: i + 1,
                message: format!(
                    "truncated final line (interrupted append), \
                     case will be re-run: {line:?}"
                ),
            });
            continue;
        }
        match parse_journal_line(line) {
            Ok(entry) => {
                completed.insert(entry.hash.clone(), entry);
            }
            Err(message) => issues.push(JournalIssue {
                line: i + 1,
                message,
            }),
        }
    }
    (completed, issues, truncated)
}

/// The append-only campaign journal.
///
/// Opening takes an exclusive, crash-tolerant lock on the campaign
/// directory (`journal.lock`); it is released when the journal is
/// dropped. [`CampaignJournal::load_entries`] reads without locking —
/// for merge/report stages that only observe.
pub struct CampaignJournal {
    path: PathBuf,
    completed: BTreeMap<String, JournalEntry>,
    issues: Vec<JournalIssue>,
    /// The loaded file ended in a partial line; the next append must
    /// start on a fresh line or it would merge with the partial one.
    needs_newline: bool,
    /// Held for the journal's lifetime; deletes `journal.lock` on drop.
    _lock: DirLock,
}

impl CampaignJournal {
    /// The journal's file name inside a campaign directory.
    pub const FILE_NAME: &'static str = "journal.log";

    /// The lock file guarding a campaign directory's journal.
    pub const LOCK_FILE_NAME: &'static str = "journal.lock";

    /// Opens (or creates) the journal inside campaign directory
    /// `dir`, loading every completed case recorded by previous runs.
    /// Malformed lines — a crash mid-append truncates the last line —
    /// are collected as [`issues`](Self::issues) and skipped. Fails
    /// with [`JournalOpenError::Locked`] while another live process
    /// has the directory open; a lock left behind by a dead process is
    /// taken over.
    pub fn open(dir: &Path) -> Result<Self, JournalOpenError> {
        fs::create_dir_all(dir)?;
        let lock = DirLock::acquire(dir, Self::LOCK_FILE_NAME)?;
        let path = dir.join(Self::FILE_NAME);
        let (completed, issues, truncated) = match fs::read_to_string(&path) {
            Ok(text) => parse_journal_text(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
            Err(e) => return Err(e.into()),
        };
        Ok(CampaignJournal {
            path,
            completed,
            issues,
            needs_newline: truncated,
            _lock: lock,
        })
    }

    /// Reads `dir`'s journal without taking the lock: a point-in-time
    /// view of completed entries plus any malformed-line issues. Used
    /// by merge and reporting stages, which never append.
    pub fn load_entries(
        dir: &Path,
    ) -> Result<(BTreeMap<String, JournalEntry>, Vec<JournalIssue>), std::io::Error> {
        match fs::read_to_string(dir.join(Self::FILE_NAME)) {
            Ok(text) => {
                let (completed, issues, _) = parse_journal_text(&text);
                Ok((completed, issues))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Default::default()),
            Err(e) => Err(e),
        }
    }

    /// The completed entry for `hash`, if a previous run finished it.
    pub fn completed(&self, hash: &str) -> Option<&JournalEntry> {
        self.completed.get(hash)
    }

    /// Number of completed cases on record.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether no case has completed yet.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Malformed lines encountered while loading.
    pub fn issues(&self) -> &[JournalIssue] {
        &self.issues
    }

    /// Appends one completed case and flushes it to disk immediately —
    /// an interruption right after a case finishes loses nothing. The
    /// append goes through the fault-injectable I/O layer, which both
    /// repairs a torn trailing line (starts the new entry on a fresh
    /// line) and rolls back its own partial appends.
    pub fn record(&mut self, entry: JournalEntry) -> Result<(), std::io::Error> {
        crate::fsio::append_line(
            &self.path,
            render_journal_line(&entry).trim_end_matches('\n'),
            crate::fsio::points::JOURNAL_APPEND,
            &crate::fsio::RetryPolicy::io(),
        )?;
        self.needs_newline = false;
        self.completed.insert(entry.hash.clone(), entry);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::{State, Value};

    fn st(n: i64) -> State {
        State::from_pairs([("n", Value::Int(n))])
    }

    fn case() -> TestCase {
        TestCase::new(
            st(0),
            vec![
                (ActionInstance::nullary("Inc"), st(1)),
                (ActionInstance::new("Add", vec![Value::Int(5)]), st(6)),
            ],
        )
    }

    fn artifact() -> ReplayArtifact {
        let inc = Inconsistency::MissingAction {
            step: 1,
            action: ActionInstance::new("Add", vec![Value::Int(5)]),
            offered: vec![ActionInstance::nullary("Inc")],
        };
        let explanation = DivergenceExplanation {
            step: 1,
            action: "Add(5)".into(),
            prefix: vec!["Inc".into(), "Add(5)".into()],
            diffs: vec![mocket_obs::VarDiff::new("n", "6", "5")],
            verdict: mocket_obs::NearestVerdict::Verified {
                distance: 1,
                state: "/\\ n = 5".into(),
                alt_path: vec!["Inc".into()],
            },
        };
        ReplayArtifact::from_failure(
            "Counter",
            "limit=2 buggy=true",
            &inc,
            Determinism::Deterministic { reruns: 2 },
            Some("seed=42 drop=20 dup=20 delay=40 max_delay=3 reorder=40 partition=5 heal=20".into()),
            &RunConfig::fast(),
            5,
            vec![ActionInstance::nullary("Inc")],
            Some(explanation),
            case(),
        )
    }

    #[test]
    fn artifact_text_roundtrip() {
        let a = artifact();
        let text = a.serialize();
        let back = ReplayArtifact::deserialize(&text).unwrap();
        assert_eq!(back, a);
    }

    /// A verbatim artifact as written before the time-based fault
    /// fields existed (PR-9). Campaign directories in the wild hold
    /// documents exactly like this one; they must keep parsing, their
    /// legacy `fault-plan` line must survive untouched, and
    /// re-serialization must reproduce the document byte-for-byte —
    /// the new plan keys (`delay_ns`/`link_ns`/`heal_ns`) are only
    /// ever emitted for plans that actually use them.
    const PRE_PR9_GOLDEN: &str = "mocket-artifact: v1\n\
spec: Counter\n\
spec-config: limit=2 buggy=true\n\
kind: Missing action\n\
subject: Add\n\
summary: Missing action at step 1: Add(5) was never offered.; offered instead: Inc\n\
determinism: deterministic reruns=2\n\
fault-plan: seed=42 drop=20 dup=20 delay=40 max_delay=3 reorder=40 partition=5 heal=20\n\
run: check_initial=true offer_deadline_ms=50 per_action_budget_ms=5000 poll_backoff_ms=1 poll_backoff_max_ms=10\n\
original-len: 5\n\
final: Inc\n\
explain: step\t1\tAdd(5)\n\
explain: prefix\tInc\n\
explain: prefix\tAdd(5)\n\
explain: diff\tn\t6\t5\n\
explain: verified\t1\t/\\ n = 5\tInc\n\
init: /\\ n = 0\n\
step: Inc => /\\ n = 1\n\
step: Add(5) => /\\ n = 6\n";

    #[test]
    fn pre_pr9_golden_artifact_roundtrips_byte_identically() {
        let back = ReplayArtifact::deserialize(PRE_PR9_GOLDEN).unwrap();
        assert_eq!(
            back.fault_plan.as_deref(),
            Some("seed=42 drop=20 dup=20 delay=40 max_delay=3 reorder=40 partition=5 heal=20"),
            "the legacy fault-plan line must be preserved verbatim"
        );
        assert_eq!(
            back.serialize(),
            PRE_PR9_GOLDEN,
            "re-serializing a pre-PR-9 artifact must be byte-identical"
        );
        // And the fixture above still produces exactly this document,
        // so any future format drift fails here first.
        assert_eq!(artifact().serialize(), PRE_PR9_GOLDEN);
    }

    #[test]
    fn artifact_roundtrip_without_fault_plan() {
        let mut a = artifact();
        a.fault_plan = None;
        a.explanation = None;
        a.determinism = Determinism::Flaky {
            reproduced: 1,
            reruns: 3,
        };
        let back = ReplayArtifact::deserialize(&a.serialize()).unwrap();
        assert_eq!(back, a);
        assert!(!a.serialize().contains("explain:"));
    }

    #[test]
    fn artifact_trace_roundtrips_and_is_omitted_when_empty() {
        let plain = artifact();
        assert!(!plain.serialize().contains("trace:"));
        let traced = artifact().with_trace(vec![
            r#"{"seq":0,"kind":"case","vt":0}"#.into(),
            r#"{"seq":1,"kind":"send","node":1,"peer":2,"msg":1,"vt":5}"#.into(),
        ]);
        let text = traced.serialize();
        assert!(text.contains("trace: {\"seq\":0"));
        let back = ReplayArtifact::deserialize(&text).unwrap();
        assert_eq!(back, traced);
        assert_eq!(back.trace.len(), 2);
    }

    #[test]
    fn artifact_deserialize_rejects_garbage() {
        assert!(matches!(
            ReplayArtifact::deserialize(""),
            Err(ArtifactError::MissingField("mocket-artifact"))
        ));
        assert!(ReplayArtifact::deserialize("mocket-artifact: v999\nspec: X\n").is_err());
        assert!(ReplayArtifact::deserialize("totally bogus").is_err());
        let missing_case = "mocket-artifact: v1\nspec: X\nkind: K\nrun: check_initial=true\n";
        assert!(ReplayArtifact::deserialize(missing_case).is_err());
        let bad_run = artifact().serialize().replace("check_initial=true", "check_initial=maybe");
        assert!(ReplayArtifact::deserialize(&bad_run).is_err());
        let bad_det = artifact()
            .serialize()
            .replace("determinism: deterministic reruns=2", "determinism: sometimes");
        assert!(ReplayArtifact::deserialize(&bad_det).is_err());
    }

    #[test]
    fn artifact_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "mocket-artifact-test-{}",
            std::process::id()
        ));
        let a = artifact();
        let path = a.write_to(&dir).unwrap();
        assert!(path.ends_with(a.file_name()));
        let back = ReplayArtifact::load(&path).unwrap();
        assert_eq!(back, a);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_roundtrip_and_resume_view() {
        let dir = std::env::temp_dir().join(format!(
            "mocket-journal-test-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut j = CampaignJournal::open(&dir).unwrap();
            assert!(j.is_empty());
            j.record(JournalEntry {
                hash: "aaaa".into(),
                attempts: 1,
                determinism: None,
                outcome: CaseOutcome::Passed,
            })
            .unwrap();
            j.record(JournalEntry {
                hash: "bbbb".into(),
                attempts: 2,
                determinism: Some("deterministic".into()),
                outcome: CaseOutcome::Failed {
                    kind: "Inconsistent state".into(),
                },
            })
            .unwrap();
        }
        // A fresh open (the "resumed campaign") sees both.
        let j = CampaignJournal::open(&dir).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.completed("aaaa").unwrap().outcome, CaseOutcome::Passed);
        assert_eq!(
            j.completed("bbbb").unwrap().outcome,
            CaseOutcome::Failed {
                kind: "Inconsistent state".into()
            }
        );
        assert!(j.completed("cccc").is_none());
        assert!(j.issues().is_empty());
        assert_eq!(
            j.completed("bbbb").unwrap().determinism.as_deref(),
            Some("deterministic")
        );
        // The lock-free reader sees the same entries.
        drop(j);
        let (entries, issues) = CampaignJournal::load_entries(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(issues.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_open_of_locked_campaign_dir_fails_fast() {
        let dir = std::env::temp_dir().join(format!(
            "mocket-journal-locked-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let held = CampaignJournal::open(&dir).unwrap();
        match CampaignJournal::open(&dir) {
            Err(JournalOpenError::Locked { owner_pid, .. }) => {
                assert_eq!(owner_pid, std::process::id());
            }
            Ok(_) => panic!("second open of a locked campaign dir must fail"),
            Err(other) => panic!("expected Locked, got {other}"),
        }
        // load_entries is lock-free: it works while the lock is held.
        assert!(CampaignJournal::load_entries(&dir).is_ok());
        drop(held);
        assert!(CampaignJournal::open(&dir).is_ok(), "released on drop");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_journal_lines_are_reported_not_fatal() {
        let dir = std::env::temp_dir().join(format!(
            "mocket-journal-corrupt-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(CampaignJournal::FILE_NAME),
            "case: aaaa attempts=1 outcome=passed\n\
             garbage line\n\
             case: bbbb attempts=x outcome=passed\n\
             case: cccc attempts=1 outcome=exploded\n\
             case: dddd attempts=3 outcome=failed Missing action\n\
             case: eeee attempts=1 outco",
        )
        .unwrap();
        let j = CampaignJournal::open(&dir).unwrap();
        assert_eq!(j.len(), 2, "only well-formed lines load");
        assert!(j.completed("aaaa").is_some());
        assert!(j.completed("dddd").is_some());
        assert_eq!(j.issues().len(), 4, "{:?}", j.issues());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_final_journal_line_is_reported_and_not_trusted() {
        // The dangerous shape: an interrupted append that still
        // parses. "outcome=failed Missing action" cut at "Missing"
        // yields a well-formed entry with the wrong kind; trusting it
        // would both mislabel the bug and skip the re-run.
        let dir = std::env::temp_dir().join(format!(
            "mocket-journal-truncated-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(CampaignJournal::FILE_NAME),
            "case: aaaa attempts=1 outcome=passed\n\
             case: bbbb attempts=2 outcome=failed Missing",
        )
        .unwrap();
        let j = CampaignJournal::open(&dir).unwrap();
        assert!(j.completed("aaaa").is_some(), "intact lines still load");
        assert!(
            j.completed("bbbb").is_none(),
            "a partial trailing line must not count as completed"
        );
        assert_eq!(j.issues().len(), 1);
        assert!(
            j.issues()[0].message.contains("truncated final line"),
            "issue must identify the truncation: {}",
            j.issues()[0]
        );
        assert_eq!(j.issues()[0].line, 2);
        // Recording after a truncated tail must start on a fresh line
        // (appending straight on would merge with the partial line):
        // the re-run's entry has to load on the next resume.
        let mut j = j;
        j.record(JournalEntry {
            hash: "bbbb".into(),
            attempts: 1,
            determinism: None,
            outcome: CaseOutcome::Failed {
                kind: "Missing action".into(),
            },
        })
        .unwrap();
        drop(j);
        let resumed = CampaignJournal::open(&dir).unwrap();
        assert_eq!(
            resumed.completed("bbbb").unwrap().outcome,
            CaseOutcome::Failed {
                kind: "Missing action".into()
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_writes_are_idempotent_and_leave_no_temp_files() {
        let dir = std::env::temp_dir().join(format!(
            "mocket-artifact-idempotent-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let a = artifact();
        let p1 = a.write_to(&dir).unwrap();
        let p2 = a.write_to(&dir).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(ReplayArtifact::load(&p1).unwrap(), a);
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, [a.file_name()], "no temp files may remain");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_line_roundtrip() {
        for entry in [
            JournalEntry {
                hash: "0123456789abcdef".into(),
                attempts: 1,
                determinism: None,
                outcome: CaseOutcome::Passed,
            },
            JournalEntry {
                hash: "ffff".into(),
                attempts: 7,
                determinism: None,
                outcome: CaseOutcome::Failed {
                    kind: "Watchdog timeout".into(),
                },
            },
            JournalEntry {
                hash: "ffff".into(),
                attempts: 2,
                determinism: Some("flaky".into()),
                outcome: CaseOutcome::Failed {
                    kind: "Missing action".into(),
                },
            },
        ] {
            let line = entry.render_line();
            assert_eq!(JournalEntry::parse_line(line.trim()).unwrap(), entry);
        }
        // Lines written by older builds (no det= token) still parse.
        assert_eq!(
            JournalEntry::parse_line("case: aaaa attempts=1 outcome=passed")
                .unwrap()
                .determinism,
            None
        );
    }
}
