//! The divergence explainer (insight layer).
//!
//! A bug report tells the developer *that* the implementation left the
//! verified path; the explainer tells them *where it went instead*.
//! For an inconsistent state it reconstructs the executed prefix from
//! the test case, computes a per-variable structured diff
//! ([`crate::statecheck::value_diff`]) between the verified state and
//! the observed runtime values, then estimates the runtime state (the
//! verified state with the diverging variables substituted by their
//! observed values) and runs a **bounded nearest-spec-state search**
//! over the state graph: a breadth-first walk over the undirected
//! graph from the expected state, limited by
//! [`ExplainConfig::radius`] and [`ExplainConfig::max_nodes`]. If a
//! verified state matches the estimate on every mapped variable the
//! verdict is "the implementation is in verified state S', reachable
//! via <alt path>"; otherwise "no verified state within distance k".
//! For an unexpected action the search instead looks for a verified
//! state that *enables* the offending actions.
//!
//! Everything here is a pure function of the graph, mapping and
//! report, so explanations are byte-identical across same-seed runs.

use std::collections::VecDeque;

use mocket_checker::{NodeId, StateGraph};
use mocket_obs::{sanitize, DivergenceExplanation, NearestVerdict};
use mocket_tla::{State, Value, VarClass};

use crate::mapping::{MappingRegistry, VarTarget};
use crate::report::{Inconsistency, VariableDivergence};
use crate::statecheck::{value_diff, values_match};
use crate::testcase::TestCase;

/// Bounds for the nearest-verified-state search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplainConfig {
    /// Maximum undirected graph distance from the expected state.
    pub radius: u64,
    /// Hard cap on states examined (the search stops early on dense
    /// graphs regardless of radius).
    pub max_nodes: usize,
}

impl Default for ExplainConfig {
    fn default() -> Self {
        ExplainConfig {
            radius: 3,
            max_nodes: 512,
        }
    }
}

/// Builds the explanation for a failure, if one applies. Returns
/// `None` for inconsistency kinds the explainer does not cover
/// (missing actions, crashes, watchdog timeouts) or when the test
/// case does not validate against the graph (so no verified path to
/// reason about).
pub fn explain_failure(
    graph: &StateGraph,
    registry: &MappingRegistry,
    case: &TestCase,
    inconsistency: &Inconsistency,
    actions_executed: usize,
    cfg: &ExplainConfig,
) -> Option<DivergenceExplanation> {
    let nodes = case.validate_against(graph).ok()?;
    match inconsistency {
        Inconsistency::InconsistentState {
            step,
            action,
            divergences,
        } => {
            let center = *nodes.get(step + 1)?;
            let prefix = case.steps[..=*step]
                .iter()
                .map(|s| sanitize(&s.action.to_string()))
                .collect();
            let mut diffs = Vec::new();
            for d in divergences {
                diffs.extend(value_diff(&d.variable, &d.expected, d.actual.as_ref()));
            }
            let estimate = runtime_estimate(graph.state(center), divergences);
            let verdict = nearest_search(graph, center, cfg, |node| {
                state_matches_estimate(registry, graph.state(node), &estimate)
            });
            Some(DivergenceExplanation {
                step: *step as u64,
                action: sanitize(&action.to_string()),
                prefix,
                diffs,
                verdict,
            })
        }
        Inconsistency::UnexpectedAction { actions } => {
            let center = *nodes.get(actions_executed)?;
            let prefix = case.steps[..actions_executed.min(case.steps.len())]
                .iter()
                .map(|s| sanitize(&s.action.to_string()))
                .collect();
            let label = actions
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let verdict = nearest_search(graph, center, cfg, |node| {
                let enabled = graph.enabled_at(node);
                actions.iter().all(|a| enabled.contains(&a))
            });
            Some(DivergenceExplanation {
                step: actions_executed as u64,
                action: sanitize(&format!("unexpected {label}")),
                prefix,
                diffs: Vec::new(),
                verdict,
            })
        }
        _ => None,
    }
}

/// The estimated runtime state in the spec domain: the verified state
/// with each diverging variable replaced by its observed value.
/// Variables whose runtime value could not be collected map to `None`
/// (unknown — they constrain nothing in the search).
struct RuntimeEstimate<'a> {
    base: &'a State,
    overrides: Vec<(&'a str, Option<&'a Value>)>,
}

fn runtime_estimate<'a>(
    base: &'a State,
    divergences: &'a [VariableDivergence],
) -> RuntimeEstimate<'a> {
    RuntimeEstimate {
        base,
        overrides: divergences
            .iter()
            .map(|d| (d.variable.as_str(), d.actual.as_ref()))
            .collect(),
    }
}

impl RuntimeEstimate<'_> {
    /// The estimated value of `var`: `Some(None)` means "observed but
    /// untranslatable/uncollected" (treated as unknown), `None` means
    /// "not diverged — use the base state".
    fn value_of(&self, var: &str) -> Option<Option<&Value>> {
        self.overrides
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, v)| *v)
            .map(Some)
            .unwrap_or(None)
    }
}

/// Whether `candidate` (a verified state) matches the runtime estimate
/// on every *mapped* variable. Unmapped (counter/auxiliary) variables
/// are skipped exactly as the state checker skips them, and unknown
/// runtime values constrain nothing.
fn state_matches_estimate(
    registry: &MappingRegistry,
    candidate: &State,
    estimate: &RuntimeEstimate<'_>,
) -> bool {
    for vm in registry.variables() {
        let mapped = matches!(
            (&vm.class, &vm.target),
            (VarClass::StateRelated, Some(VarTarget::ClassField { .. }))
                | (VarClass::StateRelated, Some(VarTarget::MethodVariable { .. }))
                | (VarClass::MessageRelated, Some(VarTarget::MessagePool { .. }))
        );
        if !mapped {
            continue;
        }
        let Some(candidate_value) = candidate.get(&vm.spec_name) else {
            continue;
        };
        match estimate.value_of(&vm.spec_name) {
            Some(Some(observed)) => {
                if !values_match(candidate_value, observed, vm.compare) {
                    return false;
                }
            }
            Some(None) => {} // unknown at runtime: no constraint
            None => {
                let Some(base_value) = estimate.base.get(&vm.spec_name) else {
                    continue;
                };
                if candidate_value != base_value {
                    return false;
                }
            }
        }
    }
    true
}

/// Bounded BFS over the *undirected* graph from `center`, reporting
/// the nearest node satisfying `matches` (BFS order is deterministic,
/// so ties break identically across runs) or `NoneWithin` when the
/// radius/node budget is exhausted.
fn nearest_search(
    graph: &StateGraph,
    center: NodeId,
    cfg: &ExplainConfig,
    matches: impl Fn(NodeId) -> bool,
) -> NearestVerdict {
    // Undirected adjacency, built in edge order so neighbor order —
    // and therefore BFS tie-breaking — is deterministic.
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); graph.state_count()];
    for edge in graph.edges() {
        adj[edge.from.0].push(edge.to);
        adj[edge.to.0].push(edge.from);
    }

    let mut dist: Vec<Option<u64>> = vec![None; graph.state_count()];
    let mut queue = VecDeque::new();
    dist[center.0] = Some(0);
    queue.push_back(center);
    let mut searched: u64 = 0;

    while let Some(node) = queue.pop_front() {
        let d = dist[node.0].unwrap();
        searched += 1;
        if matches(node) {
            return NearestVerdict::Verified {
                distance: d,
                state: sanitize(&graph.state(node).to_string()),
                alt_path: shortest_action_path(graph, node),
            };
        }
        if searched as usize >= cfg.max_nodes {
            break;
        }
        if d < cfg.radius {
            for &next in &adj[node.0] {
                if dist[next.0].is_none() {
                    dist[next.0] = Some(d + 1);
                    queue.push_back(next);
                }
            }
        }
    }
    NearestVerdict::NoneWithin {
        radius: cfg.radius,
        searched,
    }
}

/// Action names of a shortest verified path from an initial state to
/// `target` (forward BFS over the directed graph; empty when `target`
/// is itself initial). Falls back to empty if `target` is unreachable
/// — impossible for states produced by the checker, but the graph may
/// have been imported from elsewhere.
fn shortest_action_path(graph: &StateGraph, target: NodeId) -> Vec<String> {
    let mut parent: Vec<Option<(NodeId, usize)>> = vec![None; graph.state_count()];
    let mut seen = vec![false; graph.state_count()];
    let mut queue = VecDeque::new();
    for &root in graph.initial_states() {
        if !seen[root.0] {
            seen[root.0] = true;
            queue.push_back(root);
        }
    }
    while let Some(node) = queue.pop_front() {
        if node == target {
            let mut actions = Vec::new();
            let mut cur = node;
            while let Some((prev, eid)) = parent[cur.0] {
                actions.push(sanitize(&graph.edges()[eid].action.to_string()));
                cur = prev;
            }
            actions.reverse();
            return actions;
        }
        for &eid in graph.out_edges(node) {
            let to = graph.edge(eid).to;
            if !seen[to.0] {
                seen[to.0] = true;
                parent[to.0] = Some((node, eid.0));
                queue.push_back(to);
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingRegistry;
    use mocket_tla::ActionInstance;

    fn st(x: i64) -> State {
        State::from_pairs([("x", Value::Int(x)), ("aux", Value::str("noise"))])
    }

    /// 0 -Inc-> 1 -Inc-> 2 -Inc-> 3, plus 1 -Dec-> 0.
    fn graph() -> StateGraph {
        let mut g = StateGraph::new();
        let n: Vec<_> = (0..4).map(|i| g.insert_state(st(i)).0).collect();
        g.mark_initial(n[0]);
        g.add_edge(n[0], ActionInstance::nullary("Inc"), n[1]);
        g.add_edge(n[1], ActionInstance::nullary("Inc"), n[2]);
        g.add_edge(n[2], ActionInstance::nullary("Inc"), n[3]);
        g.add_edge(n[1], ActionInstance::nullary("Dec"), n[0]);
        g
    }

    fn registry() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.map_class_field("x", "x_impl");
        r
    }

    fn case(graph: &StateGraph, len: usize) -> TestCase {
        let path: Vec<_> = (0..len).map(mocket_checker::EdgeId).collect();
        TestCase::from_edge_path(graph, &path).unwrap()
    }

    #[test]
    fn inconsistent_state_finds_nearest_verified_state() {
        let g = graph();
        let tc = case(&g, 2); // 0 -> 1 -> 2; check after step 1 expects x=2
        let inc = Inconsistency::InconsistentState {
            step: 1,
            action: ActionInstance::nullary("Inc"),
            divergences: vec![VariableDivergence {
                variable: "x".into(),
                expected: Value::Int(2),
                actual: Some(Value::Int(1)), // implementation lagged one step
            }],
        };
        let e = explain_failure(&g, &registry(), &tc, &inc, 2, &ExplainConfig::default())
            .expect("explainable");
        assert_eq!(e.step, 1);
        assert_eq!(e.prefix, vec!["Inc".to_string(), "Inc".to_string()]);
        assert_eq!(e.diffs.len(), 1);
        assert_eq!(e.diffs[0].to_string(), "x: expected 2, got 1");
        match &e.verdict {
            NearestVerdict::Verified {
                distance,
                state,
                alt_path,
            } => {
                assert_eq!(*distance, 1);
                assert!(state.contains("x = 1"), "state: {state}");
                assert_eq!(alt_path, &vec!["Inc".to_string()]);
            }
            other => panic!("expected Verified, got {other:?}"),
        }
    }

    #[test]
    fn no_match_within_radius_reports_bound() {
        let g = graph();
        let tc = case(&g, 1); // 0 -> 1
        let inc = Inconsistency::InconsistentState {
            step: 0,
            action: ActionInstance::nullary("Inc"),
            divergences: vec![VariableDivergence {
                variable: "x".into(),
                expected: Value::Int(1),
                actual: Some(Value::Int(99)), // matches no verified state
            }],
        };
        let cfg = ExplainConfig {
            radius: 2,
            max_nodes: 512,
        };
        let e = explain_failure(&g, &registry(), &tc, &inc, 1, &cfg).expect("explainable");
        match e.verdict {
            NearestVerdict::NoneWithin { radius, searched } => {
                assert_eq!(radius, 2);
                assert!(searched >= 3, "searched {searched}");
            }
            other => panic!("expected NoneWithin, got {other:?}"),
        }
    }

    #[test]
    fn unexpected_action_searches_for_enabling_state() {
        let g = graph();
        let tc = case(&g, 2); // executed up to node 2
        let inc = Inconsistency::UnexpectedAction {
            actions: vec![ActionInstance::nullary("Dec")],
        };
        let e = explain_failure(&g, &registry(), &tc, &inc, 2, &ExplainConfig::default())
            .expect("explainable");
        assert_eq!(e.action, "unexpected Dec");
        assert!(e.diffs.is_empty());
        // Dec is enabled only at node 1, one step back from node 2.
        match &e.verdict {
            NearestVerdict::Verified {
                distance, state, ..
            } => {
                assert_eq!(*distance, 1);
                assert!(state.contains("x = 1"));
            }
            other => panic!("expected Verified, got {other:?}"),
        }
    }

    #[test]
    fn uncovered_kinds_and_invalid_cases_yield_none() {
        let g = graph();
        let tc = case(&g, 1);
        let missing = Inconsistency::MissingAction {
            step: 0,
            action: ActionInstance::nullary("Inc"),
            offered: vec![],
        };
        assert!(
            explain_failure(&g, &registry(), &tc, &missing, 1, &ExplainConfig::default())
                .is_none()
        );
        // A case that does not validate against the graph.
        let bogus = TestCase::new(st(9), vec![(ActionInstance::nullary("Inc"), st(10))]);
        let inc = Inconsistency::InconsistentState {
            step: 0,
            action: ActionInstance::nullary("Inc"),
            divergences: vec![],
        };
        assert!(
            explain_failure(&g, &registry(), &bogus, &inc, 1, &ExplainConfig::default())
                .is_none()
        );
    }

    #[test]
    fn max_nodes_caps_the_search() {
        let g = graph();
        let tc = case(&g, 1);
        let inc = Inconsistency::InconsistentState {
            step: 0,
            action: ActionInstance::nullary("Inc"),
            divergences: vec![VariableDivergence {
                variable: "x".into(),
                expected: Value::Int(1),
                actual: Some(Value::Int(3)), // a match exists at distance 2
            }],
        };
        let cfg = ExplainConfig {
            radius: 10,
            max_nodes: 1, // but the budget stops at the center
        };
        let e = explain_failure(&g, &registry(), &tc, &inc, 1, &cfg).expect("explainable");
        assert!(matches!(
            e.verdict,
            NearestVerdict::NoneWithin { searched: 1, .. }
        ));
    }
}
