//! The end-to-end Mocket pipeline (Figure 3).
//!
//! ① map the specification (a [`MappingRegistry`]), ② model-check it
//! into a state-space graph, ③ generate test cases by edge-coverage
//! traversal with optional partial-order reduction, ④ run controlled
//! testing against the system under test, collecting bug reports.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

use mocket_sim::{Clock, RealClock};

use mocket_obs::causal::{append_trace, CausalEvent, Tracer, TRACE_FILE_NAME};
use mocket_obs::{
    CampaignHistory, CampaignRecord, CoverageMap, Obs, RunSummary, COVERAGE_FILE_NAME,
    UNCOVERED_FILE_NAME,
};
use mocket_tla::{ActionInstance, Spec, State};

use mocket_checker::{to_dot_overlay, uncovered_frontier, EdgeId, ModelChecker, StateGraph};

use crate::artifact::{
    CampaignJournal, CaseOutcome, JournalEntry, JournalOpenError, ReplayArtifact,
};
use crate::explain::{explain_failure, ExplainConfig};
use crate::mapping::{MappingIssue, MappingRegistry};
use crate::minimize::{minimize_case, MinimizeConfig};
use crate::por::partial_order_reduction;
use crate::report::{BugClass, BugReport, Determinism, Inconsistency};
use crate::runner::{run_test_case_clocked, run_test_case_traced, RunConfig, TestOutcome};
use crate::sut::SystemUnderTest;
use crate::testcase::TestCase;
use crate::traversal::{edge_coverage_paths, TraversalConfig};

/// File name of the coverage-annotated DOT overlay inside a campaign
/// directory.
pub const COVERAGE_DOT_FILE_NAME: &str = "coverage.dot";

/// The unified retry policy (re-exported from [`crate::fsio`]).
///
/// One shape covers every transient-failure loop in the harness:
/// per-case SUT retries here in the pipeline (a deploy that loses the
/// race with teardown, a dropped control channel — not findings about
/// the system under test), supervisor worker restarts, lease steals,
/// and fault-injectable filesystem writes. Only cases that fail
/// *persistently* for harness-side reasons are quarantined.
pub use crate::fsio::RetryPolicy;

/// One failed attempt at running a test case.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// What went wrong, rendered for the report.
    pub error: String,
    /// Wall-clock duration of the attempt in seconds.
    pub seconds: f64,
}

/// A test case the pipeline gave up on for harness-side reasons: it
/// neither passed nor produced a verdict about the implementation.
/// Quarantined cases are surfaced in the result so a campaign summary
/// can never silently under-report coverage.
#[derive(Debug, Clone)]
pub struct QuarantinedCase {
    /// The case that could not be driven to a verdict.
    pub test_case: TestCase,
    /// Every attempt, in order.
    pub attempts: Vec<AttemptRecord>,
}

/// Failure-triage configuration: confirm & classify, shrink,
/// persist, resume.
#[derive(Debug, Clone)]
pub struct TriageConfig {
    /// Re-run every failure once with the identical seed/config to
    /// confirm it, classifying it deterministic or flaky.
    pub confirm: bool,
    /// Total re-runs used to measure the repro rate of a failure whose
    /// first confirmation re-run diverged (>= 1).
    pub flaky_reruns: usize,
    /// Delta-debugging budget for shrinking confirmed-deterministic
    /// failures (`max_oracle_runs: 0` disables shrinking).
    pub minimize: MinimizeConfig,
    /// Campaign directory: when set, every confirmed failure is
    /// persisted as a replay artifact here, and the campaign journal
    /// (`journal.log`) makes the run resumable — completed cases are
    /// skipped on restart.
    pub campaign_dir: Option<PathBuf>,
    /// Free-form spec/model identity recorded in artifacts (servers,
    /// bug flags, bounds).
    pub spec_config: String,
    /// Serialized fault-plan identity (`dsnet` `FaultPlan::serialize`)
    /// recorded in artifacts, opaque to this crate. The campaign's
    /// `make_sut` is responsible for actually installing it.
    pub fault_plan: Option<String>,
}

impl Default for TriageConfig {
    fn default() -> Self {
        TriageConfig {
            confirm: true,
            flaky_reruns: 3,
            minimize: MinimizeConfig::default(),
            campaign_dir: None,
            spec_config: String::new(),
            fault_plan: None,
        }
    }
}

impl TriageConfig {
    /// PR-1 behavior: no confirmation re-runs, no shrinking, no
    /// persistence.
    pub fn off() -> Self {
        TriageConfig {
            confirm: false,
            minimize: MinimizeConfig { max_oracle_runs: 0 },
            ..TriageConfig::default()
        }
    }
}

/// Per-case verdict from a [`PipelineConfig::case_gate`] hook,
/// consulted at every case boundary before any journal lookup or SUT
/// deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseGate {
    /// Dispose of the case normally.
    Run,
    /// Skip this case without a verdict (it stays un-journaled and can
    /// be retried by a later run) — how the orchestrator masks
    /// quarantined poison cases.
    Skip,
    /// Stop the whole run at this boundary — how a drain request ends
    /// a worker mid-shard without losing the in-flight journal state.
    Stop,
}

/// Pipeline configuration.
pub struct PipelineConfig {
    /// Bound on distinct states during model checking.
    pub max_states: usize,
    /// Apply partial-order reduction before traversal.
    pub por: bool,
    /// End-state predicate for the traversal (developer-specified).
    pub end_state: Option<Arc<dyn Fn(&State) -> bool + Send + Sync>>,
    /// Developer-specified test-case filter (the §4.2.1 idea of
    /// focusing testing, applied to whole cases): receives the case's
    /// action-name sequence; only matching cases are executed (and
    /// materialized). `None` runs everything.
    pub case_filter: Option<Arc<dyn Fn(&[&str]) -> bool + Send + Sync>>,
    /// Cap on generated test cases actually run (0 = all).
    pub max_test_cases: usize,
    /// Half-open case-index window `[start, end)` to execute; cases
    /// outside it are not materialized at all. `None` runs everything.
    /// This is how a campaign worker runs exactly its shard of the
    /// shared plan while keeping case indices (and thus hashes,
    /// events and coverage attribution) globally consistent.
    pub case_range: Option<(usize, usize)>,
    /// Per-case gate, called with `(case_index, stable_hash)` after
    /// the case is materialized but before the journal is consulted or
    /// a SUT is deployed. The orchestrator uses it to honor drain
    /// requests, mask poison cases, and record the in-flight case in
    /// its shard lease (so a crash is attributed to the right case).
    pub case_gate: Option<Arc<dyn Fn(usize, &str) -> CaseGate + Send + Sync>>,
    /// Cap on a single test case's length (0 = unbounded). Real
    /// deployments always bound this — an unbounded DFS descent
    /// through a cyclic state graph yields arbitrarily long walks.
    pub max_path_len: usize,
    /// Stop at the first bug report.
    pub stop_at_first_bug: bool,
    /// Controlled-run configuration.
    pub run: RunConfig,
    /// Retry policy for transient harness failures.
    pub retry: RetryPolicy,
    /// Failure triage: confirm, shrink, persist, resume.
    pub triage: TriageConfig,
    /// Divergence-explainer bounds: every inconsistent-state and
    /// unexpected-action report carries a per-variable diff and a
    /// nearest-verified-state verdict computed within these bounds.
    pub explain: ExplainConfig,
    /// Edge indices the traversal should cover first — typically fed
    /// from the previous run's uncovered-edge listing
    /// (`uncovered-edges.txt`, parsed by
    /// [`mocket_obs::parse_uncovered_listing`]). Out-of-range indices
    /// are ignored; empty leaves the traversal untouched.
    pub priority_edges: Vec<usize>,
    /// Observability handle. Defaults to disabled (events are
    /// dropped); metrics still accumulate either way, so the run
    /// summary is always complete. Use [`Obs::jsonl_in`] to stream
    /// `events.jsonl` into a campaign directory.
    pub obs: Obs,
    /// Record a causal trace per executed case (`--trace`): scheduler
    /// releases, node-step spans and message fates land in
    /// `trace.jsonl` next to the replay artifacts, and failing cases
    /// embed their trace in the artifact. Off by default — the
    /// disabled tracer is the fast no-op path.
    pub trace: bool,
    /// Render human-readable progress lines to stderr (the CLI's
    /// `--progress`). Independent of `obs`: progress is for watching,
    /// events are for machines.
    pub progress: bool,
    /// The clock every stage counts time on. Defaults to the wall
    /// clock; a simulation run installs a shared
    /// [`mocket_sim::SimClock`] here (and in the cluster backend) so
    /// deadlines, backoffs and all `timing.*`/`wall_*` figures are
    /// virtual — the same seed then yields byte-identical summaries.
    pub clock: Arc<dyn Clock>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            max_states: 1_000_000,
            por: true,
            end_state: None,
            case_filter: None,
            max_test_cases: 0,
            case_range: None,
            case_gate: None,
            max_path_len: 0,
            stop_at_first_bug: true,
            run: RunConfig::default(),
            retry: RetryPolicy::default(),
            triage: TriageConfig::default(),
            explain: ExplainConfig::default(),
            priority_edges: Vec::new(),
            obs: Obs::disabled(),
            trace: false,
            progress: false,
            clock: Arc::new(RealClock::new()),
        }
    }
}

/// Table 3-style effort numbers for one system.
#[derive(Debug, Clone, Default)]
pub struct TestingEffort {
    /// Distinct states in the state-space graph (`State` column).
    pub states: usize,
    /// Edges in the graph.
    pub edges: usize,
    /// Paths generated with edge coverage only (`PathEC`).
    pub paths_ec: usize,
    /// Paths with edge coverage + POR (`PathEC+POR`).
    pub paths_ec_por: usize,
    /// Edges excluded by POR.
    pub por_excluded_edges: usize,
    /// Test cases actually executed.
    pub cases_run: usize,
    /// Total controlled-testing time in seconds (`Time`).
    pub test_seconds: f64,
    /// Model-checking time in seconds.
    pub check_seconds: f64,
}

impl TestingEffort {
    /// Fraction of EC paths removed by POR (the paper reports 87% for
    /// ZooKeeper).
    pub fn por_reduction(&self) -> f64 {
        if self.paths_ec == 0 {
            0.0
        } else {
            1.0 - self.paths_ec_por as f64 / self.paths_ec as f64
        }
    }
}

/// Result of a full pipeline run.
pub struct PipelineResult {
    /// The state-space graph from model checking.
    pub graph: StateGraph,
    /// Number of test cases selected for execution (cases are
    /// materialized lazily, one at a time; revealing cases are kept
    /// inside their bug reports).
    pub cases_selected: usize,
    /// Bug reports from controlled testing.
    pub reports: Vec<BugReport>,
    /// Cases abandoned for harness-side reasons after exhausting
    /// their attempt budget (neither passed nor failed).
    pub quarantined: Vec<QuarantinedCase>,
    /// Effort statistics.
    pub effort: TestingEffort,
    /// Test cases that passed.
    pub passed: usize,
    /// Cases skipped because the campaign journal already recorded a
    /// verdict for them (their verdicts are folded into `passed` /
    /// `effort.cases_run`).
    pub skipped_from_journal: usize,
    /// Replay artifacts written this run (one per confirmed failure,
    /// when a campaign directory is configured).
    pub artifacts: Vec<PathBuf>,
    /// Non-fatal persistence problems: malformed journal lines,
    /// failed appends, failed artifact writes. Surfaced, never
    /// aborting the campaign.
    pub journal_issues: Vec<String>,
    /// The end-of-run summary (also written as `run-summary.json` when
    /// an obs or campaign directory is configured).
    pub summary: RunSummary,
    /// Per-edge/per-action hit counts over the campaign (also written
    /// as `coverage.json`, `coverage.dot` and `uncovered-edges.txt`
    /// when an obs or campaign directory is configured).
    pub coverage: CoverageMap,
    /// Enabled-but-never-scheduled edges: the uncovered frontier the
    /// next campaign should prioritize.
    pub frontier: Vec<EdgeId>,
    /// Set when the run aborted before executing anything because the
    /// campaign directory's journal is locked by another live process
    /// (the satellite fail-fast: two campaigns must never interleave
    /// appends). Nothing was written to the locked directory.
    pub lock_conflict: Option<String>,
    /// The case gate returned [`CaseGate::Stop`]: the run ended early
    /// at a case boundary (a drain), leaving later cases untouched.
    pub stopped_by_gate: bool,
}

/// Folds one disposed case (run, journal-skipped or quarantined) into
/// the campaign coverage map.
fn record_case_coverage(coverage: &mut CoverageMap, graph: &StateGraph, path: &[EdgeId]) {
    coverage.record_case(
        path.iter().map(|e| e.0),
        path.iter().map(|&e| graph.edge(e).action.name.as_str()),
    );
}

/// The Mocket pipeline for one specification + mapping + target.
pub struct Pipeline {
    spec: Arc<dyn Spec>,
    registry: MappingRegistry,
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline; fails fast on mapping issues (§5.4's
    /// developer errors are caught before any testing time is spent).
    pub fn new(
        spec: Arc<dyn Spec>,
        registry: MappingRegistry,
        config: PipelineConfig,
    ) -> Result<Self, Vec<MappingIssue>> {
        let issues = registry.validate(spec.as_ref());
        if issues.is_empty() {
            Ok(Pipeline {
                spec,
                registry,
                config,
            })
        } else {
            Err(issues)
        }
    }

    /// The mapping registry.
    pub fn registry(&self) -> &MappingRegistry {
        &self.registry
    }

    /// Stage ②: model checking.
    pub fn check(&self) -> (StateGraph, f64) {
        let start = self.config.clock.now();
        let result = ModelChecker::new(self.spec.clone())
            .max_states(self.config.max_states)
            .obs(self.config.obs.clone())
            .clock(self.config.clock.clone())
            .run();
        let seconds = self.config.clock.now().saturating_sub(start).as_secs_f64();
        self.config
            .obs
            .metrics()
            .observe("timing.stage.check_seconds", seconds);
        (result.graph, seconds)
    }

    /// Stage ③ (path form): selected edge paths plus
    /// `(paths_ec, paths_ec_por, excluded_edges)`. Test cases are
    /// materialized from paths lazily — a large model's full case set
    /// does not fit in memory as states.
    pub fn generate_paths(
        &self,
        graph: &StateGraph,
    ) -> (Vec<Vec<mocket_checker::EdgeId>>, usize, usize, usize) {
        // Uncovered edges from a previous campaign steer this one's
        // walk order (stale out-of-range indices are dropped).
        let priority: std::collections::HashSet<EdgeId> = self
            .config
            .priority_edges
            .iter()
            .filter(|&&e| e < graph.edge_count())
            .map(|&e| EdgeId(e))
            .collect();

        // Plain edge coverage (for the Table 3 comparison).
        let mut plain = TraversalConfig::default().with_priority_edges(priority.clone());
        plain.max_path_len = self.config.max_path_len;
        if let Some(end) = self.config.end_state.clone() {
            plain = plain.with_end_state(move |s| end(s));
        }
        let ec = edge_coverage_paths(graph, &plain);

        let por = partial_order_reduction(graph);
        let por_excluded = por.excluded_edges.len();
        let mut reduced_cfg = TraversalConfig::default()
            .with_excluded_edges(por.excluded_edges)
            .with_priority_edges(priority);
        reduced_cfg.max_path_len = self.config.max_path_len;
        if let Some(end) = self.config.end_state.clone() {
            reduced_cfg = reduced_cfg.with_end_state(move |s| end(s));
        }
        let reduced = edge_coverage_paths(graph, &reduced_cfg);

        let ec_count = ec.paths.len();
        let reduced_count = reduced.paths.len();
        let chosen = if self.config.por { reduced } else { ec };
        // Coverage gauges are set from the *chosen* traversal — the one
        // the summary's `coverage` field must match exactly. Gauges,
        // not counters: re-running generate_paths must not accumulate.
        let m = self.config.obs.metrics();
        m.set_gauge("coverage.edges_visited", chosen.edges_visited as f64);
        m.set_gauge("coverage.edge_targets", chosen.edge_targets as f64);
        m.set_gauge("coverage.fraction", chosen.edge_coverage());
        m.set_gauge("pipeline.paths_ec", ec_count as f64);
        m.set_gauge("pipeline.paths_ec_por", reduced_count as f64);
        m.set_gauge("pipeline.por_excluded_edges", por_excluded as f64);
        // Filter on cheap action-name views; cases are materialized
        // later, one at a time.
        let mut selected: Vec<Vec<mocket_checker::EdgeId>> = chosen
            .paths
            .into_iter()
            .filter(|p| !p.is_empty())
            .filter(|p| match &self.config.case_filter {
                None => true,
                Some(filter) => {
                    let names: Vec<&str> = p
                        .iter()
                        .map(|&e| graph.edge(e).action.name.as_str())
                        .collect();
                    filter(&names)
                }
            })
            .collect();
        if self.config.max_test_cases != 0 && selected.len() > self.config.max_test_cases {
            selected.truncate(self.config.max_test_cases);
        }
        (selected, ec_count, reduced_count, por_excluded)
    }

    /// Stage ③ (materialized form, for small models and the examples):
    /// the selected test cases plus `(paths_ec, paths_ec_por,
    /// excluded_edges)`.
    pub fn generate(&self, graph: &StateGraph) -> (Vec<TestCase>, usize, usize, usize) {
        let (paths, ec, ecpor, excl) = self.generate_paths(graph);
        let cases = paths
            .iter()
            .filter_map(|p| TestCase::from_edge_path(graph, p))
            .collect();
        (cases, ec, ecpor, excl)
    }

    /// Stage ④: controlled testing of the generated cases.
    ///
    /// `make_sut` deploys a fresh system per call; a new cluster is
    /// used for every test case (§4.3.2).
    ///
    /// The campaign always runs to completion (or to
    /// `stop_at_first_bug`): a single misbehaving case can no longer
    /// abort the whole run. Transient harness failures are retried
    /// per [`RetryPolicy`]; cases that stay undrivable are
    /// quarantined with their attempt history.
    pub fn run<F>(&self, make_sut: F) -> PipelineResult
    where
        F: FnMut() -> Box<dyn SystemUnderTest>,
    {
        let obs = self.config.obs.clone();
        obs.event(
            "run.start",
            0,
            vec![
                ("spec", self.spec.name().into()),
                ("max_states", self.config.max_states.into()),
                ("por", self.config.por.into()),
            ],
        );
        self.progress(format_args!(
            "spec {}: model checking (max {} states)",
            self.spec.name(),
            self.config.max_states
        ));

        let (graph, check_seconds) = self.check();
        self.run_prepared(graph, check_seconds, make_sut)
    }

    /// Stage ④ against an already-checked graph. Campaign workers
    /// model-check once per process and then drive one shard at a time
    /// through this entry point; `check_seconds` is folded into the
    /// reported wall totals.
    pub fn run_prepared<F>(
        &self,
        graph: StateGraph,
        check_seconds: f64,
        mut make_sut: F,
    ) -> PipelineResult
    where
        F: FnMut() -> Box<dyn SystemUnderTest>,
    {
        let obs = self.config.obs.clone();
        let run_start = self.config.clock.now();
        let (paths, paths_ec, paths_ec_por, por_excluded) = self.generate_paths(&graph);
        let cases_selected = paths.len();

        let m = obs.metrics();
        obs.event(
            "generate.done",
            0,
            vec![
                ("states", graph.state_count().into()),
                ("edges", graph.edge_count().into()),
                ("cases_selected", cases_selected.into()),
                ("paths_ec", paths_ec.into()),
                ("paths_ec_por", paths_ec_por.into()),
                ("por_excluded", por_excluded.into()),
                (
                    "coverage_visited",
                    (m.gauge("coverage.edges_visited").unwrap_or(0.0) as u64).into(),
                ),
                (
                    "coverage_targets",
                    (m.gauge("coverage.edge_targets").unwrap_or(0.0) as u64).into(),
                ),
            ],
        );
        self.progress(format_args!(
            "{} states, {} edges; {} cases selected (edge coverage {:.1}%)",
            graph.state_count(),
            graph.edge_count(),
            cases_selected,
            m.gauge("coverage.fraction").unwrap_or(0.0) * 100.0
        ));

        let mut reports = Vec::new();
        let mut quarantined = Vec::new();
        let mut passed = 0usize;
        let test_start = self.config.clock.now();
        let mut cases_run = 0usize;
        let mut skipped_from_journal = 0usize;
        let mut artifacts: Vec<PathBuf> = Vec::new();
        let mut journal_issues: Vec<String> = Vec::new();
        // Per-edge/per-action hit counts over every case the campaign
        // disposed of (run, journal-skipped or quarantined) — the
        // overlay and the uncovered-edge listing come from this.
        let mut coverage = CoverageMap::new(graph.edge_count());

        // Resume: load the campaign journal (if a campaign directory
        // is configured) and fold previously completed cases back into
        // the coverage counters instead of re-running them.
        let mut journal = match &self.config.triage.campaign_dir {
            Some(dir) => match CampaignJournal::open(dir) {
                Ok(j) => {
                    journal_issues.extend(j.issues().iter().map(|i| i.to_string()));
                    Some(j)
                }
                Err(locked @ JournalOpenError::Locked { .. }) => {
                    // Another live campaign owns this directory. Abort
                    // before deploying anything and before writing a
                    // single byte into the contested directory —
                    // interleaved appends would corrupt both campaigns.
                    let message = locked.to_string();
                    obs.event(
                        "run.aborted",
                        0,
                        vec![
                            ("reason", "campaign_dir_locked".into()),
                            ("detail", message.clone().into()),
                        ],
                    );
                    self.progress(format_args!("aborted: {message}"));
                    obs.flush();
                    let edge_count = graph.edge_count();
                    return PipelineResult {
                        cases_selected,
                        reports: Vec::new(),
                        quarantined: Vec::new(),
                        effort: TestingEffort {
                            states: graph.state_count(),
                            edges: edge_count,
                            paths_ec,
                            paths_ec_por,
                            por_excluded_edges: por_excluded,
                            cases_run: 0,
                            test_seconds: 0.0,
                            check_seconds,
                        },
                        passed: 0,
                        skipped_from_journal: 0,
                        artifacts: Vec::new(),
                        journal_issues: vec![message.clone()],
                        summary: RunSummary {
                            spec: self.spec.name().to_string(),
                            states: graph.state_count() as u64,
                            edges: edge_count as u64,
                            journal_issues: 1,
                            ..RunSummary::default()
                        },
                        coverage: CoverageMap::new(edge_count),
                        frontier: Vec::new(),
                        graph,
                        lock_conflict: Some(message),
                        stopped_by_gate: false,
                    };
                }
                Err(e) => {
                    journal_issues.push(format!("campaign journal unavailable: {e}"));
                    None
                }
            },
            None => None,
        };

        // Causal tracing (`--trace`): one batch of events per attempt
        // appended to `trace.jsonl` next to the replay artifacts
        // (campaign dir first, obs dir otherwise). The file is
        // truncated at run start so it always describes the latest
        // run — which makes same-seed `--sim` runs byte-identical.
        let trace_path = if self.config.trace {
            self.config
                .triage
                .campaign_dir
                .clone()
                .or_else(|| obs.dir().map(|d| d.to_path_buf()))
                .map(|d| d.join(TRACE_FILE_NAME))
        } else {
            None
        };
        if let Some(tp) = &trace_path {
            if let Some(parent) = tp.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(e) = std::fs::write(tp, b"") {
                journal_issues.push(format!("trace reset failed: {e}"));
            }
        }

        let mut stopped_by_gate = false;
        'cases: for (case_idx, path) in paths.iter().enumerate() {
            if let Some((start, end)) = self.config.case_range {
                if case_idx < start {
                    continue 'cases;
                }
                if case_idx >= end {
                    break 'cases;
                }
            }
            // Materialize one case at a time. An empty path carries no
            // actions to schedule (a fully-excluded initial node can
            // produce one upstream); skip it instead of panicking.
            let (Some(tc), Some(&last_edge)) = (TestCase::from_edge_path(&graph, path), path.last())
            else {
                continue 'cases;
            };
            let final_node = graph.edge(last_edge).to;
            let final_enabled: Vec<ActionInstance> =
                graph.enabled_at(final_node).into_iter().cloned().collect();

            let hash = tc.stable_hash();
            // The gate runs before the journal lookup: a Stop (drain)
            // must take effect even while a resumed run is still
            // fast-forwarding through journaled cases.
            match self.config.case_gate.as_ref().map(|g| g(case_idx, &hash)) {
                None | Some(CaseGate::Run) => {}
                Some(CaseGate::Skip) => {
                    obs.event(
                        "case.verdict",
                        case_idx as u64,
                        vec![("case", case_idx.into()), ("outcome", "skipped_gate".into())],
                    );
                    obs.metrics().add("pipeline.cases_skipped_gate", 1);
                    continue 'cases;
                }
                Some(CaseGate::Stop) => {
                    obs.event(
                        "run.stopped",
                        case_idx as u64,
                        vec![("case", case_idx.into()), ("reason", "gate".into())],
                    );
                    self.progress(format_args!(
                        "stopping at case {} on gate request",
                        case_idx + 1
                    ));
                    stopped_by_gate = true;
                    break 'cases;
                }
            }
            if let Some(entry) = journal.as_ref().and_then(|j| j.completed(&hash)) {
                // A previous run of this campaign already reached a
                // verdict here; rebuild the counters and move on.
                // (Quarantined cases are never journaled, so they get
                // a fresh try on resume.)
                skipped_from_journal += 1;
                cases_run += 1;
                record_case_coverage(&mut coverage, &graph, path);
                if entry.outcome == CaseOutcome::Passed {
                    passed += 1;
                }
                obs.event(
                    "case.verdict",
                    case_idx as u64,
                    vec![
                        ("case", case_idx.into()),
                        ("outcome", "skipped_journal".into()),
                    ],
                );
                obs.metrics().add("pipeline.cases_skipped_journal", 1);
                continue;
            }

            obs.event(
                "case.start",
                case_idx as u64,
                vec![("case", case_idx.into()), ("len", tc.len().into())],
            );

            let max_attempts = self.config.retry.attempts.max(1);
            let mut attempts: Vec<AttemptRecord> = Vec::new();
            let mut verdict_reached = false;
            let mut trace_events: Vec<CausalEvent> = Vec::new();
            for attempt in 1..=max_attempts {
                if attempt > 1 {
                    // Exponential backoff: transient conditions (a
                    // slow teardown, an exhausted port) need time.
                    self.config
                        .clock
                        .sleep(self.config.retry.delay(attempt - 2, false));
                }
                // Fresh tracer per attempt: a retried case must not
                // leak the aborted attempt's events into its trace.
                let tracer = if self.config.trace {
                    let t = Tracer::for_case(case_idx as u64);
                    t.set_edge_path(path.iter().map(|e| e.0 as u64).collect());
                    t.begin_case(&hash, 0);
                    t
                } else {
                    Tracer::disabled()
                };
                let mut sut = make_sut();
                // A panicking SUT (or checker) must not take the
                // buffered observability events down with it: drain the
                // recorder before letting the unwind continue, so the
                // triage evidence — including this case's `case.start`
                // — reaches events.jsonl.
                let attempt_outcome = catch_unwind(AssertUnwindSafe(|| {
                    run_test_case_traced(
                        sut.as_mut(),
                        &tc,
                        &self.registry,
                        &final_enabled,
                        &self.config.run,
                        &obs,
                        self.config.clock.as_ref(),
                        &tracer,
                    )
                }));
                let attempt_outcome = match attempt_outcome {
                    Ok(outcome) => outcome,
                    Err(payload) => {
                        obs.flush();
                        resume_unwind(payload);
                    }
                };
                if tracer.is_enabled() {
                    let label = match &attempt_outcome {
                        Ok((TestOutcome::Passed, _)) => "passed",
                        Ok((TestOutcome::Failed(inc), _)) => inc.kind(),
                        Err(_) => "harness-error",
                    };
                    tracer.end_case(label, 0);
                    trace_events = tracer.take_events();
                    if let Some(tp) = &trace_path {
                        if let Err(e) = append_trace(tp, &trace_events) {
                            journal_issues.push(format!("trace append failed: {e}"));
                        }
                    }
                }
                match attempt_outcome {
                    Ok((outcome, stats)) => {
                        verdict_reached = true;
                        cases_run += 1;
                        obs.metrics().add("pipeline.cases_run", 1);
                        obs.metrics()
                            .observe("timing.profile.case_seconds", stats.seconds);
                        match outcome {
                            TestOutcome::Passed => {
                                passed += 1;
                                record_case_coverage(&mut coverage, &graph, path);
                                obs.event(
                                    "case.verdict",
                                    case_idx as u64,
                                    vec![
                                        ("case", case_idx.into()),
                                        ("outcome", "passed".into()),
                                        ("attempt", attempt.into()),
                                    ],
                                );
                                obs.metrics().add("pipeline.cases_passed", 1);
                                self.progress(format_args!(
                                    "case {}/{}: passed",
                                    case_idx + 1,
                                    cases_selected
                                ));
                                if let Some(j) = journal.as_mut() {
                                    if let Err(e) = j.record(JournalEntry {
                                        hash: hash.clone(),
                                        attempts: attempt,
                                        determinism: None,
                                        outcome: CaseOutcome::Passed,
                                    }) {
                                        journal_issues
                                            .push(format!("journal append failed: {e}"));
                                    }
                                }
                            }
                            TestOutcome::Failed(inconsistency) => {
                                // A node death before any action ran is a
                                // deploy-time accident, not a verdict about
                                // this schedule: retry it like a harness
                                // failure.
                                let premature_death = matches!(
                                    inconsistency,
                                    Inconsistency::NodeDeath { .. }
                                ) && stats.actions_executed == 0;
                                if premature_death && attempt < max_attempts {
                                    obs.metrics().add("pipeline.premature_deaths", 1);
                                    attempts.push(AttemptRecord {
                                        error: format!(
                                            "{}",
                                            inconsistency
                                        )
                                        .trim_end()
                                        .to_string(),
                                        seconds: stats.seconds,
                                    });
                                    verdict_reached = false;
                                    cases_run -= 1;
                                    continue;
                                }
                                obs.event(
                                    "case.verdict",
                                    case_idx as u64,
                                    vec![
                                        ("case", case_idx.into()),
                                        ("outcome", "failed".into()),
                                        ("attempt", attempt.into()),
                                        ("kind", inconsistency.kind().into()),
                                        ("step", stats.actions_executed.into()),
                                    ],
                                );
                                obs.metrics().add("pipeline.cases_failed", 1);
                                record_case_coverage(&mut coverage, &graph, path);
                                self.progress(format_args!(
                                    "case {}/{}: FAILED ({})",
                                    case_idx + 1,
                                    cases_selected,
                                    inconsistency.kind()
                                ));
                                // Insight layer: where did the
                                // implementation actually go?
                                let explanation = explain_failure(
                                    &graph,
                                    &self.registry,
                                    &tc,
                                    &inconsistency,
                                    stats.actions_executed,
                                    &self.config.explain,
                                );
                                // Failure triage: confirm & classify,
                                // then shrink deterministic failures.
                                let (determinism, minimized) = self.triage_failure(
                                    &graph,
                                    &tc,
                                    &inconsistency,
                                    &final_enabled,
                                    &mut make_sut,
                                );
                                // Persist a self-contained replay
                                // artifact for the reproducer.
                                if let Some(dir) = &self.config.triage.campaign_dir {
                                    let repro =
                                        minimized.clone().unwrap_or_else(|| tc.clone());
                                    let repro_enabled = match &minimized {
                                        None => final_enabled.clone(),
                                        Some(min) => min
                                            .validate_against(&graph)
                                            .ok()
                                            .and_then(|nodes| nodes.last().copied())
                                            .map(|n| {
                                                graph
                                                    .enabled_at(n)
                                                    .into_iter()
                                                    .cloned()
                                                    .collect()
                                            })
                                            .unwrap_or_else(|| final_enabled.clone()),
                                    };
                                    let artifact = ReplayArtifact::from_failure(
                                        self.spec.name(),
                                        self.config.triage.spec_config.clone(),
                                        &inconsistency,
                                        determinism,
                                        self.config.triage.fault_plan.clone(),
                                        &self.config.run,
                                        tc.len(),
                                        repro_enabled,
                                        explanation.clone(),
                                        repro,
                                    )
                                    .with_trace(
                                        trace_events
                                            .iter()
                                            .map(CausalEvent::to_json_line)
                                            .collect(),
                                    );
                                    match artifact.write_to(dir) {
                                        Ok(path) => {
                                            obs.metrics().add("pipeline.artifacts_written", 1);
                                            artifacts.push(path)
                                        }
                                        Err(e) => journal_issues
                                            .push(format!("artifact write failed: {e}")),
                                    }
                                }
                                if let Some(j) = journal.as_mut() {
                                    let det_label = match determinism {
                                        Determinism::Deterministic { .. } => "deterministic",
                                        Determinism::Flaky { .. } => "flaky",
                                        Determinism::Unconfirmed => "unconfirmed",
                                    };
                                    if let Err(e) = j.record(JournalEntry {
                                        hash: hash.clone(),
                                        attempts: attempt,
                                        determinism: Some(det_label.to_string()),
                                        outcome: CaseOutcome::Failed {
                                            kind: inconsistency.kind().to_string(),
                                        },
                                    }) {
                                        journal_issues
                                            .push(format!("journal append failed: {e}"));
                                    }
                                }
                                reports.push(BugReport {
                                    inconsistency,
                                    test_case: tc.clone(),
                                    actions_executed: stats.actions_executed,
                                    elapsed: self.config.clock.now().saturating_sub(test_start),
                                    attempt,
                                    determinism,
                                    minimized,
                                    explanation,
                                    class: BugClass::Unclassified,
                                });
                                if self.config.stop_at_first_bug {
                                    break 'cases;
                                }
                            }
                        }
                        break;
                    }
                    Err(err) => {
                        // Harness-side failure (deploy, external
                        // script, control channel): retry, then
                        // quarantine.
                        attempts.push(AttemptRecord {
                            error: err.to_string(),
                            seconds: 0.0,
                        });
                    }
                }
            }
            if !verdict_reached {
                record_case_coverage(&mut coverage, &graph, path);
                obs.event(
                    "case.verdict",
                    case_idx as u64,
                    vec![
                        ("case", case_idx.into()),
                        ("outcome", "quarantined".into()),
                        ("attempt", attempts.len().into()),
                    ],
                );
                obs.metrics().add("pipeline.cases_quarantined", 1);
                self.progress(format_args!(
                    "case {}/{}: quarantined after {} attempts",
                    case_idx + 1,
                    cases_selected,
                    attempts.len()
                ));
                quarantined.push(QuarantinedCase {
                    test_case: tc,
                    attempts: std::mem::take(&mut attempts),
                });
            }
        }

        let effort = TestingEffort {
            states: graph.state_count(),
            edges: graph.edge_count(),
            paths_ec,
            paths_ec_por,
            por_excluded_edges: por_excluded,
            cases_run,
            test_seconds: self
                .config
                .clock
                .now()
                .saturating_sub(test_start)
                .as_secs_f64(),
            check_seconds,
        };

        obs.event(
            "run.done",
            cases_selected as u64,
            vec![
                ("cases_run", cases_run.into()),
                ("passed", passed.into()),
                ("failed", reports.len().into()),
                ("quarantined", quarantined.len().into()),
                ("skipped_journal", skipped_from_journal.into()),
            ],
        );
        self.progress(format_args!(
            "done: {} run, {} passed, {} failed, {} quarantined",
            cases_run,
            passed,
            reports.len(),
            quarantined.len()
        ));

        let run_seconds = self
            .config
            .clock
            .now()
            .saturating_sub(run_start)
            .as_secs_f64();
        let m = obs.metrics();
        m.observe("timing.stage.test_seconds", effort.test_seconds);
        m.observe("timing.stage.total_seconds", check_seconds + run_seconds);

        let mut summary = RunSummary {
            spec: self.spec.name().to_string(),
            fault_plan: self.config.triage.fault_plan.clone(),
            states: graph.state_count() as u64,
            edges: graph.edge_count() as u64,
            coverage_edges_visited: m.gauge("coverage.edges_visited").unwrap_or(0.0) as u64,
            coverage_edge_targets: m.gauge("coverage.edge_targets").unwrap_or(0.0) as u64,
            coverage: m.gauge("coverage.fraction").unwrap_or(0.0),
            por_excluded_edges: por_excluded as u64,
            cases_selected: cases_selected as u64,
            cases_run: cases_run as u64,
            cases_passed: passed as u64,
            cases_failed: reports.len() as u64,
            cases_quarantined: quarantined.len() as u64,
            cases_skipped_from_journal: skipped_from_journal as u64,
            journal_issues: journal_issues.len() as u64,
            wall_check_seconds: check_seconds,
            wall_test_seconds: effort.test_seconds,
            wall_total_seconds: check_seconds + run_seconds,
            ..RunSummary::default()
        };
        for report in &reports {
            *summary
                .bugs_by_kind
                .entry(report.inconsistency.kind().to_string())
                .or_insert(0) += 1;
            let verdict = match report.determinism {
                Determinism::Deterministic { .. } => "deterministic",
                Determinism::Flaky { .. } => "flaky",
                Determinism::Unconfirmed => "unconfirmed",
            };
            *summary
                .bugs_by_determinism
                .entry(verdict.to_string())
                .or_insert(0) += 1;
        }
        summary.metrics = m.snapshot();

        let frontier = uncovered_frontier(&graph, coverage.edge_hits());
        m.set_gauge("coverage.frontier_edges", frontier.len() as f64);

        // The summary and the insight artifacts land next to
        // events.jsonl when obs streams to a directory, otherwise next
        // to the replay artifacts.
        let out_dir = obs
            .dir()
            .map(|d| d.to_path_buf())
            .or_else(|| self.config.triage.campaign_dir.clone());
        if let Some(dir) = &out_dir {
            if let Err(e) = summary.write_to(dir) {
                journal_issues.push(format!("run summary write failed: {e}"));
            }
            for (name, content) in [
                (COVERAGE_FILE_NAME, coverage.to_json()),
                (UNCOVERED_FILE_NAME, coverage.uncovered_listing()),
                (
                    COVERAGE_DOT_FILE_NAME,
                    to_dot_overlay(&graph, coverage.edge_hits()),
                ),
            ] {
                if let Err(e) = crate::fsio::write_atomic(
                    dir,
                    name,
                    content.as_bytes(),
                    crate::fsio::points::INSIGHT_WRITE,
                    &RetryPolicy::io(),
                ) {
                    journal_issues.push(format!("{name} write failed: {e}"));
                }
            }
            match CampaignHistory::open(dir) {
                Ok(mut history) => {
                    journal_issues.extend(history.issues().iter().map(|i| i.to_string()));
                    let record = CampaignRecord {
                        seq: history.next_seq(),
                        spec: summary.spec.clone(),
                        states: summary.states,
                        edges: summary.edges,
                        coverage_edges_visited: summary.coverage_edges_visited,
                        coverage_edge_targets: summary.coverage_edge_targets,
                        coverage: summary.coverage,
                        cases_selected: summary.cases_selected,
                        cases_run: summary.cases_run,
                        cases_passed: summary.cases_passed,
                        cases_failed: summary.cases_failed,
                        cases_quarantined: summary.cases_quarantined,
                        cases_skipped_from_journal: summary.cases_skipped_from_journal,
                        bugs_by_kind: summary.bugs_by_kind.clone(),
                        bugs_by_determinism: summary.bugs_by_determinism.clone(),
                        shrink_original_actions: reports
                            .iter()
                            .filter(|r| r.minimized.is_some())
                            .map(|r| r.test_case.len() as u64)
                            .sum(),
                        shrink_minimized_actions: reports
                            .iter()
                            .filter_map(|r| r.minimized.as_ref())
                            .map(|min| min.len() as u64)
                            .sum(),
                        uncovered_frontier_edges: frontier.len() as u64,
                        wall_checker_states_per_sec: if check_seconds > 0.0 {
                            summary.states as f64 / check_seconds
                        } else {
                            0.0
                        },
                        wall_total_seconds: summary.wall_total_seconds,
                    };
                    if let Err(e) = history.append(record) {
                        journal_issues.push(format!("campaign history append failed: {e}"));
                    }
                }
                Err(e) => journal_issues.push(format!("campaign history unavailable: {e}")),
            }
        }
        obs.flush();

        PipelineResult {
            graph,
            cases_selected,
            reports,
            quarantined,
            effort,
            passed,
            skipped_from_journal,
            artifacts,
            journal_issues,
            summary,
            coverage,
            frontier,
            lock_conflict: None,
            stopped_by_gate,
        }
    }

    /// Emits one `--progress` line when enabled.
    fn progress(&self, line: std::fmt::Arguments<'_>) {
        if self.config.progress {
            eprintln!("[mocket] {line}");
        }
    }

    /// Confirm & classify a failure, then shrink it if deterministic.
    ///
    /// Re-runs the revealing case with the identical configuration —
    /// `make_sut` rebuilds the same environment (same fault seed, same
    /// cluster) every call, which is exactly what makes confirmation
    /// meaningful. The first re-run decides the classification: same
    /// inconsistency kind again means deterministic; anything else
    /// means flaky, and the remaining re-run budget measures the repro
    /// rate. Only deterministic failures are worth the oracle cost of
    /// delta debugging.
    fn triage_failure<F>(
        &self,
        graph: &StateGraph,
        tc: &TestCase,
        inconsistency: &Inconsistency,
        final_enabled: &[ActionInstance],
        make_sut: &mut F,
    ) -> (Determinism, Option<TestCase>)
    where
        F: FnMut() -> Box<dyn SystemUnderTest>,
    {
        let triage = &self.config.triage;
        if !triage.confirm {
            return (Determinism::Unconfirmed, None);
        }
        let kind = inconsistency.kind();
        // One re-run = one fresh deployment driven through the same
        // schedule; a harness error during triage counts as "did not
        // reproduce" rather than aborting the campaign.
        let obs = &self.config.obs;
        let mut rerun = |case: &TestCase, enabled: &[ActionInstance]| -> bool {
            obs.metrics().add("pipeline.triage_reruns", 1);
            let mut sut = make_sut();
            matches!(
                run_test_case_clocked(
                    sut.as_mut(),
                    case,
                    &self.registry,
                    enabled,
                    &self.config.run,
                    obs,
                    self.config.clock.as_ref(),
                ),
                Ok((TestOutcome::Failed(inc), _)) if inc.kind() == kind
            )
        };

        let determinism = if rerun(tc, final_enabled) {
            Determinism::Deterministic { reruns: 1 }
        } else {
            let reruns = triage.flaky_reruns.max(1);
            let mut reproduced = 0usize;
            for _ in 1..reruns {
                if rerun(tc, final_enabled) {
                    reproduced += 1;
                }
            }
            Determinism::Flaky { reproduced, reruns }
        };

        let minimized = if determinism.is_deterministic() && triage.minimize.max_oracle_runs > 0
        {
            let failing_step = match inconsistency {
                Inconsistency::InconsistentState { step, .. }
                | Inconsistency::MissingAction { step, .. }
                | Inconsistency::NodeDeath { step, .. }
                | Inconsistency::WatchdogTimeout { step, .. } => *step,
                Inconsistency::UnexpectedAction { .. } => tc.len(),
            };
            let out = minimize_case(graph, tc, failing_step, &triage.minimize, |candidate| {
                // Each candidate is graph-valid (the minimizer filters
                // first), so its own final-enabled set comes straight
                // from the graph.
                let Ok(nodes) = candidate.validate_against(graph) else {
                    return false;
                };
                let Some(&last) = nodes.last() else {
                    return false;
                };
                let enabled: Vec<ActionInstance> =
                    graph.enabled_at(last).into_iter().cloned().collect();
                rerun(candidate, &enabled)
            });
            out.record_obs(obs, tc.len());
            (out.case.len() < tc.len()).then_some(out.case)
        } else {
            None
        };
        (determinism, minimized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use crate::mapping::ActionBinding;
    use crate::sut::{ExecReport, Offer, Snapshot, SutError};
    use mocket_tla::{ActionClass, ActionDef, Value, VarClass, VarDef};

    /// Counter spec: Inc up to 2, Dec down to 0.
    struct CounterSpec;

    impl Spec for CounterSpec {
        fn name(&self) -> &str {
            "Counter"
        }
        fn variables(&self) -> Vec<VarDef> {
            vec![VarDef::new("n", VarClass::StateRelated)]
        }
        fn init_states(&self) -> Vec<State> {
            vec![State::from_pairs([("n", Value::Int(0))])]
        }
        fn actions(&self) -> Vec<ActionDef> {
            vec![
                ActionDef::nullary("Inc", ActionClass::SingleNode, |s| {
                    let n = s.expect("n").expect_int();
                    (n < 2).then(|| s.with("n", Value::Int(n + 1)))
                }),
                ActionDef::nullary("Dec", ActionClass::SingleNode, |s| {
                    let n = s.expect("n").expect_int();
                    (n > 0).then(|| s.with("n", Value::Int(n - 1)))
                }),
            ]
        }
    }

    /// A counter implementation with an optional off-by-one bug.
    struct CounterSut {
        n: i64,
        buggy: bool,
    }

    impl SystemUnderTest for CounterSut {
        fn deploy(&mut self) -> Result<(), SutError> {
            self.n = 0;
            Ok(())
        }
        fn teardown(&mut self) {}
        fn offers(&mut self) -> Result<Vec<Offer>, SutError> {
            let mut v = Vec::new();
            if self.n < 2 {
                v.push(Offer {
                    node: 1,
                    action: ActionInstance::nullary("inc"),
                });
            }
            if self.n > 0 {
                v.push(Offer {
                    node: 1,
                    action: ActionInstance::nullary("dec"),
                });
            }
            Ok(v)
        }
        fn execute(&mut self, offer: &Offer) -> Result<ExecReport, SutError> {
            match offer.action.name.as_str() {
                "inc" => self.n += if self.buggy && self.n == 1 { 2 } else { 1 },
                "dec" => self.n -= 1,
                _ => unreachable!(),
            }
            Ok(ExecReport::default())
        }
        fn execute_external(&mut self, _: &ActionInstance) -> Result<ExecReport, SutError> {
            unreachable!()
        }
        fn snapshot(&mut self) -> Result<Snapshot, SutError> {
            Ok(Snapshot::from_pairs([("count", Value::Int(self.n))]))
        }
    }

    fn registry() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.map_class_field("n", "count")
            .map_action("Inc", "inc", ActionClass::SingleNode, ActionBinding::Method)
            .map_action("Dec", "dec", ActionClass::SingleNode, ActionBinding::Method);
        r
    }

    #[test]
    fn mapping_issues_fail_fast() {
        let err = Pipeline::new(
            Arc::new(CounterSpec),
            MappingRegistry::new(),
            PipelineConfig::default(),
        )
        .err()
        .expect("must fail");
        assert!(!err.is_empty());
    }

    #[test]
    fn conformant_implementation_passes_all_cases() {
        let p =
            Pipeline::new(Arc::new(CounterSpec), registry(), PipelineConfig::default()).unwrap();
        let result = p
            .run(|| Box::new(CounterSut { n: 0, buggy: false }));
        assert!(result.reports.is_empty(), "{:?}", result.reports);
        assert_eq!(result.passed, result.effort.cases_run);
        assert!(result.effort.states >= 3);
        assert!(result.effort.paths_ec >= result.effort.paths_ec_por);
    }

    #[test]
    fn buggy_implementation_is_caught() {
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p
            .run(|| Box::new(CounterSut { n: 0, buggy: true }));
        assert_eq!(result.reports.len(), 1);
        let report = &result.reports[0];
        assert_eq!(report.inconsistency.kind(), "Inconsistent state");
        assert_eq!(report.inconsistency.subject(), "n");
    }

    #[test]
    fn por_can_miss_bugs_hidden_in_dropped_schedules() {
        // §7.2: commutativity in the state graph does not imply
        // commutativity in the implementation. The counter bug only
        // fires on the Inc-at-1 schedule, which POR happens to drop
        // here — the conformance run passes even though the
        // implementation is buggy.
        let p =
            Pipeline::new(Arc::new(CounterSpec), registry(), PipelineConfig::default()).unwrap();
        let result = p
            .run(|| Box::new(CounterSut { n: 0, buggy: true }));
        assert!(result.reports.is_empty());
    }

    #[test]
    fn por_flag_reduces_case_count() {
        let with_por =
            Pipeline::new(Arc::new(CounterSpec), registry(), PipelineConfig::default()).unwrap();
        let (graph, _) = with_por.check();
        let (_, ec, ec_por, _) = with_por.generate(&graph);
        assert!(ec_por <= ec);
    }

    #[test]
    fn max_test_cases_truncates() {
        let mut cfg = PipelineConfig::default();
        cfg.max_test_cases = 1;
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p
            .run(|| Box::new(CounterSut { n: 0, buggy: false }));
        assert_eq!(result.effort.cases_run, 1);
    }

    /// Delegates to a [`CounterSut`] but fails deployment on demand —
    /// stands in for a flaky testbed (port exhaustion, slow teardown).
    struct FlakySut {
        inner: CounterSut,
        fail_deploy: bool,
    }

    impl SystemUnderTest for FlakySut {
        fn deploy(&mut self) -> Result<(), SutError> {
            if self.fail_deploy {
                return Err(SutError::Deploy("testbed hiccup".into()));
            }
            self.inner.deploy()
        }
        fn teardown(&mut self) {
            self.inner.teardown()
        }
        fn offers(&mut self) -> Result<Vec<Offer>, SutError> {
            self.inner.offers()
        }
        fn execute(&mut self, offer: &Offer) -> Result<ExecReport, SutError> {
            self.inner.execute(offer)
        }
        fn execute_external(&mut self, a: &ActionInstance) -> Result<ExecReport, SutError> {
            self.inner.execute_external(a)
        }
        fn snapshot(&mut self) -> Result<Snapshot, SutError> {
            self.inner.snapshot()
        }
    }

    #[test]
    fn transient_deploy_failure_is_retried_not_fatal() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut cfg = PipelineConfig::default();
        cfg.retry = RetryPolicy {
            attempts: 2,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let made = AtomicUsize::new(0);
        // Only the very first deployed cluster fails; the retry and
        // every later case succeed.
        let result = p.run(|| {
            let k = made.fetch_add(1, Ordering::SeqCst);
            Box::new(FlakySut {
                inner: CounterSut { n: 0, buggy: false },
                fail_deploy: k == 0,
            })
        });
        assert!(result.quarantined.is_empty(), "{:?}", result.quarantined);
        assert!(result.reports.is_empty());
        assert_eq!(result.passed, result.effort.cases_run);
        assert!(result.passed > 0);
    }

    #[test]
    fn persistent_failure_is_quarantined_with_attempt_history() {
        let mut cfg = PipelineConfig::default();
        cfg.retry = RetryPolicy {
            attempts: 3,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p.run(|| {
            Box::new(FlakySut {
                inner: CounterSut { n: 0, buggy: false },
                fail_deploy: true,
            })
        });
        // Every case exhausted its budget; none reached a verdict,
        // none aborted the campaign.
        assert_eq!(result.quarantined.len(), result.cases_selected);
        assert_eq!(result.effort.cases_run, 0);
        assert!(result.reports.is_empty());
        for q in &result.quarantined {
            assert_eq!(q.attempts.len(), 3);
            assert!(q.attempts[0].error.contains("testbed hiccup"));
        }
    }

    #[test]
    fn bug_reports_record_the_revealing_attempt() {
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        cfg.retry = RetryPolicy::none();
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p.run(|| Box::new(CounterSut { n: 0, buggy: true }));
        assert_eq!(result.reports.len(), 1);
        assert_eq!(result.reports[0].attempt, 1);
    }

    fn temp_campaign_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mocket-pipeline-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn deterministic_failures_are_confirmed_and_minimized() {
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p.run(|| Box::new(CounterSut { n: 0, buggy: true }));
        assert_eq!(result.reports.len(), 1);
        let report = &result.reports[0];
        assert!(
            report.determinism.is_deterministic(),
            "{:?}",
            report.determinism
        );
        if let Some(min) = &report.minimized {
            assert!(min.len() < report.test_case.len());
            assert!(min.validate_against(&result.graph).is_ok());
        }
    }

    #[test]
    fn triage_off_leaves_failures_unconfirmed() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        cfg.triage = TriageConfig::off();
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let made = AtomicUsize::new(0);
        let result = p.run(|| {
            made.fetch_add(1, Ordering::SeqCst);
            Box::new(CounterSut { n: 0, buggy: true })
        });
        assert_eq!(result.reports.len(), 1);
        assert_eq!(result.reports[0].determinism, Determinism::Unconfirmed);
        assert!(result.reports[0].minimized.is_none());
        // One deployment per case up to the revealing one — no
        // confirmation or shrinking re-runs.
        assert_eq!(made.load(Ordering::SeqCst), result.effort.cases_run);
    }

    #[test]
    fn confirmed_failures_emit_replay_artifacts() {
        let dir = temp_campaign_dir("artifacts");
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        cfg.triage.campaign_dir = Some(dir.clone());
        cfg.triage.spec_config = "buggy counter".into();
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p.run(|| Box::new(CounterSut { n: 0, buggy: true }));
        assert_eq!(result.artifacts.len(), 1, "{:?}", result.journal_issues);
        let artifact = crate::artifact::ReplayArtifact::load(&result.artifacts[0]).unwrap();
        let report = &result.reports[0];
        assert_eq!(artifact.kind, report.inconsistency.kind());
        assert_eq!(artifact.spec, "Counter");
        assert_eq!(artifact.spec_config, "buggy counter");
        assert_eq!(artifact.original_len, report.test_case.len());
        assert!(artifact.test_case.len() <= report.test_case.len());
        // The stored reproducer replays to the same verdict in a
        // fresh SUT.
        let mut sut = CounterSut { n: 0, buggy: true };
        let (verdict, _) = crate::artifact::replay(&artifact, &mut sut, &registry()).unwrap();
        assert!(verdict.reproduced(), "{verdict:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bug_reports_carry_divergence_explanations() {
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p.run(|| Box::new(CounterSut { n: 0, buggy: true }));
        assert_eq!(result.reports.len(), 1);
        let report = &result.reports[0];
        let explanation = report
            .explanation
            .as_ref()
            .expect("inconsistent-state report must carry an explanation");
        assert!(!explanation.diffs.is_empty(), "per-variable diff missing");
        assert!(explanation.diffs.iter().any(|d| d.path.starts_with('n')));
        // The buggy counter jumps 1 -> 3 while the spec caps at 2, so
        // no verified state matches the observed value.
        let rendered = report.to_string();
        assert!(rendered.contains("Explanation:"), "{rendered}");
    }

    #[test]
    fn campaign_writes_insight_artifacts() {
        let dir = temp_campaign_dir("insight");
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        cfg.triage.campaign_dir = Some(dir.clone());
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p.run(|| Box::new(CounterSut { n: 0, buggy: false }));
        assert!(result.reports.is_empty());
        // Full campaign, no POR: every edge is covered, the frontier
        // is empty.
        assert_eq!(result.coverage.uncovered_edges(), Vec::<usize>::new());
        assert!(result.frontier.is_empty(), "{:?}", result.frontier);

        let cov = std::fs::read_to_string(dir.join(COVERAGE_FILE_NAME)).unwrap();
        assert!(cov.contains("\"edges_covered\""));
        let listing = std::fs::read_to_string(dir.join(UNCOVERED_FILE_NAME)).unwrap();
        assert_eq!(
            mocket_obs::parse_uncovered_listing(&listing).unwrap(),
            Vec::<usize>::new()
        );
        let dot = std::fs::read_to_string(dir.join(COVERAGE_DOT_FILE_NAME)).unwrap();
        assert!(dot.contains("coverage overlay"));
        // The overlay is a valid importable DOT document.
        assert!(mocket_checker::from_dot(&dot).is_ok());
        let history = mocket_obs::CampaignHistory::open(&dir).unwrap();
        assert_eq!(history.records().len(), 1);
        assert_eq!(history.records()[0].spec, "Counter");
        assert_eq!(history.records()[0].uncovered_frontier_edges, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_campaign_reports_frontier_and_feeds_priority() {
        let dir = temp_campaign_dir("frontier");
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        cfg.max_test_cases = 1;
        cfg.max_path_len = 1;
        cfg.triage.campaign_dir = Some(dir.clone());
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p.run(|| Box::new(CounterSut { n: 0, buggy: false }));
        assert!(
            !result.frontier.is_empty(),
            "a truncated campaign must expose an uncovered frontier"
        );
        // The listing round-trips into the next run's priority set.
        let listing = std::fs::read_to_string(dir.join(UNCOVERED_FILE_NAME)).unwrap();
        let priority = mocket_obs::parse_uncovered_listing(&listing).unwrap();
        assert!(!priority.is_empty());
        let _ = std::fs::remove_dir_all(&dir);

        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        cfg.priority_edges = priority.clone();
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let full = p.run(|| Box::new(CounterSut { n: 0, buggy: false }));
        // With the frontier prioritized and no truncation, the next
        // campaign covers those edges.
        for e in priority {
            assert!(full.coverage.hit(e) > 0, "priority edge {e} still uncovered");
        }
    }

    /// Panics in the middle of the first executed action — stands in
    /// for application code blowing up under the harness.
    struct PanickingSut;

    impl SystemUnderTest for PanickingSut {
        fn deploy(&mut self) -> Result<(), SutError> {
            Ok(())
        }
        fn teardown(&mut self) {}
        fn offers(&mut self) -> Result<Vec<Offer>, SutError> {
            Ok(vec![Offer {
                node: 1,
                action: ActionInstance::nullary("inc"),
            }])
        }
        fn execute(&mut self, _: &Offer) -> Result<ExecReport, SutError> {
            panic!("application code exploded");
        }
        fn execute_external(&mut self, _: &ActionInstance) -> Result<ExecReport, SutError> {
            unreachable!()
        }
        fn snapshot(&mut self) -> Result<Snapshot, SutError> {
            Ok(Snapshot::from_pairs([("count", Value::Int(0))]))
        }
    }

    #[test]
    fn panicking_case_still_lands_its_buffered_events() {
        let dir = temp_campaign_dir("panic-flush");
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        cfg.obs = mocket_obs::Obs::jsonl_in(&dir).unwrap();
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.run(|| Box::new(PanickingSut))
        }));
        assert!(outcome.is_err(), "the SUT panic must propagate");
        // The case.start event was buffered (< 64 events) when the
        // panic unwound the pipeline; the catch_unwind flush must have
        // landed it on disk anyway.
        let events =
            std::fs::read_to_string(dir.join(mocket_obs::EVENTS_FILE_NAME)).unwrap();
        assert!(
            events.contains("\"event\":\"case.start\""),
            "buffered events lost on unwind: {events}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_campaign_resumes_from_journal() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = temp_campaign_dir("resume");

        // Straight-through baseline (no journal) for the totals.
        let mut base_cfg = PipelineConfig::default();
        base_cfg.por = false;
        base_cfg.max_path_len = 3;
        let baseline = Pipeline::new(Arc::new(CounterSpec), registry(), base_cfg)
            .unwrap()
            .run(|| Box::new(CounterSut { n: 0, buggy: false }));
        let interrupted_at = 1usize;
        assert!(baseline.effort.cases_run > interrupted_at);

        // "Interrupted" campaign: same ordering, stops early.
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        cfg.max_path_len = 3;
        cfg.max_test_cases = interrupted_at;
        cfg.triage.campaign_dir = Some(dir.clone());
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let first = p.run(|| Box::new(CounterSut { n: 0, buggy: false }));
        assert_eq!(first.effort.cases_run, interrupted_at);
        assert_eq!(first.skipped_from_journal, 0);

        // Resume with the full case set and the same campaign dir:
        // the completed cases are skipped, the totals match the
        // straight-through run.
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        cfg.max_path_len = 3;
        cfg.triage.campaign_dir = Some(dir.clone());
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let deployed = AtomicUsize::new(0);
        let resumed = p.run(|| {
            deployed.fetch_add(1, Ordering::SeqCst);
            Box::new(CounterSut { n: 0, buggy: false })
        });
        assert_eq!(resumed.skipped_from_journal, interrupted_at);
        assert_eq!(resumed.effort.cases_run, baseline.effort.cases_run);
        assert_eq!(resumed.passed, baseline.passed);
        assert_eq!(
            deployed.load(Ordering::SeqCst),
            baseline.effort.cases_run - interrupted_at,
            "resumed campaign must not redeploy finished cases"
        );
        assert!(resumed.journal_issues.is_empty(), "{:?}", resumed.journal_issues);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
