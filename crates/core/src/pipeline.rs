//! The end-to-end Mocket pipeline (Figure 3).
//!
//! ① map the specification (a [`MappingRegistry`]), ② model-check it
//! into a state-space graph, ③ generate test cases by edge-coverage
//! traversal with optional partial-order reduction, ④ run controlled
//! testing against the system under test, collecting bug reports.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mocket_tla::{ActionInstance, Spec, State};

use mocket_checker::{ModelChecker, StateGraph};

use crate::mapping::{MappingIssue, MappingRegistry};
use crate::por::partial_order_reduction;
use crate::report::{BugClass, BugReport, Inconsistency};
use crate::runner::{run_test_case, RunConfig, TestOutcome};
use crate::sut::SystemUnderTest;
use crate::testcase::TestCase;
use crate::traversal::{edge_coverage_paths, TraversalConfig};

/// Per-case retry policy for transient harness failures.
///
/// A campaign of thousands of deploy/run/teardown cycles will hit
/// occasional environmental hiccups (a deploy that loses the race
/// with teardown of the previous cluster, a dropped control channel).
/// Those are not findings about the system under test; each case gets
/// a small attempt budget, and only cases that fail *persistently*
/// for harness-side reasons are quarantined.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum attempts per test case (>= 1).
    pub attempts: usize,
    /// Sleep before each retry, doubled per further attempt.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 2,
            backoff: Duration::from_millis(25),
        }
    }
}

impl RetryPolicy {
    /// No retries: every transient failure quarantines immediately.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

/// One failed attempt at running a test case.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// What went wrong, rendered for the report.
    pub error: String,
    /// Wall-clock duration of the attempt in seconds.
    pub seconds: f64,
}

/// A test case the pipeline gave up on for harness-side reasons: it
/// neither passed nor produced a verdict about the implementation.
/// Quarantined cases are surfaced in the result so a campaign summary
/// can never silently under-report coverage.
#[derive(Debug, Clone)]
pub struct QuarantinedCase {
    /// The case that could not be driven to a verdict.
    pub test_case: TestCase,
    /// Every attempt, in order.
    pub attempts: Vec<AttemptRecord>,
}

/// Pipeline configuration.
pub struct PipelineConfig {
    /// Bound on distinct states during model checking.
    pub max_states: usize,
    /// Apply partial-order reduction before traversal.
    pub por: bool,
    /// End-state predicate for the traversal (developer-specified).
    pub end_state: Option<Arc<dyn Fn(&State) -> bool + Send + Sync>>,
    /// Developer-specified test-case filter (the §4.2.1 idea of
    /// focusing testing, applied to whole cases): receives the case's
    /// action-name sequence; only matching cases are executed (and
    /// materialized). `None` runs everything.
    pub case_filter: Option<Arc<dyn Fn(&[&str]) -> bool + Send + Sync>>,
    /// Cap on generated test cases actually run (0 = all).
    pub max_test_cases: usize,
    /// Cap on a single test case's length (0 = unbounded). Real
    /// deployments always bound this — an unbounded DFS descent
    /// through a cyclic state graph yields arbitrarily long walks.
    pub max_path_len: usize,
    /// Stop at the first bug report.
    pub stop_at_first_bug: bool,
    /// Controlled-run configuration.
    pub run: RunConfig,
    /// Retry policy for transient harness failures.
    pub retry: RetryPolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            max_states: 1_000_000,
            por: true,
            end_state: None,
            case_filter: None,
            max_test_cases: 0,
            max_path_len: 0,
            stop_at_first_bug: true,
            run: RunConfig::default(),
            retry: RetryPolicy::default(),
        }
    }
}

/// Table 3-style effort numbers for one system.
#[derive(Debug, Clone, Default)]
pub struct TestingEffort {
    /// Distinct states in the state-space graph (`State` column).
    pub states: usize,
    /// Edges in the graph.
    pub edges: usize,
    /// Paths generated with edge coverage only (`PathEC`).
    pub paths_ec: usize,
    /// Paths with edge coverage + POR (`PathEC+POR`).
    pub paths_ec_por: usize,
    /// Edges excluded by POR.
    pub por_excluded_edges: usize,
    /// Test cases actually executed.
    pub cases_run: usize,
    /// Total controlled-testing time in seconds (`Time`).
    pub test_seconds: f64,
    /// Model-checking time in seconds.
    pub check_seconds: f64,
}

impl TestingEffort {
    /// Fraction of EC paths removed by POR (the paper reports 87% for
    /// ZooKeeper).
    pub fn por_reduction(&self) -> f64 {
        if self.paths_ec == 0 {
            0.0
        } else {
            1.0 - self.paths_ec_por as f64 / self.paths_ec as f64
        }
    }
}

/// Result of a full pipeline run.
pub struct PipelineResult {
    /// The state-space graph from model checking.
    pub graph: StateGraph,
    /// Number of test cases selected for execution (cases are
    /// materialized lazily, one at a time; revealing cases are kept
    /// inside their bug reports).
    pub cases_selected: usize,
    /// Bug reports from controlled testing.
    pub reports: Vec<BugReport>,
    /// Cases abandoned for harness-side reasons after exhausting
    /// their attempt budget (neither passed nor failed).
    pub quarantined: Vec<QuarantinedCase>,
    /// Effort statistics.
    pub effort: TestingEffort,
    /// Test cases that passed.
    pub passed: usize,
}

/// The Mocket pipeline for one specification + mapping + target.
pub struct Pipeline {
    spec: Arc<dyn Spec>,
    registry: MappingRegistry,
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline; fails fast on mapping issues (§5.4's
    /// developer errors are caught before any testing time is spent).
    pub fn new(
        spec: Arc<dyn Spec>,
        registry: MappingRegistry,
        config: PipelineConfig,
    ) -> Result<Self, Vec<MappingIssue>> {
        let issues = registry.validate(spec.as_ref());
        if issues.is_empty() {
            Ok(Pipeline {
                spec,
                registry,
                config,
            })
        } else {
            Err(issues)
        }
    }

    /// The mapping registry.
    pub fn registry(&self) -> &MappingRegistry {
        &self.registry
    }

    /// Stage ②: model checking.
    pub fn check(&self) -> (StateGraph, f64) {
        let start = Instant::now();
        let result = ModelChecker::new(self.spec.clone())
            .max_states(self.config.max_states)
            .run();
        (result.graph, start.elapsed().as_secs_f64())
    }

    /// Stage ③ (path form): selected edge paths plus
    /// `(paths_ec, paths_ec_por, excluded_edges)`. Test cases are
    /// materialized from paths lazily — a large model's full case set
    /// does not fit in memory as states.
    pub fn generate_paths(
        &self,
        graph: &StateGraph,
    ) -> (Vec<Vec<mocket_checker::EdgeId>>, usize, usize, usize) {
        // Plain edge coverage (for the Table 3 comparison).
        let mut plain = TraversalConfig::default();
        plain.max_path_len = self.config.max_path_len;
        if let Some(end) = self.config.end_state.clone() {
            plain = plain.with_end_state(move |s| end(s));
        }
        let ec = edge_coverage_paths(graph, &plain);

        let por = partial_order_reduction(graph);
        let por_excluded = por.excluded_edges.len();
        let mut reduced_cfg = TraversalConfig::default().with_excluded_edges(por.excluded_edges);
        reduced_cfg.max_path_len = self.config.max_path_len;
        if let Some(end) = self.config.end_state.clone() {
            reduced_cfg = reduced_cfg.with_end_state(move |s| end(s));
        }
        let reduced = edge_coverage_paths(graph, &reduced_cfg);

        let ec_count = ec.paths.len();
        let reduced_count = reduced.paths.len();
        let chosen = if self.config.por { reduced } else { ec };
        // Filter on cheap action-name views; cases are materialized
        // later, one at a time.
        let mut selected: Vec<Vec<mocket_checker::EdgeId>> = chosen
            .paths
            .into_iter()
            .filter(|p| match &self.config.case_filter {
                None => true,
                Some(filter) => {
                    let names: Vec<&str> = p
                        .iter()
                        .map(|&e| graph.edge(e).action.name.as_str())
                        .collect();
                    filter(&names)
                }
            })
            .collect();
        if self.config.max_test_cases != 0 && selected.len() > self.config.max_test_cases {
            selected.truncate(self.config.max_test_cases);
        }
        (selected, ec_count, reduced_count, por_excluded)
    }

    /// Stage ③ (materialized form, for small models and the examples):
    /// the selected test cases plus `(paths_ec, paths_ec_por,
    /// excluded_edges)`.
    pub fn generate(&self, graph: &StateGraph) -> (Vec<TestCase>, usize, usize, usize) {
        let (paths, ec, ecpor, excl) = self.generate_paths(graph);
        let cases = paths
            .iter()
            .map(|p| TestCase::from_edge_path(graph, p))
            .collect();
        (cases, ec, ecpor, excl)
    }

    /// Stage ④: controlled testing of the generated cases.
    ///
    /// `make_sut` deploys a fresh system per call; a new cluster is
    /// used for every test case (§4.3.2).
    ///
    /// The campaign always runs to completion (or to
    /// `stop_at_first_bug`): a single misbehaving case can no longer
    /// abort the whole run. Transient harness failures are retried
    /// per [`RetryPolicy`]; cases that stay undrivable are
    /// quarantined with their attempt history.
    pub fn run<F>(&self, mut make_sut: F) -> PipelineResult
    where
        F: FnMut() -> Box<dyn SystemUnderTest>,
    {
        let (graph, check_seconds) = self.check();
        let (paths, paths_ec, paths_ec_por, por_excluded) = self.generate_paths(&graph);
        let cases_selected = paths.len();

        let mut reports = Vec::new();
        let mut quarantined = Vec::new();
        let mut passed = 0usize;
        let test_start = Instant::now();
        let mut cases_run = 0usize;

        'cases: for path in &paths {
            // Materialize one case at a time.
            let tc = TestCase::from_edge_path(&graph, path);
            let final_node = graph.edge(*path.last().expect("non-empty path")).to;
            let final_enabled: Vec<ActionInstance> =
                graph.enabled_at(final_node).into_iter().cloned().collect();

            let max_attempts = self.config.retry.attempts.max(1);
            let mut attempts: Vec<AttemptRecord> = Vec::new();
            let mut verdict_reached = false;
            for attempt in 1..=max_attempts {
                if attempt > 1 {
                    // Exponential backoff: transient conditions (a
                    // slow teardown, an exhausted port) need time.
                    let exp = (attempt - 2).min(16) as u32;
                    std::thread::sleep(self.config.retry.backoff * 2u32.pow(exp));
                }
                let mut sut = make_sut();
                match run_test_case(
                    sut.as_mut(),
                    &tc,
                    &self.registry,
                    &final_enabled,
                    &self.config.run,
                ) {
                    Ok((outcome, stats)) => {
                        verdict_reached = true;
                        cases_run += 1;
                        match outcome {
                            TestOutcome::Passed => passed += 1,
                            TestOutcome::Failed(inconsistency) => {
                                // A node death before any action ran is a
                                // deploy-time accident, not a verdict about
                                // this schedule: retry it like a harness
                                // failure.
                                let premature_death = matches!(
                                    inconsistency,
                                    Inconsistency::NodeDeath { .. }
                                ) && stats.actions_executed == 0;
                                if premature_death && attempt < max_attempts {
                                    attempts.push(AttemptRecord {
                                        error: format!(
                                            "{}",
                                            inconsistency
                                        )
                                        .trim_end()
                                        .to_string(),
                                        seconds: stats.seconds,
                                    });
                                    verdict_reached = false;
                                    cases_run -= 1;
                                    continue;
                                }
                                reports.push(BugReport {
                                    inconsistency,
                                    test_case: tc.clone(),
                                    actions_executed: stats.actions_executed,
                                    elapsed: test_start.elapsed(),
                                    attempt,
                                    class: BugClass::Unclassified,
                                });
                                if self.config.stop_at_first_bug {
                                    break 'cases;
                                }
                            }
                        }
                        break;
                    }
                    Err(err) => {
                        // Harness-side failure (deploy, external
                        // script, control channel): retry, then
                        // quarantine.
                        attempts.push(AttemptRecord {
                            error: err.to_string(),
                            seconds: 0.0,
                        });
                    }
                }
            }
            if !verdict_reached {
                quarantined.push(QuarantinedCase {
                    test_case: tc,
                    attempts: std::mem::take(&mut attempts),
                });
            }
        }

        let effort = TestingEffort {
            states: graph.state_count(),
            edges: graph.edge_count(),
            paths_ec,
            paths_ec_por,
            por_excluded_edges: por_excluded,
            cases_run,
            test_seconds: test_start.elapsed().as_secs_f64(),
            check_seconds,
        };

        PipelineResult {
            graph,
            cases_selected,
            reports,
            quarantined,
            effort,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ActionBinding;
    use crate::sut::{ExecReport, Offer, Snapshot, SutError};
    use mocket_tla::{ActionClass, ActionDef, Value, VarClass, VarDef};

    /// Counter spec: Inc up to 2, Dec down to 0.
    struct CounterSpec;

    impl Spec for CounterSpec {
        fn name(&self) -> &str {
            "Counter"
        }
        fn variables(&self) -> Vec<VarDef> {
            vec![VarDef::new("n", VarClass::StateRelated)]
        }
        fn init_states(&self) -> Vec<State> {
            vec![State::from_pairs([("n", Value::Int(0))])]
        }
        fn actions(&self) -> Vec<ActionDef> {
            vec![
                ActionDef::nullary("Inc", ActionClass::SingleNode, |s| {
                    let n = s.expect("n").expect_int();
                    (n < 2).then(|| s.with("n", Value::Int(n + 1)))
                }),
                ActionDef::nullary("Dec", ActionClass::SingleNode, |s| {
                    let n = s.expect("n").expect_int();
                    (n > 0).then(|| s.with("n", Value::Int(n - 1)))
                }),
            ]
        }
    }

    /// A counter implementation with an optional off-by-one bug.
    struct CounterSut {
        n: i64,
        buggy: bool,
    }

    impl SystemUnderTest for CounterSut {
        fn deploy(&mut self) -> Result<(), SutError> {
            self.n = 0;
            Ok(())
        }
        fn teardown(&mut self) {}
        fn offers(&mut self) -> Result<Vec<Offer>, SutError> {
            let mut v = Vec::new();
            if self.n < 2 {
                v.push(Offer {
                    node: 1,
                    action: ActionInstance::nullary("inc"),
                });
            }
            if self.n > 0 {
                v.push(Offer {
                    node: 1,
                    action: ActionInstance::nullary("dec"),
                });
            }
            Ok(v)
        }
        fn execute(&mut self, offer: &Offer) -> Result<ExecReport, SutError> {
            match offer.action.name.as_str() {
                "inc" => self.n += if self.buggy && self.n == 1 { 2 } else { 1 },
                "dec" => self.n -= 1,
                _ => unreachable!(),
            }
            Ok(ExecReport::default())
        }
        fn execute_external(&mut self, _: &ActionInstance) -> Result<ExecReport, SutError> {
            unreachable!()
        }
        fn snapshot(&mut self) -> Result<Snapshot, SutError> {
            Ok(Snapshot::from_pairs([("count", Value::Int(self.n))]))
        }
    }

    fn registry() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.map_class_field("n", "count")
            .map_action("Inc", "inc", ActionClass::SingleNode, ActionBinding::Method)
            .map_action("Dec", "dec", ActionClass::SingleNode, ActionBinding::Method);
        r
    }

    #[test]
    fn mapping_issues_fail_fast() {
        let err = Pipeline::new(
            Arc::new(CounterSpec),
            MappingRegistry::new(),
            PipelineConfig::default(),
        )
        .err()
        .expect("must fail");
        assert!(!err.is_empty());
    }

    #[test]
    fn conformant_implementation_passes_all_cases() {
        let p =
            Pipeline::new(Arc::new(CounterSpec), registry(), PipelineConfig::default()).unwrap();
        let result = p
            .run(|| Box::new(CounterSut { n: 0, buggy: false }));
        assert!(result.reports.is_empty(), "{:?}", result.reports);
        assert_eq!(result.passed, result.effort.cases_run);
        assert!(result.effort.states >= 3);
        assert!(result.effort.paths_ec >= result.effort.paths_ec_por);
    }

    #[test]
    fn buggy_implementation_is_caught() {
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p
            .run(|| Box::new(CounterSut { n: 0, buggy: true }));
        assert_eq!(result.reports.len(), 1);
        let report = &result.reports[0];
        assert_eq!(report.inconsistency.kind(), "Inconsistent state");
        assert_eq!(report.inconsistency.subject(), "n");
    }

    #[test]
    fn por_can_miss_bugs_hidden_in_dropped_schedules() {
        // §7.2: commutativity in the state graph does not imply
        // commutativity in the implementation. The counter bug only
        // fires on the Inc-at-1 schedule, which POR happens to drop
        // here — the conformance run passes even though the
        // implementation is buggy.
        let p =
            Pipeline::new(Arc::new(CounterSpec), registry(), PipelineConfig::default()).unwrap();
        let result = p
            .run(|| Box::new(CounterSut { n: 0, buggy: true }));
        assert!(result.reports.is_empty());
    }

    #[test]
    fn por_flag_reduces_case_count() {
        let with_por =
            Pipeline::new(Arc::new(CounterSpec), registry(), PipelineConfig::default()).unwrap();
        let (graph, _) = with_por.check();
        let (_, ec, ec_por, _) = with_por.generate(&graph);
        assert!(ec_por <= ec);
    }

    #[test]
    fn max_test_cases_truncates() {
        let mut cfg = PipelineConfig::default();
        cfg.max_test_cases = 1;
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p
            .run(|| Box::new(CounterSut { n: 0, buggy: false }));
        assert_eq!(result.effort.cases_run, 1);
    }

    /// Delegates to a [`CounterSut`] but fails deployment on demand —
    /// stands in for a flaky testbed (port exhaustion, slow teardown).
    struct FlakySut {
        inner: CounterSut,
        fail_deploy: bool,
    }

    impl SystemUnderTest for FlakySut {
        fn deploy(&mut self) -> Result<(), SutError> {
            if self.fail_deploy {
                return Err(SutError::Deploy("testbed hiccup".into()));
            }
            self.inner.deploy()
        }
        fn teardown(&mut self) {
            self.inner.teardown()
        }
        fn offers(&mut self) -> Result<Vec<Offer>, SutError> {
            self.inner.offers()
        }
        fn execute(&mut self, offer: &Offer) -> Result<ExecReport, SutError> {
            self.inner.execute(offer)
        }
        fn execute_external(&mut self, a: &ActionInstance) -> Result<ExecReport, SutError> {
            self.inner.execute_external(a)
        }
        fn snapshot(&mut self) -> Result<Snapshot, SutError> {
            self.inner.snapshot()
        }
    }

    #[test]
    fn transient_deploy_failure_is_retried_not_fatal() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut cfg = PipelineConfig::default();
        cfg.retry = RetryPolicy {
            attempts: 2,
            backoff: Duration::ZERO,
        };
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let made = AtomicUsize::new(0);
        // Only the very first deployed cluster fails; the retry and
        // every later case succeed.
        let result = p.run(|| {
            let k = made.fetch_add(1, Ordering::SeqCst);
            Box::new(FlakySut {
                inner: CounterSut { n: 0, buggy: false },
                fail_deploy: k == 0,
            })
        });
        assert!(result.quarantined.is_empty(), "{:?}", result.quarantined);
        assert!(result.reports.is_empty());
        assert_eq!(result.passed, result.effort.cases_run);
        assert!(result.passed > 0);
    }

    #[test]
    fn persistent_failure_is_quarantined_with_attempt_history() {
        let mut cfg = PipelineConfig::default();
        cfg.retry = RetryPolicy {
            attempts: 3,
            backoff: Duration::ZERO,
        };
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p.run(|| {
            Box::new(FlakySut {
                inner: CounterSut { n: 0, buggy: false },
                fail_deploy: true,
            })
        });
        // Every case exhausted its budget; none reached a verdict,
        // none aborted the campaign.
        assert_eq!(result.quarantined.len(), result.cases_selected);
        assert_eq!(result.effort.cases_run, 0);
        assert!(result.reports.is_empty());
        for q in &result.quarantined {
            assert_eq!(q.attempts.len(), 3);
            assert!(q.attempts[0].error.contains("testbed hiccup"));
        }
    }

    #[test]
    fn bug_reports_record_the_revealing_attempt() {
        let mut cfg = PipelineConfig::default();
        cfg.por = false;
        cfg.retry = RetryPolicy::none();
        let p = Pipeline::new(Arc::new(CounterSpec), registry(), cfg).unwrap();
        let result = p.run(|| Box::new(CounterSut { n: 0, buggy: true }));
        assert_eq!(result.reports.len(), 1);
        assert_eq!(result.reports[0].attempt, 1);
    }
}
