//! The system-under-test interface.
//!
//! The testbed drives a target distributed system through this trait:
//! it polls the blocked action notifications (offers), releases the
//! one matching the scheduled step, triggers external faults and user
//! requests, and collects runtime state snapshots. Target systems
//! (AsyncRaft, SyncRaft, ZabKeeper) implement it on top of the
//! `mocket-dsnet` cluster substrate.

use std::fmt;

use mocket_tla::{ActionInstance, Value};

/// A blocked action notification from one node (Figure 7's
/// `notifyAndBlock`): the node has encountered the action and waits
/// for the scheduler's reply.
///
/// Names and parameter values are in the *implementation* domain; the
/// mapping registry translates them before matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Offer {
    /// The notifying node's identifier.
    pub node: u64,
    /// The implementation-side action (name + collected parameters).
    pub action: ActionInstance,
}

impl fmt::Display for Offer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {}: {}", self.node, self.action)
    }
}

/// A message-pool event reported by an executed action (§4.1.1's
/// message-related variable maintenance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgEvent {
    /// `Action.getMsg` in a message-sending action: the message enters
    /// the pool.
    Send {
        /// Pool (message-related variable) name.
        pool: String,
        /// Message content in the implementation domain.
        msg: Value,
    },
    /// A message-receiving action consumed the message.
    Receive {
        /// Pool name.
        pool: String,
        /// Message content in the implementation domain.
        msg: Value,
    },
    /// A message-drop fault removed the message.
    Drop {
        /// Pool name.
        pool: String,
        /// Message content.
        msg: Value,
    },
    /// A message-duplicate fault added another copy.
    Duplicate {
        /// Pool name.
        pool: String,
        /// Message content.
        msg: Value,
    },
}

/// The runtime values of all mapped variables, aggregated across
/// nodes: implementation variable name → value (implementation
/// domain). Per-node variables are aggregated into functions
/// `node id → value` by the SUT adapter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `(impl variable name, impl-domain value)` pairs.
    pub vars: Vec<(String, Value)>,
}

impl Snapshot {
    /// Creates a snapshot from pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Snapshot {
            vars: pairs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// The value of an implementation variable, if collected.
    pub fn get(&self, impl_name: &str) -> Option<&Value> {
        self.vars
            .iter()
            .find(|(k, _)| k == impl_name)
            .map(|(_, v)| v)
    }
}

/// What executing one action produced.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Message-pool events (sends, receives, faults).
    pub msg_events: Vec<MsgEvent>,
}

/// Errors from driving the system under test.
#[derive(Debug, Clone)]
pub enum SutError {
    /// Deployment failed.
    Deploy(String),
    /// A node died or stopped responding outside a scheduled crash.
    NodeFailure {
        /// The failed node.
        node: u64,
        /// Description.
        message: String,
    },
    /// A node's application code crashed (panic or equivalent) while
    /// the harness was driving it. Unlike [`SutError::NodeFailure`],
    /// the death is attributable to the node's own logic — the runner
    /// classifies it as a crash-style inconsistency in the system
    /// under test, not as harness trouble.
    NodeDeath {
        /// The dead node.
        node: u64,
        /// Panic message or death diagnosis.
        reason: String,
    },
    /// An external action could not be triggered.
    External(String),
}

impl fmt::Display for SutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SutError::Deploy(m) => write!(f, "deployment failed: {m}"),
            SutError::NodeFailure { node, message } => {
                write!(f, "node {node} failed: {message}")
            }
            SutError::NodeDeath { node, reason } => {
                write!(f, "node {node} died: {reason}")
            }
            SutError::External(m) => write!(f, "external action failed: {m}"),
        }
    }
}

impl std::error::Error for SutError {}

/// Extracts the integer parameter `idx` of an external action as a
/// typed error instead of a panic.
///
/// External-action parameters arrive from the scheduler in the spec
/// domain; a malformed mapping (wrong arity, wrong type) used to
/// panic the harness mid-campaign. Drivers should use this and
/// [`record_int_field`] so a bad parameter surfaces as
/// [`SutError::External`] — one failed case, not a dead testbed.
pub fn int_param(action: &ActionInstance, idx: usize) -> Result<i64, SutError> {
    let param = action.params.get(idx).ok_or_else(|| {
        SutError::External(format!(
            "{}: missing parameter {idx} (got {} parameters)",
            action.name,
            action.params.len()
        ))
    })?;
    param.as_int().ok_or_else(|| {
        SutError::External(format!(
            "{}: parameter {idx} is not an integer: {param}",
            action.name
        ))
    })
}

/// Extracts an integer record field from a spec-domain value as a
/// typed error instead of a panic. See [`int_param`].
pub fn record_int_field(value: &Value, field: &str) -> Result<i64, SutError> {
    let v = value.field(field).ok_or_else(|| {
        SutError::External(format!("record {value} has no field {field:?}"))
    })?;
    v.as_int().ok_or_else(|| {
        SutError::External(format!("record field {field:?} is not an integer: {v}"))
    })
}

/// A deployable, controllable distributed system.
///
/// Mocket deploys a fresh cluster per test case (§4.3.2), so a typical
/// implementation spawns its nodes in [`deploy`](Self::deploy) and
/// kills them in [`teardown`](Self::teardown).
pub trait SystemUnderTest {
    /// Deploys a fresh cluster.
    fn deploy(&mut self) -> Result<(), SutError>;

    /// Tears the cluster down.
    fn teardown(&mut self);

    /// Collects the actions currently offered (blocked notifications)
    /// by all alive nodes. Idempotent: polling twice without an
    /// intervening execution returns the same offers.
    fn offers(&mut self) -> Result<Vec<Offer>, SutError>;

    /// Releases one offered action and waits for it to finish.
    fn execute(&mut self, offer: &Offer) -> Result<ExecReport, SutError>;

    /// Triggers an external-fault or user-request action (spec
    /// domain), e.g. `Crash(2)`, `Restart(1)`, `ClientRequest(1)`,
    /// `DropMessage(m)`.
    fn execute_external(&mut self, action: &ActionInstance) -> Result<ExecReport, SutError>;

    /// Collects the runtime values of every mapped variable.
    fn snapshot(&mut self) -> Result<Snapshot, SutError>;

    /// Installs a causal tracer so the SUT's internals (cluster, wire
    /// network) emit message-level trace events for the current case.
    /// The default is a no-op: targets that cannot trace simply stay
    /// silent and the trace still carries the scheduler-level events.
    fn install_tracer(&mut self, _tracer: &mocket_obs::causal::Tracer) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lookup() {
        let s = Snapshot::from_pairs([
            ("state", Value::str("STATE_LEADER")),
            ("term", Value::Int(2)),
        ]);
        assert_eq!(s.get("term"), Some(&Value::Int(2)));
        assert_eq!(s.get("nope"), None);
    }

    #[test]
    fn offer_display() {
        let o = Offer {
            node: 1,
            action: ActionInstance::nullary("becomeLeader"),
        };
        assert_eq!(o.to_string(), "node 1: becomeLeader");
    }

    #[test]
    fn sut_error_display() {
        let e = SutError::NodeFailure {
            node: 3,
            message: "panicked".into(),
        };
        assert!(e.to_string().contains("node 3"));
    }
}
