//! Delta-debugging schedule shrinking (failure triage).
//!
//! A confirmed-deterministic failure is only as useful as its
//! reproducer is small. The minimizer shortens a failing [`TestCase`]
//! in two phases:
//!
//! 1. **Drop-suffix** — steps after the failing one never ran, so the
//!    case is truncated right after the divergence.
//! 2. **ddmin over removable steps** — Zeller's delta debugging over
//!    the remaining steps: try removing ever-smaller chunks, keeping a
//!    candidate only if it (a) is still a valid path through the
//!    state-space graph ([`TestCase::validate_against`] — the cheap
//!    feasibility filter that makes the search graph-guided rather
//!    than blind) and (b) still reproduces the same inconsistency
//!    kind according to the caller's oracle.
//!
//! The graph filter matters: removing arbitrary steps from a path
//! almost never yields another path, but cycles (Inc/Dec detours,
//! heartbeat round trips) and commuting segments do drop out, which is
//! where the shrinkage lives. Every candidate the oracle accepts
//! becomes the new baseline, so the result is 1-minimal with respect
//! to the chunks tried within the oracle budget.
//!
//! [`weaken`] is the config-side counterpart: given a ladder of
//! strictly weaker fault configurations (weakest first, e.g.
//! `FaultPlanConfig::weakenings`), it returns the weakest one that
//! still reproduces — shrinking the *environment* the same way ddmin
//! shrinks the *schedule*.

use mocket_checker::StateGraph;

use crate::testcase::TestCase;

/// Bounds and counters for one minimization run.
#[derive(Debug, Clone)]
pub struct MinimizeConfig {
    /// Maximum number of oracle invocations (each one deploys a fresh
    /// SUT, so campaigns bound this). 0 disables minimization.
    pub max_oracle_runs: usize,
}

impl Default for MinimizeConfig {
    fn default() -> Self {
        MinimizeConfig {
            max_oracle_runs: 64,
        }
    }
}

/// The outcome of a minimization run.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The smallest reproducing case found (never longer than the
    /// input; equal to the input when nothing could be removed).
    pub case: TestCase,
    /// Oracle invocations spent.
    pub oracle_runs: usize,
    /// Candidates that validated against the graph but did not
    /// reproduce.
    pub rejected: usize,
}

impl Minimized {
    /// Records the run into the observability layer: a
    /// `minimize.done` event (logical timestamp = the original case
    /// length) plus `minimize.*` counters.
    pub fn record_obs(&self, obs: &mocket_obs::Obs, original_len: usize) {
        obs.event(
            "minimize.done",
            original_len as u64,
            vec![
                ("from_len", original_len.into()),
                ("to_len", self.case.len().into()),
                ("oracle_runs", self.oracle_runs.into()),
                ("rejected", self.rejected.into()),
            ],
        );
        let m = obs.metrics();
        m.add("minimize.runs", 1);
        m.add("minimize.oracle_runs", self.oracle_runs as u64);
        m.add("minimize.rejected", self.rejected as u64);
        m.add(
            "minimize.steps_removed",
            original_len.saturating_sub(self.case.len()) as u64,
        );
    }
}

/// Shrinks `case` with graph-validated delta debugging.
///
/// `failing_step` is the 0-based index of the step whose execution or
/// post-check revealed the inconsistency (steps after it never ran);
/// pass `case.len()` when the failure surfaced at test end. `oracle`
/// re-runs a candidate and returns whether it reproduces the same
/// inconsistency kind — it is *not* called for the input case, which
/// the caller already knows fails.
pub fn minimize_case<F>(
    graph: &StateGraph,
    case: &TestCase,
    failing_step: usize,
    config: &MinimizeConfig,
    mut oracle: F,
) -> Minimized
where
    F: FnMut(&TestCase) -> bool,
{
    let mut best = case.clone();
    let mut oracle_runs = 0usize;
    let mut rejected = 0usize;

    let mut try_candidate = |candidate: &TestCase,
                             best: &mut TestCase,
                             oracle_runs: &mut usize,
                             rejected: &mut usize|
     -> bool {
        if candidate.len() >= best.len() || *oracle_runs >= config.max_oracle_runs {
            return false;
        }
        if candidate.validate_against(graph).is_err() {
            return false;
        }
        *oracle_runs += 1;
        if oracle(candidate) {
            *best = candidate.clone();
            true
        } else {
            *rejected += 1;
            false
        }
    };

    // Phase 1: drop the suffix that never executed. The truncation is
    // a prefix of a known-failing run, but the failure could in
    // principle depend on later scheduling context the spec sees at
    // test end (unexpected-action checks), so it goes through the
    // oracle like any other candidate.
    if failing_step + 1 < best.len() {
        let truncated = TestCase {
            initial: best.initial.clone(),
            steps: best.steps[..failing_step + 1].to_vec(),
        };
        try_candidate(&truncated, &mut best, &mut oracle_runs, &mut rejected);
    }

    // Phase 2: ddmin over the remaining steps. Granularity starts at
    // halves and refines toward single steps; any success restarts
    // from the coarsest level on the smaller case.
    let mut chunk = best.len().div_ceil(2).max(1);
    while chunk >= 1 && best.len() > 1 && oracle_runs < config.max_oracle_runs {
        let mut improved = false;
        let mut start = 0;
        while start < best.len() {
            let end = (start + chunk).min(best.len());
            let mut steps = best.steps[..start].to_vec();
            steps.extend_from_slice(&best.steps[end..]);
            if steps.is_empty() {
                start += chunk;
                continue;
            }
            let candidate = TestCase {
                initial: best.initial.clone(),
                steps,
            };
            if try_candidate(&candidate, &mut best, &mut oracle_runs, &mut rejected) {
                // The window shifted under us; rescan this position.
                improved = true;
            } else {
                start += chunk;
            }
            if oracle_runs >= config.max_oracle_runs {
                break;
            }
        }
        if improved {
            chunk = best.len().div_ceil(2).max(1);
        } else if chunk == 1 {
            break;
        } else {
            chunk = (chunk / 2).max(1);
        }
    }

    Minimized {
        case: best,
        oracle_runs,
        rejected,
    }
}

/// Picks the weakest configuration that still reproduces.
///
/// `ladder` is ordered weakest first (see
/// `FaultPlanConfig::weakenings`); the first entry the oracle accepts
/// wins. Returns `None` when no weakening reproduces — the original
/// configuration is already minimal.
pub fn weaken<C, F>(ladder: Vec<C>, mut reproduces: F) -> Option<C>
where
    F: FnMut(&C) -> bool,
{
    ladder.into_iter().find(|candidate| reproduces(candidate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::{ActionInstance, State, Value};

    fn st(n: i64) -> State {
        State::from_pairs([("n", Value::Int(n))])
    }

    /// A counter graph 0..=3 with Inc and Dec edges: plenty of cycles
    /// for ddmin to remove.
    fn counter_graph() -> StateGraph {
        let mut g = StateGraph::new();
        let ids: Vec<_> = (0..=3).map(|n| g.insert_state(st(n)).0).collect();
        g.mark_initial(ids[0]);
        for n in 0..3usize {
            g.add_edge(ids[n], ActionInstance::nullary("Inc"), ids[n + 1]);
            g.add_edge(ids[n + 1], ActionInstance::nullary("Dec"), ids[n]);
        }
        g
    }

    fn walk(names_and_states: &[(&str, i64)]) -> TestCase {
        TestCase::new(
            st(0),
            names_and_states
                .iter()
                .map(|&(name, n)| (ActionInstance::nullary(name), st(n)))
                .collect(),
        )
    }

    /// Oracle: fails whenever the case ever reaches n == 2.
    fn reaches_two(tc: &TestCase) -> bool {
        tc.steps.iter().any(|s| s.expected == st(2))
    }

    #[test]
    fn detours_are_removed() {
        let g = counter_graph();
        // Inc Inc Dec Dec Inc Inc — reaches 2 at step 1 already; the
        // Dec/Dec/Inc/Inc tail and nothing else should survive... or
        // rather, only a shortest Inc,Inc prefix should.
        let case = walk(&[
            ("Inc", 1),
            ("Inc", 2),
            ("Dec", 1),
            ("Dec", 0),
            ("Inc", 1),
            ("Inc", 2),
        ]);
        let out = minimize_case(&g, &case, 5, &MinimizeConfig::default(), reaches_two);
        assert_eq!(out.case.len(), 2, "{}", out.case);
        assert_eq!(out.case.action_names(), ["Inc", "Inc"]);
        assert!(out.case.validate_against(&g).is_ok());
        assert!(reaches_two(&out.case));
    }

    #[test]
    fn failing_suffix_is_dropped_first() {
        let g = counter_graph();
        // Failure observed at step 1; the later detour never ran.
        let case = walk(&[("Inc", 1), ("Inc", 2), ("Dec", 1), ("Inc", 2)]);
        let out = minimize_case(&g, &case, 1, &MinimizeConfig::default(), reaches_two);
        assert_eq!(out.case.len(), 2);
    }

    #[test]
    fn unshrinkable_case_is_returned_unchanged() {
        let g = counter_graph();
        let case = walk(&[("Inc", 1), ("Inc", 2)]);
        let out = minimize_case(&g, &case, 1, &MinimizeConfig::default(), reaches_two);
        assert_eq!(out.case, case);
    }

    #[test]
    fn oracle_budget_is_respected() {
        let g = counter_graph();
        let case = walk(&[
            ("Inc", 1),
            ("Dec", 0),
            ("Inc", 1),
            ("Dec", 0),
            ("Inc", 1),
            ("Inc", 2),
        ]);
        let mut calls = 0usize;
        let cfg = MinimizeConfig { max_oracle_runs: 3 };
        let out = minimize_case(&g, &case, 5, &cfg, |tc| {
            calls += 1;
            reaches_two(tc)
        });
        assert!(calls <= 3, "{calls} oracle calls");
        assert_eq!(out.oracle_runs, calls);
        assert!(out.case.len() <= case.len());
    }

    #[test]
    fn zero_budget_disables_minimization() {
        let g = counter_graph();
        let case = walk(&[("Inc", 1), ("Dec", 0), ("Inc", 1), ("Inc", 2)]);
        let cfg = MinimizeConfig { max_oracle_runs: 0 };
        let out = minimize_case(&g, &case, 3, &cfg, |_| panic!("oracle must not run"));
        assert_eq!(out.case, case);
        assert_eq!(out.oracle_runs, 0);
    }

    #[test]
    fn invalid_candidates_never_reach_the_oracle() {
        let g = counter_graph();
        // Straight climb: removing any interior step breaks the path,
        // so the only graph-valid candidates are prefixes — and the
        // failure is at the very end, so nothing shrinks.
        let case = walk(&[("Inc", 1), ("Inc", 2), ("Inc", 3)]);
        let out = minimize_case(&g, &case, 2, &MinimizeConfig::default(), |tc| {
            assert!(tc.validate_against(&g).is_ok(), "oracle saw invalid case");
            tc.steps.iter().any(|s| s.expected == st(3))
        });
        assert_eq!(out.case, case);
    }

    #[test]
    fn weaken_picks_the_first_reproducing_rung() {
        let ladder = vec![0u32, 1, 2, 3];
        assert_eq!(weaken(ladder.clone(), |&c| c >= 2), Some(2));
        assert_eq!(weaken(ladder, |_| false), None);
    }
}
