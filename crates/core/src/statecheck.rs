//! The state checker (§4.3.2).
//!
//! After every executed action the checker compares the collected
//! runtime values — shadow-variable snapshots plus the testbed's
//! message pools — against the verified state of the test case,
//! translating implementation constants into the spec domain through
//! the constant map. Counters and auxiliary variables are skipped:
//! they have no mapping by design.

use mocket_obs::{Obs, VarDiff};
use mocket_tla::{State, Value, VarClass};

use crate::mapping::{CompareMode, MappingRegistry, VarTarget};
use crate::msgpool::MessagePools;
use crate::report::VariableDivergence;
use crate::sut::Snapshot;

/// Compares a runtime snapshot (plus pools) against the expected
/// verified state, returning every divergence.
pub fn check_state(
    expected: &State,
    snapshot: &Snapshot,
    pools: &MessagePools,
    registry: &MappingRegistry,
) -> Vec<VariableDivergence> {
    let mut divergences = Vec::new();
    for vm in registry.variables() {
        let Some(expected_value) = expected.get(&vm.spec_name) else {
            // The spec does not bind this variable (should not happen
            // for validated mappings); nothing to compare.
            continue;
        };
        match (&vm.class, &vm.target) {
            (VarClass::StateRelated, Some(target)) => {
                let impl_name = match target {
                    VarTarget::ClassField { impl_name }
                    | VarTarget::MethodVariable { impl_name, .. } => impl_name,
                    VarTarget::MessagePool { .. } => continue,
                };
                let actual = snapshot
                    .get(impl_name)
                    .map(|v| registry.consts().to_spec(v));
                let matches = match &actual {
                    Some(a) => values_match(expected_value, a, vm.compare),
                    None => false,
                };
                if !matches {
                    divergences.push(VariableDivergence {
                        variable: vm.spec_name.clone(),
                        expected: expected_value.clone(),
                        actual,
                    });
                }
            }
            (VarClass::MessageRelated, Some(VarTarget::MessagePool { pool, .. })) => {
                let actual = pools.as_value(pool);
                if actual.as_ref() != Some(expected_value) {
                    divergences.push(VariableDivergence {
                        variable: vm.spec_name.clone(),
                        expected: expected_value.clone(),
                        actual,
                    });
                }
            }
            // Counters / auxiliary variables are unmapped (§4.1.1).
            _ => {}
        }
    }
    divergences
}

/// [`check_state`] with state-checker metrics: `statecheck.checks`
/// counts invocations, `statecheck.divergences` counts every diverging
/// variable found.
pub fn check_state_observed(
    expected: &State,
    snapshot: &Snapshot,
    pools: &MessagePools,
    registry: &MappingRegistry,
    obs: &Obs,
) -> Vec<VariableDivergence> {
    let divergences = check_state(expected, snapshot, pools, registry);
    let m = obs.metrics();
    m.add("statecheck.checks", 1);
    if !divergences.is_empty() {
        m.add("statecheck.divergences", divergences.len() as u64);
    }
    divergences
}

/// Compares an expected spec value against a collected (already
/// translated) value under a compare mode. `Cardinality` matches an
/// implementation count `Int(k)` against a spec collection of size
/// `k`, recursing pointwise through node-indexed functions.
pub fn values_match(expected: &Value, actual: &Value, mode: CompareMode) -> bool {
    match mode {
        CompareMode::Exact => expected == actual,
        CompareMode::Cardinality => match (expected, actual) {
            (Value::Fun(e), Value::Fun(a)) => {
                e.len() == a.len()
                    && e.iter()
                        .zip(a.iter())
                        .all(|((ke, ve), (ka, va))| ke == ka && values_match(ve, va, mode))
            }
            (collection, Value::Int(k)) => collection.cardinality() as i64 == *k,
            _ => expected == actual,
        },
    }
}

/// Structured per-variable diff for the divergence explainer: instead
/// of "expected F, got G" on a whole function value, recurses into
/// functions, records and sets and reports only the leaves that
/// actually differ, with a path like `votesGranted[1]`. Set deltas are
/// reported per element (`expected present, got absent`). Equal values
/// yield nothing.
pub fn value_diff(variable: &str, expected: &Value, actual: Option<&Value>) -> Vec<VarDiff> {
    let mut out = Vec::new();
    match actual {
        None => out.push(VarDiff::new(
            variable,
            &expected.to_string(),
            VarDiff::MISSING,
        )),
        Some(actual) => diff_into(variable, expected, actual, &mut out),
    }
    out
}

fn diff_into(path: &str, expected: &Value, actual: &Value, out: &mut Vec<VarDiff>) {
    if expected == actual {
        return;
    }
    match (expected, actual) {
        (Value::Fun(e), Value::Fun(a)) => {
            for (k, ve) in e {
                match a.get(k) {
                    Some(va) => diff_into(&format!("{path}[{k}]"), ve, va, out),
                    None => out.push(VarDiff::new(
                        &format!("{path}[{k}]"),
                        &ve.to_string(),
                        VarDiff::MISSING,
                    )),
                }
            }
            for (k, va) in a {
                if !e.contains_key(k) {
                    out.push(VarDiff::new(
                        &format!("{path}[{k}]"),
                        VarDiff::MISSING,
                        &va.to_string(),
                    ));
                }
            }
        }
        (Value::Record(e), Value::Record(a)) => {
            for (k, ve) in e {
                match a.get(k) {
                    Some(va) => diff_into(&format!("{path}.{k}"), ve, va, out),
                    None => out.push(VarDiff::new(
                        &format!("{path}.{k}"),
                        &ve.to_string(),
                        VarDiff::MISSING,
                    )),
                }
            }
            for (k, va) in a {
                if !e.contains_key(k) {
                    out.push(VarDiff::new(
                        &format!("{path}.{k}"),
                        VarDiff::MISSING,
                        &va.to_string(),
                    ));
                }
            }
        }
        (Value::Set(e), Value::Set(a)) => {
            for v in e.difference(a) {
                out.push(VarDiff::new(&format!("{path}[{v}]"), "present", "absent"));
            }
            for v in a.difference(e) {
                out.push(VarDiff::new(&format!("{path}[{v}]"), "absent", "present"));
            }
        }
        _ => out.push(VarDiff::new(
            path,
            &expected.to_string(),
            &actual.to_string(),
        )),
    }
}

/// Convenience: `true` when nothing diverges.
pub fn state_matches(
    expected: &State,
    snapshot: &Snapshot,
    pools: &MessagePools,
    registry: &MappingRegistry,
) -> bool {
    check_state(expected, snapshot, pools, registry).is_empty()
}

/// Renders the expected value of a message pool variable for error
/// reports, if present in the expected state.
pub fn expected_pool_value<'a>(expected: &'a State, pool: &str) -> Option<&'a Value> {
    expected.get(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sut::MsgEvent;
    use mocket_tla::vrec;

    fn registry() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.map_class_field("nodeState", "state")
            .map_class_field("votedFor", "votedFor")
            .map_message_pool("messages", true);
        r.bind_const(Value::str("Follower"), Value::str("STATE_FOLLOWER"));
        r.bind_const(Value::str("Leader"), Value::str("STATE_LEADER"));
        r
    }

    fn expected() -> State {
        State::from_pairs([
            (
                "nodeState",
                Value::fun([
                    (Value::Int(1), Value::str("Leader")),
                    (Value::Int(2), Value::str("Follower")),
                ]),
            ),
            (
                "votedFor",
                Value::fun([
                    (Value::Int(1), Value::Int(1)),
                    (Value::Int(2), Value::Int(1)),
                ]),
            ),
            ("messages", Value::fun([])),
            // An auxiliary variable with no mapping: must be ignored.
            ("stage", Value::str("x")),
        ])
    }

    fn matching_snapshot() -> Snapshot {
        Snapshot::from_pairs([
            (
                "state",
                Value::fun([
                    (Value::Int(1), Value::str("STATE_LEADER")),
                    (Value::Int(2), Value::str("STATE_FOLLOWER")),
                ]),
            ),
            (
                "votedFor",
                Value::fun([
                    (Value::Int(1), Value::Int(1)),
                    (Value::Int(2), Value::Int(1)),
                ]),
            ),
        ])
    }

    #[test]
    fn matching_state_has_no_divergences() {
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        assert!(state_matches(
            &expected(),
            &matching_snapshot(),
            &pools,
            &registry()
        ));
    }

    #[test]
    fn wrong_constant_translation_diverges() {
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        let mut snap = matching_snapshot();
        snap.vars[0].1 = Value::fun([
            (Value::Int(1), Value::str("STATE_FOLLOWER")),
            (Value::Int(2), Value::str("STATE_FOLLOWER")),
        ]);
        let d = check_state(&expected(), &snap, &pools, &registry());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].variable, "nodeState");
        // Actual is reported in the spec domain.
        assert_eq!(
            d[0].actual,
            Some(Value::fun([
                (Value::Int(1), Value::str("Follower")),
                (Value::Int(2), Value::str("Follower")),
            ]))
        );
    }

    #[test]
    fn missing_snapshot_variable_diverges_as_uncollected() {
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        let snap = Snapshot::from_pairs([(
            "state",
            Value::fun([
                (Value::Int(1), Value::str("STATE_LEADER")),
                (Value::Int(2), Value::str("STATE_FOLLOWER")),
            ]),
        )]);
        let d = check_state(&expected(), &snap, &pools, &registry());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].variable, "votedFor");
        assert_eq!(d[0].actual, None);
    }

    #[test]
    fn pool_contents_are_compared() {
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        pools
            .apply(&MsgEvent::Send {
                pool: "messages".into(),
                msg: vrec! { mtype => "Req" },
            })
            .unwrap();
        let d = check_state(&expected(), &matching_snapshot(), &pools, &registry());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].variable, "messages");
        assert_eq!(
            d[0].actual,
            Some(Value::fun([(vrec! { mtype => "Req" }, Value::Int(1))]))
        );
    }

    #[test]
    fn value_diff_recurses_into_functions_and_sets() {
        let expected = Value::fun([
            (Value::Int(1), Value::set([Value::Int(1), Value::Int(2)])),
            (Value::Int(2), Value::str("Leader")),
            (Value::Int(3), Value::Int(7)),
        ]);
        let actual = Value::fun([
            (Value::Int(1), Value::set([Value::Int(1), Value::Int(3)])),
            (Value::Int(2), Value::str("Leader")),
            (Value::Int(4), Value::Int(9)),
        ]);
        let diffs = value_diff("votes", &expected, Some(&actual));
        let rendered: Vec<String> = diffs.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            rendered,
            [
                "votes[1][2]: expected present, got absent",
                "votes[1][3]: expected absent, got present",
                "votes[3]: expected 7, got <missing>",
                "votes[4]: expected <missing>, got 9",
            ]
        );
    }

    #[test]
    fn value_diff_handles_records_leaves_and_uncollected() {
        let expected = Value::record([("term", Value::Int(2)), ("ok", Value::Bool(true))]);
        let actual = Value::record([("term", Value::Int(1)), ("ok", Value::Bool(true))]);
        let diffs = value_diff("hdr", &expected, Some(&actual));
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].to_string(), "hdr.term: expected 2, got 1");

        // Uncollected variable: one whole-variable diff.
        let diffs = value_diff("x", &Value::Int(3), None);
        assert_eq!(diffs[0].to_string(), "x: expected 3, got <missing>");

        // Type mismatch stays a leaf diff.
        let diffs = value_diff("x", &Value::Int(3), Some(&Value::str("three")));
        assert_eq!(diffs[0].to_string(), "x: expected 3, got \"three\"");

        // Equal values: nothing.
        assert!(value_diff("x", &Value::Int(3), Some(&Value::Int(3))).is_empty());
    }

    #[test]
    fn auxiliary_variables_are_ignored() {
        // `stage` is in the expected state but has no mapping: even a
        // snapshot that knows nothing about it passes.
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        let d = check_state(&expected(), &matching_snapshot(), &pools, &registry());
        assert!(d.iter().all(|x| x.variable != "stage"));
    }
}
