//! The state checker (§4.3.2).
//!
//! After every executed action the checker compares the collected
//! runtime values — shadow-variable snapshots plus the testbed's
//! message pools — against the verified state of the test case,
//! translating implementation constants into the spec domain through
//! the constant map. Counters and auxiliary variables are skipped:
//! they have no mapping by design.

use mocket_obs::Obs;
use mocket_tla::{State, Value, VarClass};

use crate::mapping::{CompareMode, MappingRegistry, VarTarget};
use crate::msgpool::MessagePools;
use crate::report::VariableDivergence;
use crate::sut::Snapshot;

/// Compares a runtime snapshot (plus pools) against the expected
/// verified state, returning every divergence.
pub fn check_state(
    expected: &State,
    snapshot: &Snapshot,
    pools: &MessagePools,
    registry: &MappingRegistry,
) -> Vec<VariableDivergence> {
    let mut divergences = Vec::new();
    for vm in registry.variables() {
        let Some(expected_value) = expected.get(&vm.spec_name) else {
            // The spec does not bind this variable (should not happen
            // for validated mappings); nothing to compare.
            continue;
        };
        match (&vm.class, &vm.target) {
            (VarClass::StateRelated, Some(target)) => {
                let impl_name = match target {
                    VarTarget::ClassField { impl_name }
                    | VarTarget::MethodVariable { impl_name, .. } => impl_name,
                    VarTarget::MessagePool { .. } => continue,
                };
                let actual = snapshot
                    .get(impl_name)
                    .map(|v| registry.consts().to_spec(v));
                let matches = match &actual {
                    Some(a) => values_match(expected_value, a, vm.compare),
                    None => false,
                };
                if !matches {
                    divergences.push(VariableDivergence {
                        variable: vm.spec_name.clone(),
                        expected: expected_value.clone(),
                        actual,
                    });
                }
            }
            (VarClass::MessageRelated, Some(VarTarget::MessagePool { pool, .. })) => {
                let actual = pools.as_value(pool);
                if actual.as_ref() != Some(expected_value) {
                    divergences.push(VariableDivergence {
                        variable: vm.spec_name.clone(),
                        expected: expected_value.clone(),
                        actual,
                    });
                }
            }
            // Counters / auxiliary variables are unmapped (§4.1.1).
            _ => {}
        }
    }
    divergences
}

/// [`check_state`] with state-checker metrics: `statecheck.checks`
/// counts invocations, `statecheck.divergences` counts every diverging
/// variable found.
pub fn check_state_observed(
    expected: &State,
    snapshot: &Snapshot,
    pools: &MessagePools,
    registry: &MappingRegistry,
    obs: &Obs,
) -> Vec<VariableDivergence> {
    let divergences = check_state(expected, snapshot, pools, registry);
    let m = obs.metrics();
    m.add("statecheck.checks", 1);
    if !divergences.is_empty() {
        m.add("statecheck.divergences", divergences.len() as u64);
    }
    divergences
}

/// Compares an expected spec value against a collected (already
/// translated) value under a compare mode. `Cardinality` matches an
/// implementation count `Int(k)` against a spec collection of size
/// `k`, recursing pointwise through node-indexed functions.
pub fn values_match(expected: &Value, actual: &Value, mode: CompareMode) -> bool {
    match mode {
        CompareMode::Exact => expected == actual,
        CompareMode::Cardinality => match (expected, actual) {
            (Value::Fun(e), Value::Fun(a)) => {
                e.len() == a.len()
                    && e.iter()
                        .zip(a.iter())
                        .all(|((ke, ve), (ka, va))| ke == ka && values_match(ve, va, mode))
            }
            (collection, Value::Int(k)) => collection.cardinality() as i64 == *k,
            _ => expected == actual,
        },
    }
}

/// Convenience: `true` when nothing diverges.
pub fn state_matches(
    expected: &State,
    snapshot: &Snapshot,
    pools: &MessagePools,
    registry: &MappingRegistry,
) -> bool {
    check_state(expected, snapshot, pools, registry).is_empty()
}

/// Renders the expected value of a message pool variable for error
/// reports, if present in the expected state.
pub fn expected_pool_value<'a>(expected: &'a State, pool: &str) -> Option<&'a Value> {
    expected.get(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sut::MsgEvent;
    use mocket_tla::vrec;

    fn registry() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.map_class_field("nodeState", "state")
            .map_class_field("votedFor", "votedFor")
            .map_message_pool("messages", true);
        r.bind_const(Value::str("Follower"), Value::str("STATE_FOLLOWER"));
        r.bind_const(Value::str("Leader"), Value::str("STATE_LEADER"));
        r
    }

    fn expected() -> State {
        State::from_pairs([
            (
                "nodeState",
                Value::fun([
                    (Value::Int(1), Value::str("Leader")),
                    (Value::Int(2), Value::str("Follower")),
                ]),
            ),
            (
                "votedFor",
                Value::fun([
                    (Value::Int(1), Value::Int(1)),
                    (Value::Int(2), Value::Int(1)),
                ]),
            ),
            ("messages", Value::fun([])),
            // An auxiliary variable with no mapping: must be ignored.
            ("stage", Value::str("x")),
        ])
    }

    fn matching_snapshot() -> Snapshot {
        Snapshot::from_pairs([
            (
                "state",
                Value::fun([
                    (Value::Int(1), Value::str("STATE_LEADER")),
                    (Value::Int(2), Value::str("STATE_FOLLOWER")),
                ]),
            ),
            (
                "votedFor",
                Value::fun([
                    (Value::Int(1), Value::Int(1)),
                    (Value::Int(2), Value::Int(1)),
                ]),
            ),
        ])
    }

    #[test]
    fn matching_state_has_no_divergences() {
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        assert!(state_matches(
            &expected(),
            &matching_snapshot(),
            &pools,
            &registry()
        ));
    }

    #[test]
    fn wrong_constant_translation_diverges() {
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        let mut snap = matching_snapshot();
        snap.vars[0].1 = Value::fun([
            (Value::Int(1), Value::str("STATE_FOLLOWER")),
            (Value::Int(2), Value::str("STATE_FOLLOWER")),
        ]);
        let d = check_state(&expected(), &snap, &pools, &registry());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].variable, "nodeState");
        // Actual is reported in the spec domain.
        assert_eq!(
            d[0].actual,
            Some(Value::fun([
                (Value::Int(1), Value::str("Follower")),
                (Value::Int(2), Value::str("Follower")),
            ]))
        );
    }

    #[test]
    fn missing_snapshot_variable_diverges_as_uncollected() {
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        let snap = Snapshot::from_pairs([(
            "state",
            Value::fun([
                (Value::Int(1), Value::str("STATE_LEADER")),
                (Value::Int(2), Value::str("STATE_FOLLOWER")),
            ]),
        )]);
        let d = check_state(&expected(), &snap, &pools, &registry());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].variable, "votedFor");
        assert_eq!(d[0].actual, None);
    }

    #[test]
    fn pool_contents_are_compared() {
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        pools
            .apply(&MsgEvent::Send {
                pool: "messages".into(),
                msg: vrec! { mtype => "Req" },
            })
            .unwrap();
        let d = check_state(&expected(), &matching_snapshot(), &pools, &registry());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].variable, "messages");
        assert_eq!(
            d[0].actual,
            Some(Value::fun([(vrec! { mtype => "Req" }, Value::Int(1))]))
        );
    }

    #[test]
    fn auxiliary_variables_are_ignored() {
        // `stage` is in the expected state but has no mapping: even a
        // snapshot that knows nothing about it passes.
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        let d = check_state(&expected(), &matching_snapshot(), &pools, &registry());
        assert!(d.iter().all(|x| x.variable != "stage"));
    }
}
