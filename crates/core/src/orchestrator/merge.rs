//! Deterministic merge of a sharded campaign into the canonical
//! top-level outputs.
//!
//! The merge never concatenates worker files. Every canonical artifact
//! is *derived* from three logical inputs — the pinned plan, the
//! per-shard verdict sets (shard journals), and the regenerated state
//! graph — so the merged `journal.log`, `coverage.json`,
//! `events.jsonl`, `run-summary.json` and `campaign-history.jsonl`
//! are byte-identical whether the campaign ran clean, crashed and
//! resumed, or ran under any worker count. Wall-clock data is zeroed
//! (history) or omitted (summary metrics) for the same reason.
//!
//! Duplicate-hash semantics: the canonical journal carries one line
//! per unique case hash, ordered by the hash's first plan index; the
//! coverage map counts every plan index whose hash reached a verdict
//! (each index walked its path, whichever shard ran it). Poisoned
//! cases never reached a verdict: they appear in the quarantine logs
//! and the summary's `cases_quarantined`, not in the journal or the
//! coverage map.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

use mocket_checker::{to_dot_overlay, uncovered_frontier, EdgeId, StateGraph};
use mocket_obs::{
    CampaignHistory, CampaignRecord, CoverageMap, Event, Obs, RunSummary, COVERAGE_FILE_NAME,
    EVENTS_FILE_NAME, UNCOVERED_FILE_NAME,
};

use crate::artifact::{CampaignJournal, CaseOutcome, JournalEntry, ReplayArtifact};
use crate::pipeline::COVERAGE_DOT_FILE_NAME;

use super::lease::shard_data_dir;
use super::plan::CampaignPlan;
use super::worker::load_poisoned;

/// What the merge produced.
#[derive(Debug, Clone, Default)]
pub struct MergeReport {
    /// Plan indices whose hash reached a verdict.
    pub cases_with_verdict: usize,
    /// Plan indices whose hash passed.
    pub cases_passed: usize,
    /// Unique failed hashes.
    pub failed_unique: usize,
    /// Unique poisoned (quarantined) hashes.
    pub poisoned: usize,
    /// Lines in the canonical journal.
    pub journal_lines: usize,
    /// Replay artifacts promoted from shard directories to the top
    /// level (deduplicated by minimized-case fingerprint).
    pub artifacts_copied: usize,
    /// A history record was appended (campaign complete and the record
    /// was not already the last line).
    pub history_appended: bool,
    /// A campaign-level `trace.jsonl` was assembled from the shard
    /// traces (only traced campaigns produce one).
    pub traces_merged: bool,
    /// Non-fatal anomalies (shard journal issues, unreadable
    /// artifacts). Never part of the canonical outputs.
    pub issues: Vec<String>,
}

/// Everything the merge derives the canonical outputs from. The graph
/// and paths must be the regenerated ones the plan was verified
/// against; the traversal gauges are deterministic graph properties
/// forwarded into the summary.
pub struct MergeInputs<'a> {
    /// The campaign directory.
    pub campaign_dir: &'a Path,
    /// The pinned plan.
    pub plan: &'a CampaignPlan,
    /// The regenerated state graph.
    pub graph: &'a StateGraph,
    /// Edge paths, index-aligned with the plan's cases.
    pub paths: &'a [Vec<EdgeId>],
    /// Spec name for the summary and history record.
    pub spec_name: &'a str,
    /// Traversal gauge: coverage-target edges visited.
    pub coverage_visited: u64,
    /// Traversal gauge: total coverage-target edges.
    pub coverage_targets: u64,
    /// Traversal gauge: visited / targets.
    pub coverage_fraction: f64,
    /// Edges POR removed from the coverage target set.
    pub por_excluded: u64,
    /// Every shard is retired: append the history record.
    pub completed: bool,
    /// Observability handle for the merge's self-profiling
    /// (`timing.profile.merge_*_seconds` histograms). Metrics only —
    /// the canonical outputs stay byte-deterministic; pass
    /// [`Obs::disabled`] to profile nothing.
    pub obs: Obs,
}

/// Canonical outputs go through the fault-injectable atomic writer so
/// chaos campaigns exercise the merge's crash-consistency too.
fn write_atomic(dir: &Path, name: &str, content: &str) -> io::Result<()> {
    crate::fsio::write_atomic(
        dir,
        name,
        content.as_bytes(),
        crate::fsio::points::MERGE_WRITE,
        &crate::fsio::RetryPolicy::io(),
    )
    .map(|_| ())
}

/// Resolves one verdict per unique case hash: the entry from the shard
/// owning the hash's first plan index when present, else the lowest
/// shard that journaled it (a duplicate hash spanning shards is run by
/// each of them; the SUT is deterministic, so the entries agree).
fn resolve_verdicts(
    plan: &CampaignPlan,
    shard_entries: &[BTreeMap<String, JournalEntry>],
) -> BTreeMap<String, JournalEntry> {
    let mut verdicts = BTreeMap::new();
    let size = plan.shard_size.max(1);
    for (idx, case) in plan.cases.iter().enumerate() {
        if verdicts.contains_key(&case.hash) {
            continue;
        }
        let home = idx / size;
        let entry = shard_entries
            .get(home)
            .and_then(|m| m.get(&case.hash))
            .or_else(|| shard_entries.iter().find_map(|m| m.get(&case.hash)));
        if let Some(entry) = entry {
            verdicts.insert(case.hash.clone(), entry.clone());
        }
    }
    verdicts
}

/// Promotes replay artifacts from the shard data directories to the
/// campaign top level. The artifact file name embeds the minimized
/// case's stable hash, so two shards reproducing the same bug collapse
/// to one file — auto-triage dedupe by schedule fingerprint.
fn promote_artifacts(
    campaign_dir: &Path,
    shard_count: usize,
    issues: &mut Vec<String>,
) -> io::Result<usize> {
    let mut promoted = BTreeSet::new();
    let mut copied = 0usize;
    for shard in 0..shard_count {
        let dir = shard_data_dir(campaign_dir, shard);
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with("case-") || !name.ends_with(".artifact") {
                continue;
            }
            if !promoted.insert(name.to_string()) {
                continue;
            }
            let dest = campaign_dir.join(name);
            let tmp = campaign_dir.join(format!("{name}.tmp-{}", std::process::id()));
            match fs::copy(entry.path(), &tmp).and_then(|_| fs::rename(&tmp, &dest)) {
                Ok(()) => copied += 1,
                Err(e) => {
                    let _ = fs::remove_file(&tmp);
                    issues.push(format!("artifact {name} promote failed: {e}"));
                }
            }
        }
    }
    Ok(copied)
}

/// Concatenates the per-shard causal traces (`trace.jsonl` in each
/// shard data directory) into one campaign-level `trace.jsonl`, in
/// shard order. A torn shard file (no trailing newline — an append
/// died after its rollback also failed) is newline-isolated so the
/// next shard's first record is not fused to the debris; the torn line
/// itself is left for `parse_trace`'s salvage. Untraced campaigns have
/// no shard traces and get no top-level file.
fn promote_traces(
    campaign_dir: &Path,
    shard_count: usize,
    issues: &mut Vec<String>,
) -> io::Result<bool> {
    let mut merged = String::new();
    for shard in 0..shard_count {
        let path = shard_data_dir(campaign_dir, shard).join(mocket_obs::TRACE_FILE_NAME);
        match fs::read_to_string(&path) {
            Ok(text) => {
                if text.is_empty() {
                    continue;
                }
                merged.push_str(&text);
                if !text.ends_with('\n') {
                    merged.push('\n');
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => issues.push(format!("shard {shard} trace unreadable: {e}")),
        }
    }
    if merged.is_empty() {
        return Ok(false);
    }
    write_atomic(campaign_dir, mocket_obs::TRACE_FILE_NAME, &merged)?;
    Ok(true)
}

/// Shrink totals over the promoted top-level artifacts: the stored
/// case is the minimized reproducer and `original_len` the revealing
/// case's length, mirroring what the single-process pipeline records.
fn shrink_totals(campaign_dir: &Path, issues: &mut Vec<String>) -> (u64, u64) {
    let mut names: Vec<String> = Vec::new();
    if let Ok(entries) = fs::read_dir(campaign_dir) {
        for entry in entries.flatten() {
            if let Some(name) = entry.file_name().to_str() {
                if name.starts_with("case-") && name.ends_with(".artifact") {
                    names.push(name.to_string());
                }
            }
        }
    }
    names.sort();
    let (mut original, mut minimized) = (0u64, 0u64);
    for name in names {
        match ReplayArtifact::load(&campaign_dir.join(&name)) {
            Ok(a) => {
                original += a.original_len as u64;
                minimized += a.test_case.len() as u64;
            }
            Err(e) => issues.push(format!("artifact {name} unreadable: {e}")),
        }
    }
    (original, minimized)
}

/// Merges the per-shard journals, quarantine logs and replay artifacts
/// into the canonical top-level outputs. Idempotent: re-merging a
/// finished campaign rewrites the same bytes and appends nothing new
/// to the history.
pub fn merge_campaign(inp: &MergeInputs<'_>) -> io::Result<MergeReport> {
    let mut report = MergeReport::default();
    let plan = inp.plan;
    let shard_count = plan.shard_count();
    // Stage self-profiling: histograms only, never canonical output.
    let profile = |name: &str, started: std::time::Instant| {
        inp.obs.metrics().observe(name, started.elapsed().as_secs_f64());
    };

    // Per-shard verdict sets. Journal anomalies (a crash can truncate
    // a shard journal's last line) are reported, never merged.
    let stage = std::time::Instant::now();
    let mut shard_entries = Vec::with_capacity(shard_count);
    for shard in 0..shard_count {
        let (entries, issues) =
            CampaignJournal::load_entries(&shard_data_dir(inp.campaign_dir, shard))?;
        for issue in issues {
            report.issues.push(format!("shard {shard}: {issue}"));
        }
        shard_entries.push(entries);
    }
    let verdicts = resolve_verdicts(plan, &shard_entries);
    profile("timing.profile.merge_journals_seconds", stage);

    // Unique poisoned hashes, first-crashing-index order for the logs,
    // hash set for the lookups below.
    let mut poisoned_hashes = BTreeSet::new();
    for rec in load_poisoned(inp.campaign_dir)? {
        poisoned_hashes.insert(rec.hash);
    }
    report.poisoned = poisoned_hashes.len();

    // Canonical journal: one line per unique hash, first-plan-index
    // order, the exact bytes `CampaignJournal::record` would append.
    let stage = std::time::Instant::now();
    let mut journal = String::new();
    let mut seen = BTreeSet::new();
    for case in &plan.cases {
        if !seen.insert(case.hash.as_str()) {
            continue;
        }
        if let Some(entry) = verdicts.get(&case.hash) {
            journal.push_str(&entry.render_line());
            report.journal_lines += 1;
        }
    }
    write_atomic(inp.campaign_dir, CampaignJournal::FILE_NAME, &journal)?;

    // Coverage: every plan index whose hash reached a verdict walked
    // its path exactly once in some shard.
    let mut coverage = CoverageMap::new(inp.graph.edge_count());
    let mut events = String::new();
    let mut seq = 0u64;
    for (idx, case) in plan.cases.iter().enumerate() {
        let Some(path) = inp.paths.get(idx) else {
            continue;
        };
        let entry = verdicts.get(&case.hash);
        let poisoned = poisoned_hashes.contains(&case.hash);
        if entry.is_none() && !poisoned {
            continue; // never disposed (drained mid-campaign)
        }
        if entry.is_some() {
            report.cases_with_verdict += 1;
            coverage.record_case(
                path.iter().map(|e| e.0),
                path.iter().map(|&e| inp.graph.edge(e).action.name.as_str()),
            );
        }
        let start = Event {
            name: "case.start",
            ts: idx as u64,
            fields: vec![
                ("case", idx.into()),
                ("len", case.len.into()),
                ("hash", case.hash.as_str().into()),
            ],
        };
        events.push_str(&start.to_json_line(seq));
        events.push('\n');
        seq += 1;
        let mut fields = vec![("case", idx.into())];
        match entry {
            Some(e) => {
                fields.push(("attempts", e.attempts.into()));
                match &e.outcome {
                    CaseOutcome::Passed => {
                        report.cases_passed += 1;
                        fields.push(("outcome", "passed".into()));
                    }
                    CaseOutcome::Failed { kind } => {
                        fields.push(("outcome", "failed".into()));
                        fields.push(("kind", kind.as_str().into()));
                    }
                }
            }
            None => fields.push(("outcome", "poisoned".into())),
        }
        let verdict = Event {
            name: "case.verdict",
            ts: idx as u64,
            fields,
        };
        events.push_str(&verdict.to_json_line(seq));
        events.push('\n');
        seq += 1;
    }
    write_atomic(inp.campaign_dir, EVENTS_FILE_NAME, &events)?;
    write_atomic(inp.campaign_dir, COVERAGE_FILE_NAME, &coverage.to_json())?;
    write_atomic(
        inp.campaign_dir,
        UNCOVERED_FILE_NAME,
        &coverage.uncovered_listing(),
    )?;
    write_atomic(
        inp.campaign_dir,
        COVERAGE_DOT_FILE_NAME,
        &to_dot_overlay(inp.graph, coverage.edge_hits()),
    )?;
    profile("timing.profile.merge_coverage_seconds", stage);

    // Unique failed hashes → bug tallies.
    let mut bugs_by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut bugs_by_determinism: BTreeMap<String, u64> = BTreeMap::new();
    for entry in verdicts.values() {
        if let CaseOutcome::Failed { kind } = &entry.outcome {
            report.failed_unique += 1;
            *bugs_by_kind.entry(kind.clone()).or_insert(0) += 1;
            let det = entry.determinism.as_deref().unwrap_or("unconfirmed");
            *bugs_by_determinism.entry(det.to_string()).or_insert(0) += 1;
        }
    }

    let stage = std::time::Instant::now();
    report.artifacts_copied = promote_artifacts(inp.campaign_dir, shard_count, &mut report.issues)?;
    report.traces_merged = promote_traces(inp.campaign_dir, shard_count, &mut report.issues)?;
    profile("timing.profile.merge_artifacts_seconds", stage);
    let stage = std::time::Instant::now();
    let frontier = uncovered_frontier(inp.graph, coverage.edge_hits());

    // The merged summary carries only logical data: wall-clock fields
    // zeroed, metrics empty (per-worker metrics live in worker-<id>/).
    let summary = RunSummary {
        spec: inp.spec_name.to_string(),
        fault_plan: None,
        states: inp.graph.state_count() as u64,
        edges: inp.graph.edge_count() as u64,
        coverage_edges_visited: inp.coverage_visited,
        coverage_edge_targets: inp.coverage_targets,
        coverage: inp.coverage_fraction,
        por_excluded_edges: inp.por_excluded,
        cases_selected: plan.cases.len() as u64,
        cases_run: (report.cases_with_verdict + report.poisoned) as u64,
        cases_passed: report.cases_passed as u64,
        cases_failed: report.failed_unique as u64,
        cases_quarantined: report.poisoned as u64,
        cases_skipped_from_journal: 0,
        journal_issues: 0,
        bugs_by_kind: bugs_by_kind.clone(),
        bugs_by_determinism: bugs_by_determinism.clone(),
        ..RunSummary::default()
    };
    summary.write_to(inp.campaign_dir)?;

    // One history record per completed campaign, deduplicated so an
    // idempotent re-run of a finished campaign appends nothing.
    if inp.completed {
        let (shrink_original, shrink_minimized) =
            shrink_totals(inp.campaign_dir, &mut report.issues);
        let mut history = CampaignHistory::open(inp.campaign_dir)?;
        for issue in history.issues() {
            report.issues.push(issue.to_string());
        }
        let record = CampaignRecord {
            seq: history.next_seq(),
            spec: summary.spec.clone(),
            states: summary.states,
            edges: summary.edges,
            coverage_edges_visited: summary.coverage_edges_visited,
            coverage_edge_targets: summary.coverage_edge_targets,
            coverage: summary.coverage,
            cases_selected: summary.cases_selected,
            cases_run: summary.cases_run,
            cases_passed: summary.cases_passed,
            cases_failed: summary.cases_failed,
            cases_quarantined: summary.cases_quarantined,
            cases_skipped_from_journal: 0,
            bugs_by_kind,
            bugs_by_determinism,
            shrink_original_actions: shrink_original,
            shrink_minimized_actions: shrink_minimized,
            uncovered_frontier_edges: frontier.len() as u64,
            wall_checker_states_per_sec: 0.0,
            wall_total_seconds: 0.0,
        };
        report.history_appended = history.append_dedup(record)?;
    }
    profile("timing.profile.merge_summary_seconds", stage);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::CampaignJournal;
    use crate::orchestrator::plan::PlanCase;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mocket-merge-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(hash: &str, outcome: CaseOutcome) -> JournalEntry {
        JournalEntry {
            hash: hash.into(),
            attempts: 1,
            determinism: match outcome {
                CaseOutcome::Passed => None,
                CaseOutcome::Failed { .. } => Some("deterministic".into()),
            },
            outcome,
        }
    }

    #[test]
    fn verdict_resolution_prefers_home_shard_and_orders_by_first_index() {
        let plan = CampaignPlan {
            target: "t".into(),
            bug: None,
            max_states: 10,
            max_path_len: 4,
            max_test_cases: 4,
            shard_size: 2,
            cases: vec![
                PlanCase {
                    hash: "aa".into(),
                    len: 2,
                },
                PlanCase {
                    hash: "bb".into(),
                    len: 2,
                },
                PlanCase {
                    hash: "aa".into(),
                    len: 2,
                },
                PlanCase {
                    hash: "cc".into(),
                    len: 2,
                },
            ],
        };
        let mut s0 = BTreeMap::new();
        s0.insert("aa".to_string(), entry("aa", CaseOutcome::Passed));
        s0.insert("bb".to_string(), entry("bb", CaseOutcome::Passed));
        let mut s1 = BTreeMap::new();
        // Duplicate of aa ran here too; cc only here.
        s1.insert("aa".to_string(), entry("aa", CaseOutcome::Passed));
        s1.insert(
            "cc".to_string(),
            entry(
                "cc",
                CaseOutcome::Failed {
                    kind: "Divergence".into(),
                },
            ),
        );
        let verdicts = resolve_verdicts(&plan, &[s0, s1]);
        assert_eq!(verdicts.len(), 3);
        assert_eq!(
            verdicts["cc"].outcome,
            CaseOutcome::Failed {
                kind: "Divergence".into()
            }
        );
    }

    #[test]
    fn canonical_journal_is_unique_hashes_in_first_index_order() {
        let dir = tmp_dir("journal");
        let plan = CampaignPlan {
            target: "t".into(),
            bug: None,
            max_states: 10,
            max_path_len: 4,
            max_test_cases: 3,
            shard_size: 2,
            cases: vec![
                PlanCase {
                    hash: "bb".into(),
                    len: 1,
                },
                PlanCase {
                    hash: "aa".into(),
                    len: 1,
                },
                PlanCase {
                    hash: "bb".into(),
                    len: 1,
                },
            ],
        };
        // Shard 0 owns both hashes; shard 1 re-ran bb.
        let shard0 = shard_data_dir(&dir, 0);
        {
            let mut j = CampaignJournal::open(&shard0).unwrap();
            j.record(entry("bb", CaseOutcome::Passed)).unwrap();
            j.record(entry("aa", CaseOutcome::Passed)).unwrap();
        }
        let shard1 = shard_data_dir(&dir, 1);
        {
            let mut j = CampaignJournal::open(&shard1).unwrap();
            j.record(entry("bb", CaseOutcome::Passed)).unwrap();
        }
        let (e0, _) = CampaignJournal::load_entries(&shard0).unwrap();
        let (e1, _) = CampaignJournal::load_entries(&shard1).unwrap();
        let verdicts = resolve_verdicts(&plan, &[e0, e1]);

        let mut journal = String::new();
        let mut seen = BTreeSet::new();
        for case in &plan.cases {
            if seen.insert(case.hash.as_str()) {
                if let Some(e) = verdicts.get(&case.hash) {
                    journal.push_str(&e.render_line());
                }
            }
        }
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("bb"), "first-index order: {lines:?}");
        assert!(lines[1].contains("aa"));
        let _ = fs::remove_dir_all(&dir);
    }
}
