//! Per-shard lease files: the campaign's file-backed work queue.
//!
//! Every shard of the planned case set is guarded by one lease file
//! under `<campaign-dir>/shards/`. A worker claims a shard by creating
//! the lease exclusively, then keeps it fresh with a heartbeat thread
//! (atomic temp+rename rewrite, so readers never see a torn lease and
//! the mtime doubles as the heartbeat clock). The lease body names the
//! owner pid, its process start token, a monotonic heartbeat counter,
//! the plan hash the owner verified against, and the case currently in
//! flight — which is what lets a stealer attribute a crash to a
//! specific case in a specific plan.
//!
//! Steal protocol: a lease is *stale* when its owner is provably dead
//! — pid gone, or pid recycled by a different process (start-token
//! mismatch) — or when the owner looks hung: mtime older than
//! `ttl` plus slack **and**, on a confirming second read one heartbeat
//! later, the heartbeat counter unchanged. The counter is the
//! clock-step-proof signal; the slack absorbs coarse mtime
//! granularity. An unparseable lease (torn claim debris) older than
//! the TTL is salvaged the same way, just without crash attribution.
//! Stealing is serialized per shard by a short-lived [`DirLock`]
//! (`shard-<s>.steal`): the winner re-checks staleness under the lock,
//! reports the victim's in-flight case exactly once via the caller's
//! callback, replaces the lease and releases the steal lock. A shard
//! is retired by an atomic `shard-<s>.done` marker; the lease is
//! removed afterwards.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

use super::lock::{DirLock, LockError};
use super::procs::{pid_alive, proc_start_token, self_token};
use crate::fsio;
use crate::fsio::points;

/// Heartbeat cadence and staleness threshold for shard leases.
#[derive(Debug, Clone)]
pub struct LeaseConfig {
    /// How often a live worker rewrites its lease.
    pub heartbeat: Duration,
    /// Lease age beyond which a live owner counts as hung and the
    /// shard becomes stealable. Keep well above `heartbeat`.
    pub ttl: Duration,
}

impl LeaseConfig {
    /// Slack added to every mtime-vs-now comparison: filesystem mtime
    /// granularity can be a full second, and a small wall-clock step
    /// must not turn a fresh lease stale on its own.
    pub fn mtime_slack(&self) -> Duration {
        (self.heartbeat * 2).max(Duration::from_millis(100))
    }

    /// How long a stealer waits between the two reads that confirm a
    /// hung owner: long enough that a live heartbeat thread must have
    /// bumped the counter in between.
    fn confirm_wait(&self) -> Duration {
        self.heartbeat + self.heartbeat / 2
    }
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            heartbeat: Duration::from_millis(300),
            ttl: Duration::from_secs(5),
        }
    }
}

/// What a lease file records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// Owning worker process.
    pub pid: u32,
    /// The owner's process start token ([`proc_start_token`]), so a
    /// recycled pid cannot impersonate the owner. `None` on platforms
    /// without a start marker.
    pub token: Option<u64>,
    /// Owning worker id (slot index under the supervisor).
    pub worker: usize,
    /// Monotonic heartbeat counter, bumped on every lease rewrite by
    /// the heartbeat thread — the clock-independent freshness signal.
    pub hb: u64,
    /// Short hash of the campaign plan the owner verified against;
    /// `None` for pre-plan-pinning leases.
    pub plan: Option<String>,
    /// The case in flight: `(plan index, stable hash)`. `None` between
    /// cases.
    pub case: Option<(usize, String)>,
}

impl LeaseInfo {
    /// Renders the lease body (one line, trailing newline) — the exact
    /// bytes written to the lease file.
    pub fn render(&self) -> String {
        let tok = match self.token {
            Some(t) => t.to_string(),
            None => "-".to_string(),
        };
        let plan = self.plan.as_deref().unwrap_or("-");
        match &self.case {
            Some((idx, hash)) => format!(
                "pid={} tok={tok} worker={} hb={} plan={plan} case={idx} hash={hash}\n",
                self.pid, self.worker, self.hb
            ),
            None => format!(
                "pid={} tok={tok} worker={} hb={} plan={plan} case=- hash=-\n",
                self.pid, self.worker, self.hb
            ),
        }
    }

    /// Parses a lease body. Returns `None` for anything that does not
    /// round-trip a full record — torn claim debris, interleaved
    /// writes, garbage. Absent `tok`/`hb`/`plan` keys degrade to
    /// conservative defaults so a lease written by an older worker
    /// still parses.
    pub fn parse(text: &str) -> Option<LeaseInfo> {
        let mut pid = None;
        let mut token = None;
        let mut worker = None;
        let mut hb = 0;
        let mut plan = None;
        let mut case_idx: Option<&str> = None;
        let mut hash: Option<&str> = None;
        for token_kv in text.split_whitespace() {
            let (k, v) = token_kv.split_once('=')?;
            match k {
                "pid" => pid = v.parse().ok(),
                "tok" => token = (v != "-").then(|| v.parse().ok()).flatten(),
                "worker" => worker = v.parse().ok(),
                "hb" => hb = v.parse().ok()?,
                "plan" => plan = (v != "-").then(|| v.to_string()),
                "case" => case_idx = Some(v),
                "hash" => hash = Some(v),
                _ => {}
            }
        }
        let case = match (case_idx, hash) {
            (Some("-"), _) | (None, _) => None,
            (Some(idx), Some(h)) if h != "-" => Some((idx.parse().ok()?, h.to_string())),
            _ => None,
        };
        Some(LeaseInfo {
            pid: pid?,
            token,
            worker: worker?,
            hb,
            plan,
            case,
        })
    }
}

/// `<campaign-dir>/shards`.
pub fn shards_dir(campaign_dir: &Path) -> PathBuf {
    campaign_dir.join("shards")
}

/// The lease file guarding `shard`.
pub fn lease_path(campaign_dir: &Path, shard: usize) -> PathBuf {
    shards_dir(campaign_dir).join(format!("shard-{shard}.lease"))
}

/// The retirement marker for `shard`.
pub fn done_path(campaign_dir: &Path, shard: usize) -> PathBuf {
    shards_dir(campaign_dir).join(format!("shard-{shard}.done"))
}

/// The per-shard data directory (shard journal + replay artifacts).
pub fn shard_data_dir(campaign_dir: &Path, shard: usize) -> PathBuf {
    shards_dir(campaign_dir).join(format!("shard-{shard}"))
}

fn steal_lock_name(shard: usize) -> String {
    format!("shard-{shard}.steal")
}

/// Atomically (temp + rename) writes `info` into `path`, refreshing
/// the mtime. Routed through the fault-injectable atomic-write path
/// (size-verified, pid-suffixed temp name so two processes can never
/// collide on it).
fn write_lease(path: &Path, info: &LeaseInfo) -> io::Result<()> {
    let dir = path.parent().unwrap_or(Path::new("."));
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "lease path has no name"))?;
    fsio::write_atomic(
        dir,
        name,
        info.render().as_bytes(),
        points::LEASE_WRITE,
        &fsio::RetryPolicy::io(),
    )
    .map(|_| ())
}

/// One observation of a lease file: the parse result (or `None` for
/// an unparseable body), the mtime-derived age, and the raw mtime
/// (for change detection across the confirming re-read).
struct LeaseRead {
    info: Option<LeaseInfo>,
    age: Duration,
    mtime: Option<SystemTime>,
}

/// Reads a lease plus its age. Outer `None` when the file is missing
/// (claim/steal mid-flight or shard released); `info: None` when the
/// file exists but does not parse — torn claim debris that becomes
/// salvageable once older than the TTL.
fn read_lease(path: &Path) -> Option<LeaseRead> {
    let text = fs::read_to_string(path).ok()?;
    let mtime = fs::metadata(path).ok().and_then(|m| m.modified().ok());
    let age = mtime
        .and_then(|m| SystemTime::now().duration_since(m).ok())
        .unwrap_or(Duration::ZERO);
    Some(LeaseRead {
        info: LeaseInfo::parse(&text),
        age,
        mtime,
    })
}

/// How a lease observation classifies for stealing purposes.
enum Freshness {
    /// Actively owned; leave it alone.
    Fresh,
    /// Provably dead owner (or TTL-expired debris): steal now.
    Stale,
    /// Owner pid alive but mtime past TTL + slack — could be a hung
    /// worker *or* a clock/mtime artifact; needs the heartbeat-counter
    /// double-read to decide.
    Suspect,
}

fn classify(read: &LeaseRead, cfg: &LeaseConfig) -> Freshness {
    let expired = read.age > cfg.ttl + cfg.mtime_slack();
    let Some(info) = &read.info else {
        // Unparseable: claim debris from a torn create, or a writer
        // mid-flight. Only age can arbitrate.
        return if expired { Freshness::Stale } else { Freshness::Fresh };
    };
    if !pid_alive(info.pid) {
        return Freshness::Stale;
    }
    if let (Some(lease_tok), Some(live_tok)) = (info.token, proc_start_token(info.pid)) {
        if lease_tok != live_tok {
            // The pid exists but belongs to a different incarnation:
            // the worker that wrote this lease is dead.
            return Freshness::Stale;
        }
    }
    if expired {
        Freshness::Suspect
    } else {
        Freshness::Fresh
    }
}

/// Result of one claim attempt on a shard.
pub enum ClaimOutcome {
    /// We own the shard now.
    Claimed(LeaseHandle),
    /// Someone else is (apparently) working on it.
    Busy,
    /// The shard is already retired.
    Done,
}

/// Tries to claim `shard`: fresh claim, or steal of a stale lease.
/// `plan` is the short plan hash pinned into the lease so stealers
/// and a re-elected supervisor can verify which campaign epoch the
/// owner was executing. `on_steal` fires exactly once per successful
/// steal, with the victim's lease — the hook where the caller records
/// a crash against the in-flight case. A salvaged unparseable lease
/// fires no callback (there is nothing to attribute).
pub fn try_claim(
    campaign_dir: &Path,
    shard: usize,
    worker: usize,
    cfg: &LeaseConfig,
    plan: Option<&str>,
    on_steal: &mut dyn FnMut(&LeaseInfo),
) -> io::Result<ClaimOutcome> {
    let dir = shards_dir(campaign_dir);
    fs::create_dir_all(&dir)?;
    if done_path(campaign_dir, shard).exists() {
        return Ok(ClaimOutcome::Done);
    }
    let path = lease_path(campaign_dir, shard);
    let mine = LeaseInfo {
        pid: std::process::id(),
        token: self_token(),
        worker,
        hb: 0,
        plan: plan.map(str::to_string),
        case: None,
    };
    // Fast path: unclaimed shard.
    match fsio::create_exclusive(&path, mine.render().as_bytes(), points::LEASE_CLAIM) {
        Ok(()) => {
            return Ok(ClaimOutcome::Claimed(LeaseHandle::start(
                path,
                campaign_dir.to_path_buf(),
                shard,
                mine,
                cfg.heartbeat,
            )));
        }
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
        Err(_) => {
            // The create itself failed (injected fault or real I/O
            // error) after possibly leaving debris. Remove what we
            // created and report Busy: the next scan retries, and if
            // the debris survives it ages into a salvageable lease.
            let _ = fs::remove_file(&path);
            return Ok(ClaimOutcome::Busy);
        }
    }
    // Slow path: existing lease. Only stale ones are worth a steal
    // attempt; checking before taking the steal lock keeps the common
    // busy case lock-free.
    match read_lease(&path) {
        Some(read) if !matches!(classify(&read, cfg), Freshness::Fresh) => {}
        Some(_) => return Ok(ClaimOutcome::Busy),
        // Vanished: a rewrite or steal is in flight right now.
        None => return Ok(ClaimOutcome::Busy),
    }
    let steal = match DirLock::acquire(&dir, &steal_lock_name(shard)) {
        Ok(lock) => lock,
        Err(LockError::Held { .. }) => return Ok(ClaimOutcome::Busy),
        Err(LockError::Io(e)) => return Err(e),
    };
    // Re-check under the steal lock: the owner may have heartbeated,
    // finished, or another stealer may have won before we locked.
    if done_path(campaign_dir, shard).exists() {
        drop(steal);
        return Ok(ClaimOutcome::Done);
    }
    let victim = {
        let Some(first) = read_lease(&path) else {
            drop(steal);
            return Ok(ClaimOutcome::Busy);
        };
        match classify(&first, cfg) {
            Freshness::Fresh => {
                drop(steal);
                return Ok(ClaimOutcome::Busy);
            }
            Freshness::Stale => first.info,
            Freshness::Suspect => {
                // The owner is alive but its lease mtime looks
                // expired. mtime alone is clock-hazardous; wait one
                // heartbeat-and-a-half and require the heartbeat
                // counter (and mtime) to be genuinely frozen before
                // calling it hung.
                std::thread::sleep(cfg.confirm_wait());
                let Some(second) = read_lease(&path) else {
                    drop(steal);
                    return Ok(ClaimOutcome::Busy);
                };
                let frozen = second.mtime == first.mtime
                    && match (&first.info, &second.info) {
                        (Some(a), Some(b)) => a.hb == b.hb && a.pid == b.pid,
                        (None, None) => true,
                        _ => false,
                    };
                if !frozen {
                    drop(steal);
                    return Ok(ClaimOutcome::Busy);
                }
                second.info
            }
        }
    };
    if let Some(victim) = &victim {
        on_steal(victim);
    }
    let _ = fs::remove_file(&path);
    write_lease(&path, &mine)?;
    drop(steal);
    Ok(ClaimOutcome::Claimed(LeaseHandle::start(
        path,
        campaign_dir.to_path_buf(),
        shard,
        mine,
        cfg.heartbeat,
    )))
}

/// Ownership of one claimed shard: heartbeats in the background,
/// records the in-flight case, retires or releases the shard.
///
/// Methods take `&self` so the handle can sit in an `Arc` shared with
/// the pipeline's case gate (which calls [`set_case`](Self::set_case)
/// per case) while the worker loop retires it.
pub struct LeaseHandle {
    path: PathBuf,
    campaign_dir: PathBuf,
    shard: usize,
    info: Arc<Mutex<LeaseInfo>>,
    stop: Arc<AtomicBool>,
    heartbeat: Mutex<Option<std::thread::JoinHandle<()>>>,
    retired: AtomicBool,
}

impl LeaseHandle {
    fn start(
        path: PathBuf,
        campaign_dir: PathBuf,
        shard: usize,
        info: LeaseInfo,
        heartbeat: Duration,
    ) -> Self {
        let info = Arc::new(Mutex::new(info));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let path = path.clone();
            let info = info.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(heartbeat);
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let snapshot = {
                        let mut info = info.lock().unwrap();
                        // The counter is the freshness signal a
                        // stealer trusts over mtime: it only moves
                        // while this thread is actually scheduled.
                        info.hb += 1;
                        info.clone()
                    };
                    let _ = write_lease(&path, &snapshot);
                }
            })
        };
        LeaseHandle {
            path,
            campaign_dir,
            shard,
            info,
            stop,
            heartbeat: Mutex::new(Some(thread)),
            retired: AtomicBool::new(false),
        }
    }

    /// The shard this lease covers.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Records the case about to run; the lease is rewritten
    /// immediately so a stealer sees it even if we die mid-case.
    pub fn set_case(&self, index: usize, hash: &str) {
        let snapshot = {
            let mut info = self.info.lock().unwrap();
            info.case = Some((index, hash.to_string()));
            info.clone()
        };
        let _ = write_lease(&self.path, &snapshot);
    }

    /// Retires the shard: atomic done marker first, then lease
    /// removal — a crash between the two leaves a done shard with a
    /// stale lease, which every reader treats as done.
    pub fn mark_done(&self) -> io::Result<()> {
        let done = done_path(&self.campaign_dir, self.shard);
        let dir = done.parent().unwrap_or(Path::new("."));
        let name = done
            .file_name()
            .and_then(|n| n.to_str())
            .expect("done path has a file name");
        let body = self.info.lock().unwrap().render();
        fsio::write_atomic(
            dir,
            name,
            body.as_bytes(),
            points::LEASE_DONE,
            &fsio::RetryPolicy::io(),
        )?;
        self.retired.store(true, Ordering::SeqCst);
        self.stop_heartbeat();
        let _ = fs::remove_file(&self.path);
        Ok(())
    }

    fn stop_heartbeat(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.heartbeat.lock().unwrap().take() {
            let _ = t.join();
        }
    }
}

impl Drop for LeaseHandle {
    fn drop(&mut self) {
        self.stop_heartbeat();
        if !self.retired.load(Ordering::SeqCst) {
            // Released without retiring (drain, retry): free the shard
            // for the next claimer instead of making them wait out the
            // TTL.
            let _ = fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mocket-lease-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fast() -> LeaseConfig {
        LeaseConfig {
            heartbeat: Duration::from_millis(20),
            ttl: Duration::from_millis(200),
        }
    }

    fn claim(
        dir: &Path,
        shard: usize,
        worker: usize,
        cfg: &LeaseConfig,
        on_steal: &mut dyn FnMut(&LeaseInfo),
    ) -> ClaimOutcome {
        try_claim(dir, shard, worker, cfg, Some("testplan00000000"), on_steal).unwrap()
    }

    #[test]
    fn lease_info_roundtrip() {
        for info in [
            LeaseInfo {
                pid: 42,
                token: None,
                worker: 1,
                hb: 0,
                plan: None,
                case: None,
            },
            LeaseInfo {
                pid: 7,
                token: Some(123456789),
                worker: 0,
                hb: 17,
                plan: Some("cafebabecafebabe".into()),
                case: Some((12, "abcdef0123456789".into())),
            },
        ] {
            assert_eq!(LeaseInfo::parse(&info.render()), Some(info));
        }
        assert_eq!(LeaseInfo::parse("garbage"), None);
        // Pre-hardening lease bodies still parse, with defaults.
        let legacy = LeaseInfo::parse("pid=9 worker=2 case=3 hash=aaaa\n").unwrap();
        assert_eq!(legacy.pid, 9);
        assert_eq!(legacy.token, None);
        assert_eq!(legacy.hb, 0);
        assert_eq!(legacy.plan, None);
        assert_eq!(legacy.case, Some((3, "aaaa".into())));
    }

    #[test]
    fn claim_is_exclusive_and_release_frees() {
        let dir = tmp("excl");
        let mut noop = |_: &LeaseInfo| {};
        let h = match claim(&dir, 0, 0, &fast(), &mut noop) {
            ClaimOutcome::Claimed(h) => h,
            _ => panic!("first claim must win"),
        };
        assert!(matches!(
            claim(&dir, 0, 1, &fast(), &mut noop),
            ClaimOutcome::Busy
        ));
        drop(h);
        assert!(matches!(
            claim(&dir, 0, 1, &fast(), &mut noop),
            ClaimOutcome::Claimed(_)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn done_marker_retires_shard() {
        let dir = tmp("done");
        let mut noop = |_: &LeaseInfo| {};
        let h = match claim(&dir, 3, 0, &fast(), &mut noop) {
            ClaimOutcome::Claimed(h) => h,
            _ => panic!("claim"),
        };
        h.mark_done().unwrap();
        assert!(done_path(&dir, 3).exists());
        assert!(!lease_path(&dir, 3).exists());
        assert!(matches!(
            claim(&dir, 3, 1, &fast(), &mut noop),
            ClaimOutcome::Done
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_owner_lease_is_stolen_with_attribution() {
        let dir = tmp("steal");
        fs::create_dir_all(shards_dir(&dir)).unwrap();
        let mut child = std::process::Command::new("true").spawn().unwrap();
        let dead_pid = child.id();
        child.wait().unwrap();
        write_lease(
            &lease_path(&dir, 0),
            &LeaseInfo {
                pid: dead_pid,
                token: None,
                worker: 9,
                hb: 3,
                plan: Some("testplan00000000".into()),
                case: Some((4, "feedfacefeedface".into())),
            },
        )
        .unwrap();
        let mut stolen: Vec<LeaseInfo> = Vec::new();
        let mut record = |v: &LeaseInfo| stolen.push(v.clone());
        let h = match claim(&dir, 0, 1, &fast(), &mut record) {
            ClaimOutcome::Claimed(h) => h,
            _ => panic!("dead-owner lease must be stealable immediately"),
        };
        assert_eq!(stolen.len(), 1, "exactly one steal report");
        assert_eq!(stolen[0].case, Some((4, "feedfacefeedface".into())));
        assert_eq!(stolen[0].worker, 9);
        // No leftover steal lock.
        assert!(!shards_dir(&dir).join(steal_lock_name(0)).exists());
        drop(h);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recycled_pid_is_recognized_as_dead_owner() {
        let dir = tmp("recycle");
        fs::create_dir_all(shards_dir(&dir)).unwrap();
        // Simulate pid reuse: the lease names *our* (alive) pid but a
        // start token that cannot be ours. Without token checking this
        // lease would be unstealable forever.
        let our_token = self_token();
        if our_token.is_none() {
            // Platform without start tokens: nothing to test.
            return;
        }
        write_lease(
            &lease_path(&dir, 0),
            &LeaseInfo {
                pid: std::process::id(),
                token: Some(our_token.unwrap().wrapping_add(1)),
                worker: 5,
                hb: 1,
                plan: None,
                case: Some((2, "deadbeefdeadbeef".into())),
            },
        )
        .unwrap();
        let mut stolen = 0;
        let mut record = |_: &LeaseInfo| stolen += 1;
        assert!(
            matches!(claim(&dir, 0, 1, &fast(), &mut record), ClaimOutcome::Claimed(_)),
            "token mismatch must make the lease stealable despite a live pid"
        );
        assert_eq!(stolen, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lease_debris_is_salvaged_after_ttl_without_attribution() {
        let dir = tmp("debris");
        fs::create_dir_all(shards_dir(&dir)).unwrap();
        // A torn exclusive create: a strict prefix of a valid lease.
        fs::write(lease_path(&dir, 0), b"pid=123 tok=9 wor").unwrap();
        let cfg = fast();
        let mut stolen = 0;
        let mut record = |_: &LeaseInfo| stolen += 1;
        // Fresh debris is left alone (a writer may be mid-flight).
        assert!(matches!(
            claim(&dir, 0, 1, &cfg, &mut record),
            ClaimOutcome::Busy
        ));
        std::thread::sleep(cfg.ttl + cfg.mtime_slack() + Duration::from_millis(50));
        match claim(&dir, 0, 1, &cfg, &mut record) {
            ClaimOutcome::Claimed(_) => {}
            _ => panic!("expired debris must be salvageable"),
        }
        assert_eq!(stolen, 0, "debris has no case to attribute");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_keeps_live_lease_unstealable_and_bumps_counter() {
        let dir = tmp("hb");
        let cfg = fast();
        let mut noop = |_: &LeaseInfo| {};
        let h = match claim(&dir, 0, 0, &cfg, &mut noop) {
            ClaimOutcome::Claimed(h) => h,
            _ => panic!("claim"),
        };
        h.set_case(2, "aaaa");
        // Wait past the TTL: heartbeats must have kept the mtime fresh
        // and the counter moving.
        std::thread::sleep(cfg.ttl + cfg.heartbeat * 3);
        assert!(matches!(
            claim(&dir, 0, 1, &cfg, &mut noop),
            ClaimOutcome::Busy
        ));
        let read = read_lease(&lease_path(&dir, 0)).unwrap();
        let info = read.info.expect("heartbeat never writes a torn lease");
        assert_eq!(info.case, Some((2, "aaaa".into())));
        assert!(info.hb > 0, "heartbeat must advance the counter");
        assert!(
            read.age < cfg.ttl,
            "heartbeat must keep the lease mtime fresh"
        );
        drop(h);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_mtime_alone_does_not_kill_a_beating_owner() {
        let dir = tmp("clockstep");
        let cfg = fast();
        fs::create_dir_all(shards_dir(&dir)).unwrap();
        let path = lease_path(&dir, 0);
        // Our own pid, correct token, and a background thread that
        // keeps bumping hb — but we backdate the file's mtime past the
        // TTL before every probe, simulating a clock step / coarse
        // mtime. The double-read must see the counter move and refuse
        // the steal.
        let stop = Arc::new(AtomicBool::new(false));
        let beat = {
            let path = path.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut hb = 0;
                while !stop.load(Ordering::SeqCst) {
                    hb += 1;
                    let _ = write_lease(
                        &path,
                        &LeaseInfo {
                            pid: std::process::id(),
                            token: self_token(),
                            worker: 0,
                            hb,
                            plan: None,
                            case: None,
                        },
                    );
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        // Give the beater time to create the lease.
        std::thread::sleep(Duration::from_millis(30));
        // classify() sees age ≈ 0 (we cannot backdate mtime without
        // utimensat), so drive the Suspect path directly: a Suspect
        // verdict must be refused when hb moves between the two reads.
        let first = read_lease(&path).expect("lease exists");
        std::thread::sleep(cfg.confirm_wait());
        let second = read_lease(&path).expect("lease exists");
        let moved = match (&first.info, &second.info) {
            (Some(a), Some(b)) => a.hb != b.hb || second.mtime != first.mtime,
            _ => true,
        };
        assert!(moved, "a live heartbeat must be observable between reads");
        stop.store(true, Ordering::SeqCst);
        beat.join().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
