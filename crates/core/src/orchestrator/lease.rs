//! Per-shard lease files: the campaign's file-backed work queue.
//!
//! Every shard of the planned case set is guarded by one lease file
//! under `<campaign-dir>/shards/`. A worker claims a shard by creating
//! the lease exclusively, then keeps it fresh with a heartbeat thread
//! (atomic temp+rename rewrite, so readers never see a torn lease and
//! the mtime doubles as the heartbeat clock). The lease body names the
//! owner pid and the case currently in flight, which is what lets a
//! stealer attribute a crash to a specific case.
//!
//! Steal protocol: a lease is *stale* when its owner pid is dead or
//! its mtime is older than the TTL (a hung worker). Stealing is
//! serialized per shard by a short-lived [`DirLock`]
//! (`shard-<s>.steal`): the winner re-checks staleness under the lock,
//! reports the victim's in-flight case exactly once via the caller's
//! callback, replaces the lease and releases the steal lock. A shard
//! is retired by an atomic `shard-<s>.done` marker; the lease is
//! removed afterwards.

use std::fs;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

use super::lock::{DirLock, LockError};
use super::procs::pid_alive;

/// Heartbeat cadence and staleness threshold for shard leases.
#[derive(Debug, Clone)]
pub struct LeaseConfig {
    /// How often a live worker rewrites its lease.
    pub heartbeat: Duration,
    /// Lease age beyond which a live owner counts as hung and the
    /// shard becomes stealable. Keep well above `heartbeat`.
    pub ttl: Duration,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            heartbeat: Duration::from_millis(300),
            ttl: Duration::from_secs(5),
        }
    }
}

/// What a lease file records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// Owning worker process.
    pub pid: u32,
    /// Owning worker id (slot index under the supervisor).
    pub worker: usize,
    /// The case in flight: `(plan index, stable hash)`. `None` between
    /// cases.
    pub case: Option<(usize, String)>,
}

impl LeaseInfo {
    fn render(&self) -> String {
        match &self.case {
            Some((idx, hash)) => {
                format!(
                    "pid={} worker={} case={idx} hash={hash}\n",
                    self.pid, self.worker
                )
            }
            None => format!("pid={} worker={} case=- hash=-\n", self.pid, self.worker),
        }
    }

    pub(crate) fn parse(text: &str) -> Option<LeaseInfo> {
        let mut pid = None;
        let mut worker = None;
        let mut case_idx: Option<&str> = None;
        let mut hash: Option<&str> = None;
        for token in text.split_whitespace() {
            let (k, v) = token.split_once('=')?;
            match k {
                "pid" => pid = v.parse().ok(),
                "worker" => worker = v.parse().ok(),
                "case" => case_idx = Some(v),
                "hash" => hash = Some(v),
                _ => {}
            }
        }
        let case = match (case_idx, hash) {
            (Some("-"), _) | (None, _) => None,
            (Some(idx), Some(h)) if h != "-" => Some((idx.parse().ok()?, h.to_string())),
            _ => None,
        };
        Some(LeaseInfo {
            pid: pid?,
            worker: worker?,
            case,
        })
    }
}

/// `<campaign-dir>/shards`.
pub fn shards_dir(campaign_dir: &Path) -> PathBuf {
    campaign_dir.join("shards")
}

/// The lease file guarding `shard`.
pub fn lease_path(campaign_dir: &Path, shard: usize) -> PathBuf {
    shards_dir(campaign_dir).join(format!("shard-{shard}.lease"))
}

/// The retirement marker for `shard`.
pub fn done_path(campaign_dir: &Path, shard: usize) -> PathBuf {
    shards_dir(campaign_dir).join(format!("shard-{shard}.done"))
}

/// The per-shard data directory (shard journal + replay artifacts).
pub fn shard_data_dir(campaign_dir: &Path, shard: usize) -> PathBuf {
    shards_dir(campaign_dir).join(format!("shard-{shard}"))
}

fn steal_lock_name(shard: usize) -> String {
    format!("shard-{shard}.steal")
}

/// Atomically (temp + rename) writes `info` into `path`, refreshing
/// the mtime. The temp name carries the pid so two processes can never
/// collide on it.
fn write_lease(path: &Path, info: &LeaseInfo) -> io::Result<()> {
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(info.render().as_bytes())?;
        f.flush()?;
    }
    fs::rename(&tmp, path)
}

/// Reads a lease plus its age. `None` when the file is missing or
/// unreadable (a steal mid-flight).
fn read_lease(path: &Path) -> Option<(LeaseInfo, Duration)> {
    let info = LeaseInfo::parse(&fs::read_to_string(path).ok()?)?;
    let age = fs::metadata(path)
        .ok()?
        .modified()
        .ok()
        .and_then(|m| SystemTime::now().duration_since(m).ok())
        .unwrap_or(Duration::ZERO);
    Some((info, age))
}

/// Whether the lease is free for the taking.
fn is_stale(info: &LeaseInfo, age: Duration, cfg: &LeaseConfig) -> bool {
    !pid_alive(info.pid) || age > cfg.ttl
}

/// Result of one claim attempt on a shard.
pub enum ClaimOutcome {
    /// We own the shard now.
    Claimed(LeaseHandle),
    /// Someone else is (apparently) working on it.
    Busy,
    /// The shard is already retired.
    Done,
}

/// Tries to claim `shard`: fresh claim, or steal of a stale lease.
/// `on_steal` fires exactly once per successful steal, with the
/// victim's lease — the hook where the caller records a crash against
/// the in-flight case.
pub fn try_claim(
    campaign_dir: &Path,
    shard: usize,
    worker: usize,
    cfg: &LeaseConfig,
    on_steal: &mut dyn FnMut(&LeaseInfo),
) -> io::Result<ClaimOutcome> {
    let dir = shards_dir(campaign_dir);
    fs::create_dir_all(&dir)?;
    if done_path(campaign_dir, shard).exists() {
        return Ok(ClaimOutcome::Done);
    }
    let path = lease_path(campaign_dir, shard);
    let mine = LeaseInfo {
        pid: std::process::id(),
        worker,
        case: None,
    };
    // Fast path: unclaimed shard.
    match fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&path)
    {
        Ok(mut file) => {
            file.write_all(mine.render().as_bytes())?;
            file.flush()?;
            return Ok(ClaimOutcome::Claimed(LeaseHandle::start(
                path,
                campaign_dir.to_path_buf(),
                shard,
                mine,
                cfg.heartbeat,
            )));
        }
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
        Err(e) => return Err(e),
    }
    // Slow path: existing lease. Only stale ones are worth a steal
    // attempt; checking before taking the steal lock keeps the common
    // busy case lock-free.
    match read_lease(&path) {
        Some((info, age)) if is_stale(&info, age, cfg) => {}
        Some(_) => return Ok(ClaimOutcome::Busy),
        // Unreadable: a rewrite or steal is in flight right now.
        None => return Ok(ClaimOutcome::Busy),
    }
    let steal = match DirLock::acquire(&dir, &steal_lock_name(shard)) {
        Ok(lock) => lock,
        Err(LockError::Held { .. }) => return Ok(ClaimOutcome::Busy),
        Err(LockError::Io(e)) => return Err(e),
    };
    // Re-check under the steal lock: the owner may have heartbeated,
    // finished, or another stealer may have won before we locked.
    if done_path(campaign_dir, shard).exists() {
        drop(steal);
        return Ok(ClaimOutcome::Done);
    }
    let victim = match read_lease(&path) {
        Some((info, age)) if is_stale(&info, age, cfg) => info,
        _ => {
            drop(steal);
            return Ok(ClaimOutcome::Busy);
        }
    };
    on_steal(&victim);
    let _ = fs::remove_file(&path);
    write_lease(&path, &mine)?;
    drop(steal);
    Ok(ClaimOutcome::Claimed(LeaseHandle::start(
        path,
        campaign_dir.to_path_buf(),
        shard,
        mine,
        cfg.heartbeat,
    )))
}

/// Ownership of one claimed shard: heartbeats in the background,
/// records the in-flight case, retires or releases the shard.
///
/// Methods take `&self` so the handle can sit in an `Arc` shared with
/// the pipeline's case gate (which calls [`set_case`](Self::set_case)
/// per case) while the worker loop retires it.
pub struct LeaseHandle {
    path: PathBuf,
    campaign_dir: PathBuf,
    shard: usize,
    info: Arc<Mutex<LeaseInfo>>,
    stop: Arc<AtomicBool>,
    heartbeat: Mutex<Option<std::thread::JoinHandle<()>>>,
    retired: AtomicBool,
}

impl LeaseHandle {
    fn start(
        path: PathBuf,
        campaign_dir: PathBuf,
        shard: usize,
        info: LeaseInfo,
        heartbeat: Duration,
    ) -> Self {
        let info = Arc::new(Mutex::new(info));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let path = path.clone();
            let info = info.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(heartbeat);
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let snapshot = info.lock().unwrap().clone();
                    let _ = write_lease(&path, &snapshot);
                }
            })
        };
        LeaseHandle {
            path,
            campaign_dir,
            shard,
            info,
            stop,
            heartbeat: Mutex::new(Some(thread)),
            retired: AtomicBool::new(false),
        }
    }

    /// The shard this lease covers.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Records the case about to run; the lease is rewritten
    /// immediately so a stealer sees it even if we die mid-case.
    pub fn set_case(&self, index: usize, hash: &str) {
        let snapshot = {
            let mut info = self.info.lock().unwrap();
            info.case = Some((index, hash.to_string()));
            info.clone()
        };
        let _ = write_lease(&self.path, &snapshot);
    }

    /// Retires the shard: atomic done marker first, then lease
    /// removal — a crash between the two leaves a done shard with a
    /// stale lease, which every reader treats as done.
    pub fn mark_done(&self) -> io::Result<()> {
        let done = done_path(&self.campaign_dir, self.shard);
        let tmp = done.with_extension(format!("tmp-{}", std::process::id()));
        fs::write(&tmp, self.info.lock().unwrap().render())?;
        fs::rename(&tmp, &done)?;
        self.retired.store(true, Ordering::SeqCst);
        self.stop_heartbeat();
        let _ = fs::remove_file(&self.path);
        Ok(())
    }

    fn stop_heartbeat(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.heartbeat.lock().unwrap().take() {
            let _ = t.join();
        }
    }
}

impl Drop for LeaseHandle {
    fn drop(&mut self) {
        self.stop_heartbeat();
        if !self.retired.load(Ordering::SeqCst) {
            // Released without retiring (drain, retry): free the shard
            // for the next claimer instead of making them wait out the
            // TTL.
            let _ = fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mocket-lease-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fast() -> LeaseConfig {
        LeaseConfig {
            heartbeat: Duration::from_millis(20),
            ttl: Duration::from_millis(200),
        }
    }

    #[test]
    fn lease_info_roundtrip() {
        for info in [
            LeaseInfo {
                pid: 42,
                worker: 1,
                case: None,
            },
            LeaseInfo {
                pid: 7,
                worker: 0,
                case: Some((12, "abcdef0123456789".into())),
            },
        ] {
            assert_eq!(LeaseInfo::parse(&info.render()), Some(info));
        }
        assert_eq!(LeaseInfo::parse("garbage"), None);
    }

    #[test]
    fn claim_is_exclusive_and_release_frees() {
        let dir = tmp("excl");
        let mut noop = |_: &LeaseInfo| {};
        let h = match try_claim(&dir, 0, 0, &fast(), &mut noop).unwrap() {
            ClaimOutcome::Claimed(h) => h,
            _ => panic!("first claim must win"),
        };
        assert!(matches!(
            try_claim(&dir, 0, 1, &fast(), &mut noop).unwrap(),
            ClaimOutcome::Busy
        ));
        drop(h);
        assert!(matches!(
            try_claim(&dir, 0, 1, &fast(), &mut noop).unwrap(),
            ClaimOutcome::Claimed(_)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn done_marker_retires_shard() {
        let dir = tmp("done");
        let mut noop = |_: &LeaseInfo| {};
        let h = match try_claim(&dir, 3, 0, &fast(), &mut noop).unwrap() {
            ClaimOutcome::Claimed(h) => h,
            _ => panic!("claim"),
        };
        h.mark_done().unwrap();
        assert!(done_path(&dir, 3).exists());
        assert!(!lease_path(&dir, 3).exists());
        assert!(matches!(
            try_claim(&dir, 3, 1, &fast(), &mut noop).unwrap(),
            ClaimOutcome::Done
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_owner_lease_is_stolen_with_attribution() {
        let dir = tmp("steal");
        fs::create_dir_all(shards_dir(&dir)).unwrap();
        let mut child = std::process::Command::new("true").spawn().unwrap();
        let dead_pid = child.id();
        child.wait().unwrap();
        write_lease(
            &lease_path(&dir, 0),
            &LeaseInfo {
                pid: dead_pid,
                worker: 9,
                case: Some((4, "feedfacefeedface".into())),
            },
        )
        .unwrap();
        let mut stolen: Vec<LeaseInfo> = Vec::new();
        let mut record = |v: &LeaseInfo| stolen.push(v.clone());
        let h = match try_claim(&dir, 0, 1, &fast(), &mut record).unwrap() {
            ClaimOutcome::Claimed(h) => h,
            _ => panic!("dead-owner lease must be stealable immediately"),
        };
        assert_eq!(stolen.len(), 1, "exactly one steal report");
        assert_eq!(stolen[0].case, Some((4, "feedfacefeedface".into())));
        assert_eq!(stolen[0].worker, 9);
        // No leftover steal lock.
        assert!(!shards_dir(&dir).join(steal_lock_name(0)).exists());
        drop(h);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_keeps_live_lease_unstealable() {
        let dir = tmp("hb");
        let cfg = fast();
        let mut noop = |_: &LeaseInfo| {};
        let h = match try_claim(&dir, 0, 0, &cfg, &mut noop).unwrap() {
            ClaimOutcome::Claimed(h) => h,
            _ => panic!("claim"),
        };
        h.set_case(2, "aaaa");
        // Wait past the TTL: heartbeats must have kept the mtime fresh
        // (and our pid is alive regardless, but assert the freshness
        // path too via the recorded age check inside try_claim).
        std::thread::sleep(cfg.ttl + cfg.heartbeat * 3);
        assert!(matches!(
            try_claim(&dir, 0, 1, &cfg, &mut noop).unwrap(),
            ClaimOutcome::Busy
        ));
        let (info, age) = read_lease(&lease_path(&dir, 0)).unwrap();
        assert_eq!(info.case, Some((2, "aaaa".into())));
        assert!(age < cfg.ttl, "heartbeat must keep the lease fresh");
        drop(h);
        let _ = fs::remove_dir_all(&dir);
    }
}
