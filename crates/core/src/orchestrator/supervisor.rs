//! The campaign supervisor: spawns crash-isolated workers, restarts
//! the dead, kills the hung, and converts SIGINT into a graceful
//! drain.
//!
//! The supervisor itself never touches cases. It owns process
//! lifecycle only; all work-queue state lives in the shard lease
//! files, so a supervisor crash loses nothing either — re-running the
//! campaign resumes from the journals.
//!
//! Hang detection is two-pronged. A frozen worker (SIGSTOP, swap
//! death) stops heartbeating, its lease mtime goes stale past the
//! TTL, and both the supervisor (kill) and its peers (steal) notice.
//! A *hung* worker — one live thread stuck inside a case while the
//! heartbeat thread keeps the lease fresh — is caught by the
//! supervisor tracking how long each lease has shown the *same*
//! in-flight case: past `hang_timeout`, the worker is SIGKILLed and
//! its shard is stolen like any other crash.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Child;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant, SystemTime};

use super::lease::{done_path, lease_path, shards_dir, LeaseConfig, LeaseInfo};
use super::procs::install_sigint_flag;
use super::worker::{drain_requested, request_drain};

/// Worker exit code declaring the pinned plan inconsistent with what
/// the worker regenerated — fatal for the whole campaign, never
/// retried (a restart would fail identically).
pub const EXIT_PLAN_MISMATCH: i32 = 64;

/// Supervisor configuration.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The campaign directory.
    pub campaign_dir: PathBuf,
    /// Worker process count.
    pub workers: usize,
    /// Lease parameters (shared with the workers).
    pub lease: LeaseConfig,
    /// How long one case may stay in flight on a fresh lease before
    /// its worker counts as hung and is SIGKILLed.
    pub hang_timeout: Duration,
    /// Restart budget per worker slot (exponential backoff between
    /// restarts).
    pub max_restarts: usize,
    /// First restart delay; doubled per restart, capped at 5s.
    pub backoff_base: Duration,
    /// Render progress lines to stderr.
    pub progress: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            campaign_dir: PathBuf::new(),
            workers: 2,
            lease: LeaseConfig::default(),
            hang_timeout: Duration::from_secs(30),
            max_restarts: 5,
            backoff_base: Duration::from_millis(50),
            progress: false,
        }
    }
}

/// How a supervised campaign ended.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The campaign ended via a drain request (SIGINT or injected);
    /// remaining shards are resumable.
    pub drained: bool,
    /// Shards retired by the time the supervisor returned.
    pub shards_done: usize,
    /// Total shards in the plan.
    pub shard_count: usize,
    /// Worker restarts performed.
    pub restarts: usize,
    /// Workers SIGKILLed for hanging.
    pub hung_killed: usize,
    /// A fatal condition (plan mismatch, exhausted restart budget).
    /// The campaign directory stays resumable regardless.
    pub fatal: Option<String>,
}

impl CampaignOutcome {
    /// Whether every shard was retired.
    pub fn completed(&self) -> bool {
        self.shards_done == self.shard_count && self.fatal.is_none()
    }
}

struct Slot {
    child: Option<Child>,
    restarts: usize,
    next_restart: Option<Instant>,
    /// Exited cleanly (0) or gave up; never respawned.
    finished: bool,
}

/// Per-shard in-flight tracking for hung-case detection.
struct InflightWatch {
    case: usize,
    pid: u32,
    since: Instant,
}

fn count_done(campaign_dir: &Path, shard_count: usize) -> usize {
    (0..shard_count)
        .filter(|&s| done_path(campaign_dir, s).exists())
        .count()
}

fn read_lease_raw(path: &Path) -> Option<(LeaseInfo, Duration)> {
    let info = LeaseInfo::parse(&fs::read_to_string(path).ok()?)?;
    let age = fs::metadata(path)
        .ok()?
        .modified()
        .ok()
        .and_then(|m| SystemTime::now().duration_since(m).ok())
        .unwrap_or(Duration::ZERO);
    Some((info, age))
}

/// Runs the supervision loop until the campaign completes, drains, or
/// hits a fatal condition. `spawn_worker` launches worker `id` (same
/// binary, hidden subcommand) with its output redirected wherever the
/// caller wants it.
pub fn supervise(
    cfg: &SupervisorConfig,
    shard_count: usize,
    spawn_worker: &mut dyn FnMut(usize) -> io::Result<Child>,
) -> io::Result<CampaignOutcome> {
    let interrupted = install_sigint_flag();
    interrupted.store(false, Ordering::SeqCst);
    let progress = |line: &str| {
        if cfg.progress {
            eprintln!("[mocket-campaign] {line}");
        }
    };

    let mut slots: Vec<Slot> = Vec::with_capacity(cfg.workers.max(1));
    for id in 0..cfg.workers.max(1) {
        slots.push(Slot {
            child: Some(spawn_worker(id)?),
            restarts: 0,
            next_restart: None,
            finished: false,
        });
    }

    let mut restarts_total = 0usize;
    let mut hung_killed = 0usize;
    let mut fatal: Option<String> = None;
    let mut inflight: HashMap<usize, InflightWatch> = HashMap::new();
    let tick = Duration::from_millis(100);

    loop {
        // SIGINT → drain marker, once. Workers ignore SIGINT
        // themselves; they see the marker at their next case boundary.
        if interrupted.swap(false, Ordering::SeqCst) && !drain_requested(&cfg.campaign_dir) {
            progress("SIGINT: draining in-flight cases (campaign stays resumable)");
            request_drain(&cfg.campaign_dir)?;
        }
        let draining = drain_requested(&cfg.campaign_dir);
        let shards_done = count_done(&cfg.campaign_dir, shard_count);
        let work_left = shards_done < shard_count;

        // Reap exits; decide restarts.
        for (id, slot) in slots.iter_mut().enumerate() {
            let Some(child) = slot.child.as_mut() else {
                continue;
            };
            match child.try_wait()? {
                None => {}
                Some(status) => {
                    slot.child = None;
                    if status.success() {
                        slot.finished = true;
                    } else if status.code() == Some(EXIT_PLAN_MISMATCH) {
                        slot.finished = true;
                        if fatal.is_none() {
                            fatal = Some(format!(
                                "worker {id} reports a plan mismatch (exit {EXIT_PLAN_MISMATCH}); \
                                 the campaign directory belongs to a different target/bounds"
                            ));
                            // Stop the others at their next boundary.
                            request_drain(&cfg.campaign_dir)?;
                        }
                    } else if work_left && !draining && fatal.is_none() {
                        if slot.restarts < cfg.max_restarts {
                            let exp = slot.restarts.min(16) as u32;
                            let delay =
                                (cfg.backoff_base * 2u32.pow(exp)).min(Duration::from_secs(5));
                            progress(&format!(
                                "worker {id} died ({status}); restart #{} in {delay:?}",
                                slot.restarts + 1
                            ));
                            slot.next_restart = Some(Instant::now() + delay);
                        } else {
                            progress(&format!(
                                "worker {id} died ({status}); restart budget exhausted"
                            ));
                            slot.finished = true;
                        }
                    } else {
                        slot.finished = true;
                    }
                }
            }
        }

        // Fire due restarts.
        if work_left && !draining && fatal.is_none() {
            for (id, slot) in slots.iter_mut().enumerate() {
                if slot.child.is_none() && !slot.finished {
                    if let Some(due) = slot.next_restart {
                        if Instant::now() >= due {
                            slot.next_restart = None;
                            slot.restarts += 1;
                            restarts_total += 1;
                            slot.child = Some(spawn_worker(id)?);
                        }
                    }
                }
            }
        }

        // Hung-worker detection: a lease whose *same* in-flight case
        // has been pinned past hang_timeout (heartbeat thread may well
        // still be refreshing the mtime), or whose mtime went stale
        // past the TTL while its pid is one of our live children.
        let own_pids: Vec<u32> = slots
            .iter()
            .filter_map(|s| s.child.as_ref().map(|c| c.id()))
            .collect();
        for shard in 0..shard_count {
            let path = lease_path(&cfg.campaign_dir, shard);
            let Some((info, age)) = read_lease_raw(&path) else {
                inflight.remove(&shard);
                continue;
            };
            if !own_pids.contains(&info.pid) {
                inflight.remove(&shard);
                continue;
            }
            let hung_case = match info.case {
                Some((case, _)) => {
                    let watch = inflight.entry(shard).or_insert_with(|| InflightWatch {
                        case,
                        pid: info.pid,
                        since: Instant::now(),
                    });
                    if watch.case != case || watch.pid != info.pid {
                        *watch = InflightWatch {
                            case,
                            pid: info.pid,
                            since: Instant::now(),
                        };
                    }
                    watch.since.elapsed() > cfg.hang_timeout
                }
                None => {
                    inflight.remove(&shard);
                    false
                }
            };
            if hung_case || age > cfg.lease.ttl {
                for slot in slots.iter_mut() {
                    if let Some(child) = slot.child.as_mut() {
                        if child.id() == info.pid {
                            progress(&format!(
                                "worker pid {} hung on shard {shard} \
                                 (case pinned or heartbeat stale); killing",
                                info.pid
                            ));
                            let _ = child.kill();
                            hung_killed += 1;
                        }
                    }
                }
                inflight.remove(&shard);
            }
        }

        let running = slots.iter().filter(|s| s.child.is_some()).count();
        let pending_restart = slots
            .iter()
            .any(|s| s.child.is_none() && !s.finished && s.next_restart.is_some());
        let shards_done = count_done(&cfg.campaign_dir, shard_count);

        if shards_done == shard_count && running == 0 {
            return Ok(CampaignOutcome {
                drained: false,
                shards_done,
                shard_count,
                restarts: restarts_total,
                hung_killed,
                fatal,
            });
        }
        if (draining || fatal.is_some()) && running == 0 && !pending_restart {
            return Ok(CampaignOutcome {
                drained: draining,
                shards_done,
                shard_count,
                restarts: restarts_total,
                hung_killed,
                fatal,
            });
        }
        if running == 0 && !pending_restart {
            // Every worker is gone, shards remain, no drain: either
            // all slots exhausted their budget, or everyone exited 0
            // while a hung peer still nominally owned a shard whose
            // lease has since gone stale. Respawn one worker if any
            // budget remains; otherwise give up fatally (resumable).
            if let Some((id, slot)) = slots
                .iter_mut()
                .enumerate()
                .find(|(_, s)| s.restarts < cfg.max_restarts)
            {
                progress(&format!(
                    "shards remain with no workers alive; respawning worker {id}"
                ));
                slot.finished = false;
                slot.restarts += 1;
                restarts_total += 1;
                slot.child = Some(spawn_worker(id)?);
            } else if fatal.is_none() {
                return Ok(CampaignOutcome {
                    drained: false,
                    shards_done,
                    shard_count,
                    restarts: restarts_total,
                    hung_killed,
                    fatal: Some(
                        "all workers exhausted their restart budget with shards \
                         remaining; re-run the campaign to resume"
                            .into(),
                    ),
                });
            }
        }

        std::thread::sleep(tick);
    }
}

/// Removes leftover shard leases whose owners are dead — cosmetic
/// cleanup at campaign start so `ls shards/` reflects reality.
pub fn sweep_dead_leases(campaign_dir: &Path, shard_count: usize) {
    let dir = shards_dir(campaign_dir);
    if !dir.exists() {
        return;
    }
    for shard in 0..shard_count {
        let path = lease_path(campaign_dir, shard);
        if let Some((info, _)) = read_lease_raw(&path) {
            if !super::procs::pid_alive(info.pid) {
                let _ = fs::remove_file(&path);
            }
        }
    }
}
