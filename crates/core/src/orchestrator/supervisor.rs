//! The campaign supervisor: spawns crash-isolated workers, restarts
//! the dead, kills the hung, converts SIGINT into a graceful drain —
//! and survives being SIGKILLed itself.
//!
//! The supervisor never touches cases. It owns process lifecycle only;
//! all work-queue state lives in the shard lease files, so a
//! supervisor crash loses nothing — re-running the campaign on the
//! same directory resumes from the journals. To make that resumption
//! seamless the supervisor keeps its own append-only journal
//! (`supervisor.log`): every election, spawn and reap is recorded with
//! the pid, its start token and the pinned plan hash. A re-elected
//! supervisor replays the journal, finds workers from the previous
//! incarnation that are still alive (pid *and* start token must match,
//! so a recycled pid is never adopted) and takes them over instead of
//! spawning doubles; dead slots are restarted under the unified
//! [`RetryPolicy`].
//!
//! Hang detection is two-pronged. A frozen worker (SIGSTOP, swap
//! death) stops heartbeating, its lease mtime goes stale past the
//! TTL, and both the supervisor (kill) and its peers (steal) notice.
//! A *hung* worker — one live thread stuck inside a case while the
//! heartbeat thread keeps the lease fresh — is caught by the
//! supervisor tracking how long each lease has shown the *same*
//! in-flight case: past `hang_timeout`, the worker is SIGKILLed and
//! its shard is stolen like any other crash.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Child;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant, SystemTime};

use crate::fsio;
use crate::fsio::points;
use crate::fsio::RetryPolicy;

use super::lease::{done_path, lease_path, shards_dir, LeaseConfig, LeaseInfo};
use super::procs::{install_sigint_flag, same_process, self_token, send_signal, SIGKILL};
use super::worker::{drain_requested, request_drain};

/// Worker exit code declaring the pinned plan inconsistent with what
/// the worker regenerated — fatal for the whole campaign, never
/// retried (a restart would fail identically).
pub const EXIT_PLAN_MISMATCH: i32 = 64;

/// Test hook: when set to a shard count `N`, the supervisor SIGKILLs
/// *itself* the first time it observes at least `N` retired shards.
/// One-shot per campaign directory (guarded by the
/// `supervisor-crash-injected` marker), so the re-run that takes over
/// is not crashed again.
pub const INJECT_SUPERVISOR_CRASH_ENV: &str = "MOCKET_CAMPAIGN_INJECT_SUPERVISOR_CRASH";

const INJECT_SUPERVISOR_CRASH_MARKER: &str = "supervisor-crash-injected";

/// Supervisor configuration.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The campaign directory.
    pub campaign_dir: PathBuf,
    /// Worker process count.
    pub workers: usize,
    /// Lease parameters (shared with the workers).
    pub lease: LeaseConfig,
    /// How long one case may stay in flight on a fresh lease before
    /// its worker counts as hung and is SIGKILLed.
    pub hang_timeout: Duration,
    /// Restart budget and backoff per worker slot (the unified retry
    /// policy shape: `attempts` restarts, exponential backoff from
    /// `backoff` capped at `max_backoff`).
    pub restart: RetryPolicy,
    /// The pinned plan's stable hash, recorded in the supervisor
    /// journal so a re-elected supervisor only adopts workers from the
    /// same campaign epoch.
    pub plan_hash: String,
    /// Render progress lines to stderr.
    pub progress: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            campaign_dir: PathBuf::new(),
            workers: 2,
            lease: LeaseConfig::default(),
            hang_timeout: Duration::from_secs(30),
            restart: RetryPolicy {
                attempts: 5,
                backoff: Duration::from_millis(50),
                max_backoff: Duration::from_secs(5),
            },
            plan_hash: String::new(),
            progress: false,
        }
    }
}

/// How a supervised campaign ended.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The campaign ended via a drain request (SIGINT or injected);
    /// remaining shards are resumable.
    pub drained: bool,
    /// Shards retired by the time the supervisor returned.
    pub shards_done: usize,
    /// Total shards in the plan.
    pub shard_count: usize,
    /// Worker restarts performed.
    pub restarts: usize,
    /// Workers SIGKILLed for hanging.
    pub hung_killed: usize,
    /// Live workers adopted from a previous supervisor incarnation.
    pub adopted: usize,
    /// A fatal condition (plan mismatch, exhausted restart budget).
    /// The campaign directory stays resumable regardless.
    pub fatal: Option<String>,
}

impl CampaignOutcome {
    /// Whether every shard was retired.
    pub fn completed(&self) -> bool {
        self.shards_done == self.shard_count && self.fatal.is_none()
    }
}

/// One record in the supervisor journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorEvent {
    /// A supervisor took over the campaign directory.
    Elect {
        /// The supervisor's pid.
        pid: u32,
        /// Its start token, when the platform provides one.
        token: Option<u64>,
        /// The plan hash it runs under.
        plan: String,
    },
    /// A worker process was spawned (or adopted — an adoption re-logs
    /// the worker under the new supervisor so the *next* incarnation
    /// still finds it).
    Spawn {
        /// Worker slot id.
        worker: usize,
        /// The worker's pid.
        pid: u32,
        /// Its start token.
        token: Option<u64>,
        /// The plan hash it was launched under.
        plan: String,
    },
    /// A worker exit was observed.
    Reap {
        /// Worker slot id.
        worker: usize,
        /// The pid that exited.
        pid: u32,
    },
}

fn render_token(token: Option<u64>) -> String {
    match token {
        Some(t) => t.to_string(),
        None => "-".to_string(),
    }
}

impl SupervisorEvent {
    /// Renders the single journal line for this event (no newline).
    pub fn render_line(&self) -> String {
        match self {
            SupervisorEvent::Elect { pid, token, plan } => {
                format!("elect pid={pid} tok={} plan={plan}", render_token(*token))
            }
            SupervisorEvent::Spawn {
                worker,
                pid,
                token,
                plan,
            } => format!(
                "spawn worker={worker} pid={pid} tok={} plan={plan}",
                render_token(*token)
            ),
            SupervisorEvent::Reap { worker, pid } => {
                format!("reap worker={worker} pid={pid}")
            }
        }
    }

    /// Parses one journal line. `None` for anything malformed — a torn
    /// append salvages to "skip the line", never a panic.
    pub fn parse_line(line: &str) -> Option<SupervisorEvent> {
        let mut fields = HashMap::new();
        let mut parts = line.split_whitespace();
        let head = parts.next()?;
        for tok in parts {
            let (k, v) = tok.split_once('=')?;
            fields.insert(k, v);
        }
        let pid: u32 = fields.get("pid")?.parse().ok()?;
        let token = match fields.get("tok") {
            Some(&"-") | None => None,
            Some(t) => Some(t.parse().ok()?),
        };
        match head {
            "elect" => Some(SupervisorEvent::Elect {
                pid,
                token,
                plan: fields.get("plan")?.to_string(),
            }),
            "spawn" => Some(SupervisorEvent::Spawn {
                worker: fields.get("worker")?.parse().ok()?,
                pid,
                token,
                plan: fields.get("plan")?.to_string(),
            }),
            "reap" => Some(SupervisorEvent::Reap {
                worker: fields.get("worker")?.parse().ok()?,
                pid,
            }),
            _ => None,
        }
    }
}

/// The supervisor's append-only journal (`supervisor.log`): process
/// lifecycle facts a re-elected supervisor needs to adopt the previous
/// incarnation's live workers. Appends flow through the
/// fault-injectable I/O layer; loading salvages the valid prefix and
/// skips torn or garbage lines.
pub struct SupervisorJournal {
    path: PathBuf,
}

impl SupervisorJournal {
    /// The journal's file name inside a campaign directory.
    pub const FILE_NAME: &'static str = "supervisor.log";

    /// Opens (creating lazily on first append) the journal in `dir`.
    pub fn open(dir: &Path) -> SupervisorJournal {
        SupervisorJournal {
            path: dir.join(Self::FILE_NAME),
        }
    }

    /// Appends one event. Best-effort callers may ignore the error —
    /// losing a journal line degrades adoption (a doubled worker loses
    /// the lease race and idles), never correctness.
    pub fn append(&self, event: &SupervisorEvent) -> io::Result<()> {
        fsio::append_line(
            &self.path,
            &event.render_line(),
            points::SUPERVISOR_JOURNAL,
            &RetryPolicy::io(),
        )
    }

    /// Loads every parseable event in `dir`'s journal, plus the count
    /// of lines skipped as unparseable (torn appends, garbage).
    pub fn load(dir: &Path) -> (Vec<SupervisorEvent>, usize) {
        let text = match fs::read_to_string(dir.join(Self::FILE_NAME)) {
            Ok(text) => text,
            Err(_) => return (Vec::new(), 0),
        };
        let mut events = Vec::new();
        let mut skipped = 0usize;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match SupervisorEvent::parse_line(line) {
                Some(ev) => events.push(ev),
                None => skipped += 1,
            }
        }
        (events, skipped)
    }
}

/// Workers from a previous supervisor incarnation that are still the
/// same live process (pid + start token) and ran under `plan_hash`:
/// worker slot id → (pid, token). Computed by replaying the journal —
/// the last un-reaped spawn per slot is the candidate.
pub fn adoptable_workers(dir: &Path, plan_hash: &str) -> HashMap<usize, (u32, Option<u64>)> {
    let (events, _) = SupervisorJournal::load(dir);
    let mut last: HashMap<usize, (u32, Option<u64>, String)> = HashMap::new();
    for ev in events {
        match ev {
            SupervisorEvent::Spawn {
                worker,
                pid,
                token,
                plan,
            } => {
                last.insert(worker, (pid, token, plan));
            }
            SupervisorEvent::Reap { worker, pid } => {
                if last.get(&worker).map(|(p, _, _)| *p) == Some(pid) {
                    last.remove(&worker);
                }
            }
            SupervisorEvent::Elect { .. } => {}
        }
    }
    last.into_iter()
        .filter(|(_, (pid, token, plan))| {
            plan == plan_hash && *pid != std::process::id() && same_process(*pid, *token)
        })
        .map(|(worker, (pid, token, _))| (worker, (pid, token)))
        .collect()
}

/// A worker process under supervision: either our own child, or a
/// live orphan adopted from the previous supervisor incarnation.
enum WorkerProc {
    Child(Child),
    Adopted { pid: u32, token: Option<u64> },
}

/// What a finished worker process reported.
enum WorkerExit {
    Success,
    PlanMismatch,
    Died(String),
}

impl WorkerProc {
    fn pid(&self) -> u32 {
        match self {
            WorkerProc::Child(child) => child.id(),
            WorkerProc::Adopted { pid, .. } => *pid,
        }
    }

    /// Non-blocking exit poll. `None` while still running. An adopted
    /// worker's exit status is unobservable (we are not its parent):
    /// its disappearance reports as a death, and the restarted worker
    /// simply finds no unclaimed shard if the orphan actually finished.
    fn poll(&mut self) -> io::Result<Option<WorkerExit>> {
        match self {
            WorkerProc::Child(child) => match child.try_wait()? {
                None => Ok(None),
                Some(status) if status.success() => Ok(Some(WorkerExit::Success)),
                Some(status) if status.code() == Some(EXIT_PLAN_MISMATCH) => {
                    Ok(Some(WorkerExit::PlanMismatch))
                }
                Some(status) => Ok(Some(WorkerExit::Died(status.to_string()))),
            },
            WorkerProc::Adopted { pid, token } => {
                if same_process(*pid, *token) {
                    Ok(None)
                } else {
                    Ok(Some(WorkerExit::Died(format!("adopted pid {pid} gone"))))
                }
            }
        }
    }

    fn kill(&mut self) {
        match self {
            WorkerProc::Child(child) => {
                let _ = child.kill();
            }
            WorkerProc::Adopted { pid, token } => {
                // Only if it is still the process we adopted: never
                // SIGKILL a recycled pid.
                if same_process(*pid, *token) {
                    send_signal(*pid, SIGKILL);
                }
            }
        }
    }
}

struct Slot {
    proc: Option<WorkerProc>,
    restarts: usize,
    next_restart: Option<Instant>,
    /// Exited cleanly (0) or gave up; never respawned.
    finished: bool,
}

/// Per-shard in-flight tracking for hung-case detection.
struct InflightWatch {
    case: usize,
    pid: u32,
    /// Lease heartbeat counter when the case was first observed; a
    /// counter that *moves* while the case stays pinned proves the
    /// heartbeat thread is alive and the worker thread is stuck — the
    /// precise hang signature.
    hb: u64,
    since: Instant,
}

fn count_done(campaign_dir: &Path, shard_count: usize) -> usize {
    (0..shard_count)
        .filter(|&s| done_path(campaign_dir, s).exists())
        .count()
}

fn read_lease_raw(path: &Path) -> Option<(LeaseInfo, Duration)> {
    let info = LeaseInfo::parse(&fs::read_to_string(path).ok()?)?;
    let age = fs::metadata(path)
        .ok()?
        .modified()
        .ok()
        .and_then(|m| SystemTime::now().duration_since(m).ok())
        .unwrap_or(Duration::ZERO);
    Some((info, age))
}

/// Fires the one-shot injected supervisor crash when armed and the
/// retired-shard threshold is reached. The marker is created with a
/// *plain* (never fault-injected) exclusive create so the injection
/// gate itself cannot be disturbed by the chaos layer.
fn maybe_inject_supervisor_crash(campaign_dir: &Path, shards_done: usize) {
    let Ok(raw) = std::env::var(INJECT_SUPERVISOR_CRASH_ENV) else {
        return;
    };
    let Ok(threshold) = raw.trim().parse::<usize>() else {
        return;
    };
    if shards_done < threshold {
        return;
    }
    let marker = campaign_dir.join(INJECT_SUPERVISOR_CRASH_MARKER);
    if fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&marker)
        .is_ok()
    {
        eprintln!("[mocket-campaign] injected supervisor crash at {shards_done} shards done");
        super::procs::sigkill_self();
    }
}

/// Runs the supervision loop until the campaign completes, drains, or
/// hits a fatal condition. `spawn_worker` launches worker `id` (same
/// binary, hidden subcommand) with its output redirected wherever the
/// caller wants it.
///
/// On entry the supervisor records its election in `supervisor.log`
/// and adopts any still-live workers a previous (crashed) supervisor
/// left behind, so `kill -9` on the supervisor followed by a re-run of
/// the same command is a seamless takeover, not a cold start.
pub fn supervise(
    cfg: &SupervisorConfig,
    shard_count: usize,
    spawn_worker: &mut dyn FnMut(usize) -> io::Result<Child>,
) -> io::Result<CampaignOutcome> {
    let interrupted = install_sigint_flag();
    interrupted.store(false, Ordering::SeqCst);
    let progress = |line: &str| {
        if cfg.progress {
            eprintln!("[mocket-campaign] {line}");
        }
    };

    let journal = SupervisorJournal::open(&cfg.campaign_dir);
    let adoptable = adoptable_workers(&cfg.campaign_dir, &cfg.plan_hash);
    let _ = journal.append(&SupervisorEvent::Elect {
        pid: std::process::id(),
        token: self_token(),
        plan: cfg.plan_hash.clone(),
    });

    let mut adopted_total = 0usize;
    let mut slots: Vec<Slot> = Vec::with_capacity(cfg.workers.max(1));
    for id in 0..cfg.workers.max(1) {
        let proc = match adoptable.get(&id) {
            Some(&(pid, token)) => {
                progress(&format!(
                    "adopting live worker {id} (pid {pid}) from previous supervisor"
                ));
                adopted_total += 1;
                // Re-log under this incarnation so the *next* takeover
                // still sees it.
                let _ = journal.append(&SupervisorEvent::Spawn {
                    worker: id,
                    pid,
                    token,
                    plan: cfg.plan_hash.clone(),
                });
                WorkerProc::Adopted { pid, token }
            }
            None => {
                let child = spawn_worker(id)?;
                let pid = child.id();
                let _ = journal.append(&SupervisorEvent::Spawn {
                    worker: id,
                    pid,
                    token: super::procs::proc_start_token(pid),
                    plan: cfg.plan_hash.clone(),
                });
                WorkerProc::Child(child)
            }
        };
        slots.push(Slot {
            proc: Some(proc),
            restarts: 0,
            next_restart: None,
            finished: false,
        });
    }

    let mut restarts_total = 0usize;
    let mut hung_killed = 0usize;
    let mut fatal: Option<String> = None;
    let mut inflight: HashMap<usize, InflightWatch> = HashMap::new();
    let tick = Duration::from_millis(100);
    let max_restarts = cfg.restart.attempts;

    loop {
        // SIGINT → drain marker, once. Workers ignore SIGINT
        // themselves; they see the marker at their next case boundary.
        if interrupted.swap(false, Ordering::SeqCst) && !drain_requested(&cfg.campaign_dir) {
            progress("SIGINT: draining in-flight cases (campaign stays resumable)");
            request_drain(&cfg.campaign_dir)?;
        }
        let draining = drain_requested(&cfg.campaign_dir);
        let shards_done = count_done(&cfg.campaign_dir, shard_count);
        maybe_inject_supervisor_crash(&cfg.campaign_dir, shards_done);
        let work_left = shards_done < shard_count;

        // Reap exits; decide restarts.
        for (id, slot) in slots.iter_mut().enumerate() {
            let Some(proc) = slot.proc.as_mut() else {
                continue;
            };
            let pid = proc.pid();
            match proc.poll()? {
                None => {}
                Some(exit) => {
                    slot.proc = None;
                    let _ = journal.append(&SupervisorEvent::Reap { worker: id, pid });
                    match exit {
                        WorkerExit::Success => slot.finished = true,
                        WorkerExit::PlanMismatch => {
                            slot.finished = true;
                            if fatal.is_none() {
                                fatal = Some(format!(
                                    "worker {id} reports a plan mismatch (exit \
                                     {EXIT_PLAN_MISMATCH}); the campaign directory \
                                     belongs to a different target/bounds"
                                ));
                                // Stop the others at their next boundary.
                                request_drain(&cfg.campaign_dir)?;
                            }
                        }
                        WorkerExit::Died(status) => {
                            if work_left && !draining && fatal.is_none() {
                                if slot.restarts < max_restarts {
                                    let delay = cfg.restart.delay(slot.restarts, false);
                                    progress(&format!(
                                        "worker {id} died ({status}); restart #{} in {delay:?}",
                                        slot.restarts + 1
                                    ));
                                    slot.next_restart = Some(Instant::now() + delay);
                                } else {
                                    progress(&format!(
                                        "worker {id} died ({status}); restart budget exhausted"
                                    ));
                                    slot.finished = true;
                                }
                            } else {
                                slot.finished = true;
                            }
                        }
                    }
                }
            }
        }

        // Fire due restarts.
        if work_left && !draining && fatal.is_none() {
            for (id, slot) in slots.iter_mut().enumerate() {
                if slot.proc.is_none() && !slot.finished {
                    if let Some(due) = slot.next_restart {
                        if Instant::now() >= due {
                            slot.next_restart = None;
                            slot.restarts += 1;
                            restarts_total += 1;
                            let child = spawn_worker(id)?;
                            let pid = child.id();
                            let _ = journal.append(&SupervisorEvent::Spawn {
                                worker: id,
                                pid,
                                token: super::procs::proc_start_token(pid),
                                plan: cfg.plan_hash.clone(),
                            });
                            slot.proc = Some(WorkerProc::Child(child));
                        }
                    }
                }
            }
        }

        // Hung-worker detection: a lease whose *same* in-flight case
        // has been pinned past hang_timeout (heartbeat thread may well
        // still be refreshing the mtime and bumping the counter), or
        // whose heartbeat went stale past the TTL while its pid is one
        // of our live workers.
        let own_pids: Vec<u32> = slots
            .iter()
            .filter_map(|s| s.proc.as_ref().map(|p| p.pid()))
            .collect();
        for shard in 0..shard_count {
            let path = lease_path(&cfg.campaign_dir, shard);
            let Some((info, age)) = read_lease_raw(&path) else {
                inflight.remove(&shard);
                continue;
            };
            if !own_pids.contains(&info.pid) {
                inflight.remove(&shard);
                continue;
            }
            let hung_case = match info.case {
                Some((case, _)) => {
                    let watch = inflight.entry(shard).or_insert_with(|| InflightWatch {
                        case,
                        pid: info.pid,
                        hb: info.hb,
                        since: Instant::now(),
                    });
                    if watch.case != case || watch.pid != info.pid {
                        *watch = InflightWatch {
                            case,
                            pid: info.pid,
                            hb: info.hb,
                            since: Instant::now(),
                        };
                    } else if info.hb > watch.hb {
                        // Heartbeat still moving under the pinned case:
                        // the classic hung-worker signature. Track the
                        // counter so a *frozen* worker (counter stuck)
                        // is left to the mtime-staleness path instead.
                        watch.hb = info.hb;
                    }
                    watch.since.elapsed() > cfg.hang_timeout
                }
                None => {
                    inflight.remove(&shard);
                    false
                }
            };
            if hung_case || age > cfg.lease.ttl + cfg.lease.mtime_slack() {
                for slot in slots.iter_mut() {
                    if let Some(proc) = slot.proc.as_mut() {
                        if proc.pid() == info.pid {
                            progress(&format!(
                                "worker pid {} hung on shard {shard} \
                                 (case pinned or heartbeat stale); killing",
                                info.pid
                            ));
                            proc.kill();
                            hung_killed += 1;
                        }
                    }
                }
                inflight.remove(&shard);
            }
        }

        let running = slots.iter().filter(|s| s.proc.is_some()).count();
        let pending_restart = slots
            .iter()
            .any(|s| s.proc.is_none() && !s.finished && s.next_restart.is_some());
        let shards_done = count_done(&cfg.campaign_dir, shard_count);

        if shards_done == shard_count && running == 0 {
            return Ok(CampaignOutcome {
                drained: false,
                shards_done,
                shard_count,
                restarts: restarts_total,
                hung_killed,
                adopted: adopted_total,
                fatal,
            });
        }
        if (draining || fatal.is_some()) && running == 0 && !pending_restart {
            return Ok(CampaignOutcome {
                drained: draining,
                shards_done,
                shard_count,
                restarts: restarts_total,
                hung_killed,
                adopted: adopted_total,
                fatal,
            });
        }
        if running == 0 && !pending_restart {
            // Every worker is gone, shards remain, no drain: either
            // all slots exhausted their budget, or everyone exited 0
            // while a hung peer still nominally owned a shard whose
            // lease has since gone stale. Respawn one worker if any
            // budget remains; otherwise give up fatally (resumable).
            if let Some((id, slot)) = slots
                .iter_mut()
                .enumerate()
                .find(|(_, s)| s.restarts < max_restarts)
            {
                progress(&format!(
                    "shards remain with no workers alive; respawning worker {id}"
                ));
                slot.finished = false;
                slot.restarts += 1;
                restarts_total += 1;
                let child = spawn_worker(id)?;
                let pid = child.id();
                let _ = journal.append(&SupervisorEvent::Spawn {
                    worker: id,
                    pid,
                    token: super::procs::proc_start_token(pid),
                    plan: cfg.plan_hash.clone(),
                });
                slot.proc = Some(WorkerProc::Child(child));
            } else if fatal.is_none() {
                return Ok(CampaignOutcome {
                    drained: false,
                    shards_done,
                    shard_count,
                    restarts: restarts_total,
                    hung_killed,
                    adopted: adopted_total,
                    fatal: Some(
                        "all workers exhausted their restart budget with shards \
                         remaining; re-run the campaign to resume"
                            .into(),
                    ),
                });
            }
        }

        std::thread::sleep(tick);
    }
}

/// Removes leftover shard leases whose owners are dead — cosmetic
/// cleanup at campaign start so `ls shards/` reflects reality.
pub fn sweep_dead_leases(campaign_dir: &Path, shard_count: usize) {
    let dir = shards_dir(campaign_dir);
    if !dir.exists() {
        return;
    }
    for shard in 0..shard_count {
        let path = lease_path(campaign_dir, shard);
        if let Some((info, _)) = read_lease_raw(&path) {
            if !same_process(info.pid, info.token) {
                let _ = fs::remove_file(&path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mocket-supjournal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn supervisor_event_line_roundtrip() {
        for ev in [
            SupervisorEvent::Elect {
                pid: 42,
                token: Some(123456),
                plan: "aabbccdd00112233".into(),
            },
            SupervisorEvent::Elect {
                pid: 42,
                token: None,
                plan: "aabbccdd00112233".into(),
            },
            SupervisorEvent::Spawn {
                worker: 3,
                pid: 77,
                token: Some(9),
                plan: "ffff000011112222".into(),
            },
            SupervisorEvent::Reap { worker: 3, pid: 77 },
        ] {
            let line = ev.render_line();
            assert_eq!(SupervisorEvent::parse_line(&line), Some(ev), "{line}");
        }
    }

    #[test]
    fn supervisor_event_parse_rejects_garbage() {
        for bad in [
            "",
            "elect",
            "spawn worker=1",
            "spawn worker=x pid=3 tok=- plan=aa",
            "reap pid=3",
            "nonsense pid=3",
            "elect pid=zz tok=- plan=aa",
        ] {
            assert_eq!(SupervisorEvent::parse_line(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn journal_salvages_valid_prefix_and_skips_torn_lines() {
        let dir = tmp("salvage");
        let j = SupervisorJournal::open(&dir);
        j.append(&SupervisorEvent::Elect {
            pid: 1,
            token: None,
            plan: "p".into(),
        })
        .unwrap();
        j.append(&SupervisorEvent::Spawn {
            worker: 0,
            pid: 2,
            token: Some(5),
            plan: "p".into(),
        })
        .unwrap();
        // Simulate a torn append: garbage without a newline at the end.
        use std::io::Write as _;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir.join(SupervisorJournal::FILE_NAME))
            .unwrap();
        f.write_all(b"spawn worker=1 pid=").unwrap();
        drop(f);
        let (events, skipped) = SupervisorJournal::load(&dir);
        assert_eq!(events.len(), 2);
        assert_eq!(skipped, 1);
        // An append after the torn line starts fresh (fsio repairs it).
        j.append(&SupervisorEvent::Reap { worker: 0, pid: 2 })
            .unwrap();
        let (events, skipped) = SupervisorJournal::load(&dir);
        assert_eq!(events.len(), 3);
        assert_eq!(skipped, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn adoption_finds_live_unreaped_worker_only_for_same_plan() {
        let dir = tmp("adopt");
        let j = SupervisorJournal::open(&dir);
        let my_pid = std::process::id();
        let my_tok = self_token();
        // A dead pid: spawn+never reaped, but the process is gone.
        let mut dead = std::process::Command::new("true").spawn().unwrap();
        let dead_pid = dead.id();
        dead.wait().unwrap();
        // Worker 0: alive (this test process stands in), same plan.
        j.append(&SupervisorEvent::Spawn {
            worker: 0,
            pid: my_pid,
            token: my_tok,
            plan: "planA".into(),
        })
        .unwrap();
        // Worker 1: dead.
        j.append(&SupervisorEvent::Spawn {
            worker: 1,
            pid: dead_pid,
            token: None,
            plan: "planA".into(),
        })
        .unwrap();
        // Worker 2: alive but a different plan epoch.
        j.append(&SupervisorEvent::Spawn {
            worker: 2,
            pid: my_pid,
            token: my_tok,
            plan: "planB".into(),
        })
        .unwrap();
        // Worker 3: alive but reaped.
        j.append(&SupervisorEvent::Spawn {
            worker: 3,
            pid: my_pid,
            token: my_tok,
            plan: "planA".into(),
        })
        .unwrap();
        j.append(&SupervisorEvent::Reap {
            worker: 3,
            pid: my_pid,
        })
        .unwrap();
        let adoptable = adoptable_workers(&dir, "planA");
        // Worker 0 is our own pid — excluded (a supervisor never
        // adopts itself); so nothing survives the filters here...
        assert!(adoptable.is_empty());
        // ...unless the pid belongs to another live process. Use a
        // long-running child to prove the positive case.
        let mut sleeper = std::process::Command::new("sleep")
            .arg("30")
            .spawn()
            .unwrap();
        let pid = sleeper.id();
        let tok = super::super::procs::proc_start_token(pid);
        j.append(&SupervisorEvent::Spawn {
            worker: 4,
            pid,
            token: tok,
            plan: "planA".into(),
        })
        .unwrap();
        let adoptable = adoptable_workers(&dir, "planA");
        assert_eq!(adoptable.get(&4), Some(&(pid, tok)));
        let _ = sleeper.kill();
        let _ = sleeper.wait();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_spawn_supersedes_earlier_one_for_the_same_slot() {
        let dir = tmp("supersede");
        let j = SupervisorJournal::open(&dir);
        let mut sleeper = std::process::Command::new("sleep")
            .arg("30")
            .spawn()
            .unwrap();
        let pid = sleeper.id();
        let tok = super::super::procs::proc_start_token(pid);
        let mut dead = std::process::Command::new("true").spawn().unwrap();
        let dead_pid = dead.id();
        dead.wait().unwrap();
        j.append(&SupervisorEvent::Spawn {
            worker: 0,
            pid,
            token: tok,
            plan: "p".into(),
        })
        .unwrap();
        // Restart of slot 0 with a pid that then died: the *last*
        // spawn is the candidate, and it is dead → nothing to adopt.
        j.append(&SupervisorEvent::Spawn {
            worker: 0,
            pid: dead_pid,
            token: None,
            plan: "p".into(),
        })
        .unwrap();
        assert!(adoptable_workers(&dir, "p").is_empty());
        let _ = sleeper.kill();
        let _ = sleeper.wait();
        let _ = fs::remove_dir_all(&dir);
    }
}
