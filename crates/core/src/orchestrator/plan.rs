//! The campaign plan: a pinned, on-disk enumeration of the case set.
//!
//! The supervisor model-checks the spec once, materializes every
//! selected case, and writes `plan.txt` into the campaign directory.
//! The plan is what makes crash-and-resume and work stealing safe:
//! every worker regenerates the same case set deterministically and
//! *verifies* its hashes against the plan before running anything, so
//! a worker from a different binary, target or bound can never
//! corrupt the campaign — it exits with a distinct fatal code instead.
//! Shard boundaries are pure arithmetic over the plan (`shard_size`
//! is recorded in it), so resuming with a different `--workers` count
//! reuses the identical shard layout.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File name of the plan inside a campaign directory.
pub const PLAN_FILE_NAME: &str = "plan.txt";

const HEADER: &str = "mocket-campaign-plan v1";

/// One planned case, in plan (= pipeline) index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanCase {
    /// The case's stable hash (`TestCase::stable_hash`), or `-` when
    /// the path could not be materialized (the pipeline skips those).
    pub hash: String,
    /// Action count of the materialized case.
    pub len: usize,
}

/// The full plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignPlan {
    /// Target name as understood by `mocket-cli` (`xraft`, ...).
    pub target: String,
    /// Injected bug flag, if any.
    pub bug: Option<String>,
    /// Model-checking state bound used to build the graph.
    pub max_states: usize,
    /// Traversal path-length bound.
    pub max_path_len: usize,
    /// Case cap applied after traversal (0 = all).
    pub max_test_cases: usize,
    /// Cases per shard (>= 1).
    pub shard_size: usize,
    /// Every selected case, by index.
    pub cases: Vec<PlanCase>,
}

impl CampaignPlan {
    /// Number of shards covering the case set. An empty plan still has
    /// one (empty) shard so the campaign machinery has something to
    /// retire.
    pub fn shard_count(&self) -> usize {
        let size = self.shard_size.max(1);
        self.cases.len().div_ceil(size).max(1)
    }

    /// Half-open case-index range `[start, end)` of `shard`.
    pub fn shard_range(&self, shard: usize) -> (usize, usize) {
        let size = self.shard_size.max(1);
        let start = (shard * size).min(self.cases.len());
        let end = ((shard + 1) * size).min(self.cases.len());
        (start, end)
    }

    /// Serializes the plan.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("target: {}\n", self.target));
        out.push_str(&format!("bug: {}\n", self.bug.as_deref().unwrap_or("-")));
        out.push_str(&format!("max_states: {}\n", self.max_states));
        out.push_str(&format!("max_path_len: {}\n", self.max_path_len));
        out.push_str(&format!("max_test_cases: {}\n", self.max_test_cases));
        out.push_str(&format!("shard_size: {}\n", self.shard_size));
        out.push_str(&format!("cases: {}\n", self.cases.len()));
        for (idx, case) in self.cases.iter().enumerate() {
            out.push_str(&format!("case: {idx} {} len={}\n", case.hash, case.len));
        }
        out
    }

    /// A short, stable fingerprint of the plan (FNV-1a over the
    /// serialized form, hex). Pinned into every lease and supervisor
    /// journal record so a re-elected supervisor and lease stealers
    /// can prove two processes agree on the campaign epoch without
    /// re-reading and re-comparing the whole plan.
    pub fn stable_hash(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.render().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Atomically writes the plan into `dir` (size-verified temp +
    /// rename via the fault-injectable I/O layer).
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        crate::fsio::write_atomic(
            dir,
            PLAN_FILE_NAME,
            self.render().as_bytes(),
            crate::fsio::points::PLAN_WRITE,
            &crate::fsio::RetryPolicy::io(),
        )
    }

    /// Parses a serialized plan.
    pub fn parse(text: &str) -> Result<CampaignPlan, String> {
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(format!("plan header mismatch (expected `{HEADER}`)"));
        }
        let mut target = None;
        let mut bug = None;
        let mut max_states = None;
        let mut max_path_len = None;
        let mut max_test_cases = None;
        let mut shard_size = None;
        let mut declared_cases = None;
        let mut cases = Vec::new();
        for line in lines {
            let Some((key, value)) = line.split_once(':') else {
                return Err(format!("malformed plan line: {line}"));
            };
            let value = value.trim();
            match key {
                "target" => target = Some(value.to_string()),
                "bug" => bug = Some((value != "-").then(|| value.to_string())),
                "max_states" => max_states = value.parse().ok(),
                "max_path_len" => max_path_len = value.parse().ok(),
                "max_test_cases" => max_test_cases = value.parse().ok(),
                "shard_size" => shard_size = value.parse().ok(),
                "cases" => declared_cases = value.parse::<usize>().ok(),
                "case" => {
                    let mut parts = value.split_whitespace();
                    let idx: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("malformed case line: {line}"))?;
                    let hash = parts
                        .next()
                        .ok_or_else(|| format!("malformed case line: {line}"))?;
                    let len = parts
                        .next()
                        .and_then(|v| v.strip_prefix("len="))
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("malformed case line: {line}"))?;
                    if idx != cases.len() {
                        return Err(format!(
                            "case index {idx} out of order (expected {})",
                            cases.len()
                        ));
                    }
                    cases.push(PlanCase {
                        hash: hash.to_string(),
                        len,
                    });
                }
                other => return Err(format!("unknown plan key: {other}")),
            }
        }
        let plan = CampaignPlan {
            target: target.ok_or("plan missing target")?,
            bug: bug.ok_or("plan missing bug")?,
            max_states: max_states.ok_or("plan missing max_states")?,
            max_path_len: max_path_len.ok_or("plan missing max_path_len")?,
            max_test_cases: max_test_cases.ok_or("plan missing max_test_cases")?,
            shard_size: shard_size.ok_or("plan missing shard_size")?,
            cases,
        };
        match declared_cases {
            Some(n) if n == plan.cases.len() => Ok(plan),
            Some(n) => Err(format!(
                "plan declares {n} cases but lists {}",
                plan.cases.len()
            )),
            None => Err("plan missing cases count".into()),
        }
    }

    /// Loads `dir/plan.txt`, if present.
    pub fn load(dir: &Path) -> io::Result<Option<CampaignPlan>> {
        let path = dir.join(PLAN_FILE_NAME);
        match fs::read_to_string(&path) {
            Ok(text) => CampaignPlan::parse(&text)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Checks that `other` (a freshly computed plan) describes the
    /// same campaign as `self` (the plan on disk) — the resume-safety
    /// gate. Returns a human-readable mismatch.
    pub fn verify_matches(&self, other: &CampaignPlan) -> Result<(), String> {
        if self == other {
            return Ok(());
        }
        if self.target != other.target {
            return Err(format!(
                "target mismatch: plan has `{}`, run has `{}`",
                self.target, other.target
            ));
        }
        if self.bug != other.bug {
            return Err(format!(
                "bug flag mismatch: plan has `{:?}`, run has `{:?}`",
                self.bug, other.bug
            ));
        }
        if self.cases.len() != other.cases.len() {
            return Err(format!(
                "case count mismatch: plan has {}, run generated {}",
                self.cases.len(),
                other.cases.len()
            ));
        }
        for (idx, (a, b)) in self.cases.iter().zip(&other.cases).enumerate() {
            if a != b {
                return Err(format!(
                    "case {idx} mismatch: plan has {} len={}, run generated {} len={}",
                    a.hash, a.len, b.hash, b.len
                ));
            }
        }
        Err("plan bounds mismatch (max_states/max_path_len/max_test_cases/shard_size)".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignPlan {
        CampaignPlan {
            target: "xraft".into(),
            bug: Some("stale-term".into()),
            max_states: 20_000,
            max_path_len: 40,
            max_test_cases: 0,
            shard_size: 4,
            cases: (0..10)
                .map(|i| PlanCase {
                    hash: format!("{i:016x}"),
                    len: i + 1,
                })
                .collect(),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let plan = sample();
        assert_eq!(CampaignPlan::parse(&plan.render()).unwrap(), plan);
        let mut no_bug = plan;
        no_bug.bug = None;
        assert_eq!(CampaignPlan::parse(&no_bug.render()).unwrap(), no_bug);
    }

    #[test]
    fn shard_arithmetic() {
        let plan = sample();
        assert_eq!(plan.shard_count(), 3);
        assert_eq!(plan.shard_range(0), (0, 4));
        assert_eq!(plan.shard_range(2), (8, 10));
        assert_eq!(plan.shard_range(7), (10, 10));
        let empty = CampaignPlan {
            cases: Vec::new(),
            ..sample()
        };
        assert_eq!(empty.shard_count(), 1);
        assert_eq!(empty.shard_range(0), (0, 0));
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mocket-plan-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let plan = sample();
        plan.write_to(&dir).unwrap();
        assert_eq!(CampaignPlan::load(&dir).unwrap(), Some(plan));
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(CampaignPlan::load(&dir).unwrap(), None);
    }

    #[test]
    fn verify_matches_reports_drift() {
        let plan = sample();
        assert!(plan.verify_matches(&plan.clone()).is_ok());
        let mut other = plan.clone();
        other.cases[3].hash = "deadbeefdeadbeef".into();
        let err = plan.verify_matches(&other).unwrap_err();
        assert!(err.contains("case 3"), "{err}");
        let mut other = plan.clone();
        other.target = "zab".into();
        assert!(plan.verify_matches(&other).unwrap_err().contains("target"));
    }

    #[test]
    fn stable_hash_tracks_content() {
        let plan = sample();
        assert_eq!(plan.stable_hash(), plan.clone().stable_hash());
        assert_eq!(plan.stable_hash().len(), 16);
        let mut other = plan.clone();
        other.cases[0].hash = "ffffffffffffffff".into();
        assert_ne!(plan.stable_hash(), other.stable_hash());
    }

    #[test]
    fn parse_rejects_corruption() {
        assert!(CampaignPlan::parse("not a plan").is_err());
        let plan = sample();
        let truncated: String = plan
            .render()
            .lines()
            .take(9)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(CampaignPlan::parse(&truncated).is_err());
    }
}
