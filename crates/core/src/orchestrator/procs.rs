//! Minimal process-control shims for the campaign orchestrator.
//!
//! The workspace carries no `libc` crate, so the handful of raw calls
//! the supervisor needs — liveness probes (`kill(pid, 0)`), SIGINT
//! capture and self-delivered signals for crash-injection tests — are
//! declared directly against the C library `std` already links on
//! Unix. Everything is gated behind `cfg(unix)`; other platforms get
//! conservative fallbacks (never treat a pid as dead, never install a
//! handler), which disables work stealing but keeps the build green.

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGINT` signal number.
pub const SIGINT: i32 = 2;
/// `SIGKILL` signal number.
pub const SIGKILL: i32 = 9;

#[cfg(unix)]
mod sys {
    extern "C" {
        pub fn kill(pid: i32, sig: i32) -> i32;
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
    /// `SIG_IGN` as the integer the C API expects.
    pub const SIG_IGN: usize = 1;
}

/// Whether a process with `pid` currently exists. Uses the classic
/// `kill(pid, 0)` probe: delivery of the null signal checks existence
/// without touching the target. `EPERM` means "exists but not ours",
/// which still counts as alive.
pub fn pid_alive(pid: u32) -> bool {
    #[cfg(unix)]
    {
        let Ok(pid) = i32::try_from(pid) else {
            return false;
        };
        if pid <= 0 {
            return false;
        }
        if unsafe { sys::kill(pid, 0) } == 0 {
            return true;
        }
        // EPERM (1): the process exists under another uid.
        std::io::Error::last_os_error().raw_os_error() == Some(1)
    }
    #[cfg(not(unix))]
    {
        let _ = pid;
        // No probe available: assume alive so leases are never stolen
        // from a process we cannot observe.
        true
    }
}

/// Sends `sig` to `pid`. Returns whether the kernel accepted it.
pub fn send_signal(pid: u32, sig: i32) -> bool {
    #[cfg(unix)]
    {
        match i32::try_from(pid) {
            Ok(pid) if pid > 0 => unsafe { sys::kill(pid, sig) == 0 },
            _ => false,
        }
    }
    #[cfg(not(unix))]
    {
        let _ = (pid, sig);
        false
    }
}

/// A token distinguishing *this incarnation* of `pid` from a later
/// process that recycled the same pid. On Linux this is the process
/// start time (field 22 of `/proc/<pid>/stat`, in clock ticks since
/// boot) — stable for the process's lifetime, different for any
/// successor. `None` where no such marker is available (non-Linux, or
/// the process vanished mid-read); callers must then fall back to
/// `pid_alive` alone.
pub fn proc_start_token(pid: u32) -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
        // comm (field 2) may contain spaces and parentheses; fields
        // 3.. start after the *last* ')'.
        let rest = &stat[stat.rfind(')')? + 1..];
        // rest begins at field 3 (`state`); starttime is field 22.
        rest.split_whitespace().nth(19)?.parse().ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        None
    }
}

/// [`proc_start_token`] for the current process.
pub fn self_token() -> Option<u64> {
    proc_start_token(std::process::id())
}

/// Whether `pid` is alive *and* still the incarnation that `recorded`
/// its start token. A recycled pid (same number, later process) fails
/// the token comparison; where either side lacks a token the check
/// degrades to plain liveness.
pub fn same_process(pid: u32, recorded: Option<u64>) -> bool {
    if !pid_alive(pid) {
        return false;
    }
    match (recorded, proc_start_token(pid)) {
        (Some(recorded), Some(live)) => recorded == live,
        _ => true,
    }
}

/// The flag [`install_sigint_flag`] latches. Static because a signal
/// handler cannot carry state.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigint(_sig: i32) {
    // The only async-signal-safe thing worth doing: latch the flag.
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Installs a SIGINT handler that latches a flag instead of killing
/// the process, and returns that flag. The supervisor polls it to
/// trigger a graceful drain. Installing twice is harmless.
pub fn install_sigint_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    unsafe {
        sys::signal(SIGINT, on_sigint as *const () as usize);
    }
    &INTERRUPTED
}

/// Makes this process ignore SIGINT. Workers call this so a Ctrl-C
/// delivered to the whole foreground process group reaches only the
/// supervisor, which converts it into a drain marker the workers
/// honor at the next case boundary.
pub fn ignore_sigint() {
    #[cfg(unix)]
    unsafe {
        sys::signal(SIGINT, sys::SIG_IGN);
    }
}

/// Delivers SIGKILL to the current process — the crash-injection hook
/// used by tests to simulate `kill -9` on a worker mid-shard. Never
/// returns on Unix; aborts elsewhere so callers can rely on
/// divergence-free control flow.
pub fn sigkill_self() -> ! {
    send_signal(std::process::id(), SIGKILL);
    // SIGKILL is not deliverable to ourselves on non-Unix (or the call
    // failed in some exotic way): make the crash happen regardless.
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_pid_is_alive_and_bogus_pid_is_not() {
        assert!(pid_alive(std::process::id()));
        // PID 0 / overflow values are never "a worker that still runs".
        assert!(!pid_alive(0));
        assert!(!pid_alive(u32::MAX));
    }

    #[test]
    fn dead_child_is_detected() {
        let mut child = std::process::Command::new("true")
            .spawn()
            .expect("spawn /bin/true");
        let pid = child.id();
        child.wait().expect("wait");
        // The child is reaped: its pid no longer exists (modulo pid
        // reuse, which a fresh wait makes overwhelmingly unlikely).
        assert!(!pid_alive(pid));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn start_token_is_stable_for_self_and_absent_for_dead_pid() {
        let a = self_token().expect("linux always has /proc/self/stat");
        let b = self_token().expect("second read");
        assert_eq!(a, b, "start token must be stable across reads");
        let mut child = std::process::Command::new("true")
            .spawn()
            .expect("spawn /bin/true");
        let pid = child.id();
        child.wait().expect("wait");
        assert_eq!(proc_start_token(pid), None, "reaped pid has no token");
    }

    #[cfg(unix)]
    #[test]
    fn sigint_flag_latches() {
        let flag = install_sigint_flag();
        flag.store(false, Ordering::SeqCst);
        assert!(send_signal(std::process::id(), SIGINT));
        // Signal delivery to self is synchronous enough in practice,
        // but give the kernel a moment anyway.
        for _ in 0..100 {
            if flag.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(flag.load(Ordering::SeqCst), "SIGINT must latch the flag");
        flag.store(false, Ordering::SeqCst);
    }
}
