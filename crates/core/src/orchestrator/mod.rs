//! Crash-tolerant campaign orchestration.
//!
//! A campaign directory is the single source of truth: a pinned
//! [`plan`](crate::orchestrator::CampaignPlan) of cases, per-shard
//! lease files forming a file-backed work queue, per-shard journals
//! and replay artifacts, and a deterministic merge that rebuilds the
//! canonical top-level outputs from the verdict set. The supervisor
//! (`mocket-cli campaign`) spawns N crash-isolated worker processes
//! (`mocket-cli campaign-worker`, hidden) and survives worker
//! crashes, hangs, `kill -9`, SIGINT drains and full restarts of the
//! campaign itself.
//!
//! Layout of a campaign directory:
//!
//! ```text
//! <dir>/journal.lock            supervisor's exclusive claim
//! <dir>/plan.txt                pinned case set + shard arithmetic
//! <dir>/drain                   transient drain request marker
//! <dir>/shards/shard-<s>.lease  work-queue lease (pid + heartbeat)
//! <dir>/shards/shard-<s>.done   shard retirement marker
//! <dir>/shards/shard-<s>/       shard journal + replay artifacts
//! <dir>/worker-<id>/            per-worker obs stream + log
//! <dir>/quarantine/             poison cases (crashes.log, artifacts)
//! <dir>/journal.log ...         canonical merged outputs
//! ```

mod lease;
mod lock;
mod merge;
mod plan;
mod procs;
mod supervisor;
mod worker;

pub use lease::{
    done_path, lease_path, shard_data_dir, shards_dir, try_claim, ClaimOutcome, LeaseConfig,
    LeaseHandle, LeaseInfo,
};
pub use lock::{DirLock, LockError};
pub use merge::{merge_campaign, MergeInputs, MergeReport};
pub use plan::{CampaignPlan, PlanCase, PLAN_FILE_NAME};
pub use procs::{
    ignore_sigint, install_sigint_flag, pid_alive, proc_start_token, same_process, self_token,
    send_signal, sigkill_self, SIGINT, SIGKILL,
};
pub use supervisor::{
    adoptable_workers, supervise, sweep_dead_leases, CampaignOutcome, SupervisorConfig,
    SupervisorEvent, SupervisorJournal, EXIT_PLAN_MISMATCH, INJECT_SUPERVISOR_CRASH_ENV,
};
pub use worker::{
    clear_drain_marker, drain_requested, load_crashes, load_poisoned, record_worker_crash,
    request_drain, worker_loop, CrashDisposition, CrashKind, CrashRecord, InjectionConfig,
    PoisonRecord, ShardSetup, WorkerConfig, WorkerContext, WorkerOutcome, CRASH_LOG_FILE_NAME,
    DRAIN_FILE_NAME, POISON_LOG_FILE_NAME, QUARANTINE_DIR_NAME,
};
