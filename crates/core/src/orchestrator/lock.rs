//! Cross-process directory locks (`O_EXCL` + stale-pid takeover).
//!
//! A [`DirLock`] is one file created with `create_new` (the portable
//! `O_CREAT|O_EXCL`) whose content names the owning pid. Acquisition
//! fails fast with a typed error while the owner lives; a lock whose
//! owner pid no longer exists is taken over. Two processes racing for
//! a stale lock both remove it, but only one wins the exclusive
//! re-create — the loser reports the winner as the owner.
//!
//! The campaign journal uses this to stop two campaigns from
//! interleaving appends into the same directory, and the supervisor
//! uses it to claim a whole campaign directory.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use super::procs::{same_process, self_token};
use crate::fsio;
use crate::fsio::points;

/// Why a [`DirLock`] could not be acquired.
#[derive(Debug)]
pub enum LockError {
    /// Another live process holds the lock.
    Held {
        /// The lock file.
        path: PathBuf,
        /// The pid recorded in it.
        owner_pid: u32,
    },
    /// Filesystem trouble unrelated to contention.
    Io(io::Error),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Held { path, owner_pid } => {
                write!(f, "lock {} is held by live pid {owner_pid}", path.display())
            }
            LockError::Io(e) => write!(f, "lock io: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

impl From<io::Error> for LockError {
    fn from(e: io::Error) -> Self {
        LockError::Io(e)
    }
}

/// An exclusively held lock file; released (deleted) on drop.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
    held: bool,
}

impl DirLock {
    /// Acquires `dir/file_name` exclusively for this process, creating
    /// `dir` if needed. A lock owned by a dead pid, a *recycled* pid
    /// (start-token mismatch), or with unreadable content (a write
    /// interrupted before the pid landed) is removed and re-acquired.
    /// Transient I/O failures of the exclusive create are retried
    /// under the unified policy.
    pub fn acquire(dir: &Path, file_name: &str) -> Result<Self, LockError> {
        fs::create_dir_all(dir)?;
        let path = dir.join(file_name);
        let body = match self_token() {
            Some(tok) => format!("{} tok={tok}\n", std::process::id()),
            None => format!("{}\n", std::process::id()),
        };
        let retry = fsio::RetryPolicy::io();
        let mut io_failures = 0;
        let mut takeover_done = false;
        loop {
            match fsio::create_exclusive(&path, body.as_bytes(), points::LOCK_CREATE) {
                Ok(()) => return Ok(DirLock { path, held: true }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let owner = read_owner(&path);
                    match owner {
                        Some((pid, tok)) if owner_alive(pid, tok) => {
                            return Err(LockError::Held {
                                path,
                                owner_pid: pid,
                            })
                        }
                        // Dead/recycled owner or torn content: stale
                        // either way. One takeover attempt; losing the
                        // re-create race afterwards means someone else
                        // took the stale lock over first.
                        _ if !takeover_done => {
                            takeover_done = true;
                            let _ = fs::remove_file(&path);
                        }
                        _ => {
                            return Err(LockError::Held {
                                path,
                                owner_pid: owner.map(|(pid, _)| pid).unwrap_or(0),
                            })
                        }
                    }
                }
                Err(e) => {
                    // The create itself failed (injected fault or real
                    // I/O error), possibly leaving torn debris we own:
                    // remove it and retry.
                    let _ = fs::remove_file(&path);
                    io_failures += 1;
                    if io_failures >= retry.attempts.max(1) {
                        return Err(LockError::Io(e));
                    }
                    std::thread::sleep(retry.delay(io_failures - 1, fsio::is_enospc(&e)));
                }
            }
        }
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        if self.held {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// The pid (and optional start token) recorded in a lock file, if it
/// parses. Locks written before token recording carry only the pid.
fn read_owner(path: &Path) -> Option<(u32, Option<u64>)> {
    let text = fs::read_to_string(path).ok()?;
    let mut parts = text.split_whitespace();
    let pid = parts.next()?.parse().ok()?;
    let tok = parts
        .next()
        .and_then(|t| t.strip_prefix("tok="))
        .and_then(|t| t.parse().ok());
    Some((pid, tok))
}

/// Whether the recorded owner is the *same process* that wrote the
/// lock: pid alive, and (when both sides have start tokens) the same
/// incarnation of that pid.
fn owner_alive(pid: u32, recorded_token: Option<u64>) -> bool {
    same_process(pid, recorded_token)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mocket-lock-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn exclusive_while_held_released_on_drop() {
        let dir = tmp("excl");
        let lock = DirLock::acquire(&dir, "t.lock").unwrap();
        match DirLock::acquire(&dir, "t.lock") {
            Err(LockError::Held { owner_pid, .. }) => {
                assert_eq!(owner_pid, std::process::id());
            }
            other => panic!("expected Held, got {other:?}"),
        }
        drop(lock);
        // Released: re-acquirable.
        let again = DirLock::acquire(&dir, "t.lock").unwrap();
        drop(again);
        assert!(!dir.join("t.lock").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_dead_pid_lock_is_taken_over() {
        let dir = tmp("stale");
        fs::create_dir_all(&dir).unwrap();
        // A dead child's pid: guaranteed-stale owner.
        let mut child = std::process::Command::new("true").spawn().unwrap();
        let dead_pid = child.id();
        child.wait().unwrap();
        fs::write(dir.join("t.lock"), format!("{dead_pid}\n")).unwrap();
        let lock = DirLock::acquire(&dir, "t.lock").expect("stale lock must be taken over");
        drop(lock);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lock_content_counts_as_stale() {
        let dir = tmp("torn");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("t.lock"), "").unwrap();
        let lock = DirLock::acquire(&dir, "t.lock").expect("empty lock must be taken over");
        drop(lock);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_locks_different_names_coexist() {
        let dir = tmp("names");
        let a = DirLock::acquire(&dir, "a.lock").unwrap();
        let b = DirLock::acquire(&dir, "b.lock").unwrap();
        drop((a, b));
        let _ = fs::remove_dir_all(&dir);
    }
}
