//! The campaign worker: claims shards, runs them through the
//! pipeline, attributes crashes, and quarantines poison cases.
//!
//! A worker is one crash-isolated process (the hidden
//! `mocket-cli campaign-worker` subcommand). It model-checks the spec
//! once, verifies its regenerated case set against the pinned plan,
//! then loops: claim a shard (fresh or stolen), run exactly that
//! case-index window via [`Pipeline::run_prepared`] with a per-case
//! gate, retire the shard, repeat until every shard is done or a
//! drain is requested.
//!
//! Crash attribution: when a worker steals a stale lease it reads the
//! victim's in-flight case from the lease body and records a crash in
//! `quarantine/crashes.log` — unless the shard journal already holds
//! a verdict for that case (the victim died *after* journaling, so
//! the case is innocent). A case whose crash count reaches the poison
//! threshold K is quarantined: it is appended to
//! `quarantine/poisoned.log`, a synthetic replay artifact is written
//! next to it, and every later worker's gate skips it — the campaign
//! completes instead of crash-looping forever.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mocket_checker::{EdgeId, StateGraph};
use mocket_tla::ActionInstance;

use crate::artifact::{CampaignJournal, ReplayArtifact};
use crate::pipeline::{CaseGate, Pipeline, PipelineResult};
use crate::report::{Determinism, Inconsistency};
use crate::runner::RunConfig;
use crate::sut::SystemUnderTest;
use crate::testcase::TestCase;

use super::lease::{shard_data_dir, try_claim, ClaimOutcome, LeaseConfig, LeaseHandle, LeaseInfo};
use super::plan::CampaignPlan;
use super::procs::sigkill_self;
use crate::fsio;
use crate::fsio::points;

/// Transient drain-request marker inside a campaign directory.
pub const DRAIN_FILE_NAME: &str = "drain";
/// Quarantine subdirectory (crash log, poison log, poison artifacts).
pub const QUARANTINE_DIR_NAME: &str = "quarantine";
/// Crash-attribution log inside the quarantine directory.
pub const CRASH_LOG_FILE_NAME: &str = "crashes.log";
/// Poisoned-case log inside the quarantine directory.
pub const POISON_LOG_FILE_NAME: &str = "poisoned.log";
/// One-shot marker consumed by the crash-injection test hook.
const CRASH_INJECTED_FILE_NAME: &str = "crash-injected";

/// Whether a drain has been requested for this campaign.
pub fn drain_requested(campaign_dir: &Path) -> bool {
    campaign_dir.join(DRAIN_FILE_NAME).exists()
}

/// Requests a graceful drain: every worker stops at its next case
/// boundary, journals intact.
pub fn request_drain(campaign_dir: &Path) -> io::Result<()> {
    fs::create_dir_all(campaign_dir)?;
    fs::write(campaign_dir.join(DRAIN_FILE_NAME), "drain\n")
}

/// Removes a stale drain marker (done at campaign start, so a
/// previously interrupted campaign resumes instead of instantly
/// draining again).
pub fn clear_drain_marker(campaign_dir: &Path) {
    let _ = fs::remove_file(campaign_dir.join(DRAIN_FILE_NAME));
}

fn quarantine_dir(campaign_dir: &Path) -> PathBuf {
    campaign_dir.join(QUARANTINE_DIR_NAME)
}

/// One attributed worker crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashRecord {
    /// Plan index of the in-flight case.
    pub case: usize,
    /// Stable hash of the in-flight case.
    pub hash: String,
    /// The worker id that died.
    pub worker: usize,
    /// Its pid.
    pub pid: u32,
}

impl CrashRecord {
    fn render(&self) -> String {
        format!(
            "crash: case={} hash={} worker={} pid={}\n",
            self.case, self.hash, self.worker, self.pid
        )
    }

    fn parse(line: &str) -> Option<CrashRecord> {
        let rest = line.strip_prefix("crash:")?.trim();
        let mut case = None;
        let mut hash = None;
        let mut worker = None;
        let mut pid = None;
        for token in rest.split_whitespace() {
            let (k, v) = token.split_once('=')?;
            match k {
                "case" => case = v.parse().ok(),
                "hash" => hash = Some(v.to_string()),
                "worker" => worker = v.parse().ok(),
                "pid" => pid = v.parse().ok(),
                _ => {}
            }
        }
        Some(CrashRecord {
            case: case?,
            hash: hash?,
            worker: worker?,
            pid: pid?,
        })
    }
}

/// One quarantined poison case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonRecord {
    /// Plan index of the case.
    pub case: usize,
    /// Stable hash of the case.
    pub hash: String,
    /// Crash count that tripped the threshold.
    pub crashes: usize,
}

impl PoisonRecord {
    fn render(&self) -> String {
        format!(
            "poison: case={} hash={} crashes={}\n",
            self.case, self.hash, self.crashes
        )
    }

    fn parse(line: &str) -> Option<PoisonRecord> {
        let rest = line.strip_prefix("poison:")?.trim();
        let mut case = None;
        let mut hash = None;
        let mut crashes = None;
        for token in rest.split_whitespace() {
            let (k, v) = token.split_once('=')?;
            match k {
                "case" => case = v.parse().ok(),
                "hash" => hash = Some(v.to_string()),
                "crashes" => crashes = v.parse().ok(),
                _ => {}
            }
        }
        Some(PoisonRecord {
            case: case?,
            hash: hash?,
            crashes: crashes?,
        })
    }
}

/// Every attributed crash on record, in append order.
pub fn load_crashes(campaign_dir: &Path) -> io::Result<Vec<CrashRecord>> {
    load_log(
        &quarantine_dir(campaign_dir).join(CRASH_LOG_FILE_NAME),
        CrashRecord::parse,
    )
}

/// Every quarantined case on record, in append order.
pub fn load_poisoned(campaign_dir: &Path) -> io::Result<Vec<PoisonRecord>> {
    load_log(
        &quarantine_dir(campaign_dir).join(POISON_LOG_FILE_NAME),
        PoisonRecord::parse,
    )
}

fn load_log<T>(path: &Path, parse: impl Fn(&str) -> Option<T>) -> io::Result<Vec<T>> {
    match fs::read_to_string(path) {
        Ok(text) => Ok(text.lines().filter_map(|l| parse(l.trim())).collect()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

fn append_line(path: &Path, line: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fsio::append_line(
        path,
        line.trim_end_matches('\n'),
        points::QUARANTINE_APPEND,
        &fsio::RetryPolicy::io(),
    )
}

/// What [`record_worker_crash`] decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashDisposition {
    /// The stale lease carried no in-flight case — the victim died
    /// between cases; nothing to attribute.
    NoInflightCase,
    /// The shard journal already holds a verdict for the in-flight
    /// case: the victim died *after* finishing it. No crash recorded.
    AlreadyJournaled,
    /// The crash was attributed to the in-flight case.
    Recorded {
        /// Total attributed crashes for this case, including this one.
        total: usize,
        /// Whether this crash tripped the poison threshold (the case
        /// is now quarantined).
        poisoned: bool,
    },
}

/// Records a stolen lease's in-flight case as a crash, quarantining
/// the case once its crash count reaches `threshold`. Called under
/// the per-shard steal lock, which serializes counting per shard.
/// `artifact_for` materializes the quarantine replay artifact for a
/// plan index (`None` when the case cannot be rebuilt — the poison
/// record is still written).
pub fn record_worker_crash(
    campaign_dir: &Path,
    shard: usize,
    victim: &LeaseInfo,
    threshold: usize,
    artifact_for: &dyn Fn(usize) -> Option<ReplayArtifact>,
) -> io::Result<CrashDisposition> {
    let Some((case, hash)) = victim.case.clone() else {
        return Ok(CrashDisposition::NoInflightCase);
    };
    let shard_dir = shard_data_dir(campaign_dir, shard);
    let (journaled, _) = CampaignJournal::load_entries(&shard_dir)?;
    if journaled.contains_key(&hash) {
        return Ok(CrashDisposition::AlreadyJournaled);
    }
    let qdir = quarantine_dir(campaign_dir);
    let record = CrashRecord {
        case,
        hash: hash.clone(),
        worker: victim.worker,
        pid: victim.pid,
    };
    append_line(&qdir.join(CRASH_LOG_FILE_NAME), &record.render())?;
    let total = load_crashes(campaign_dir)?
        .iter()
        .filter(|c| c.hash == hash)
        .count();
    let already_poisoned = load_poisoned(campaign_dir)?.iter().any(|p| p.hash == hash);
    let poisoned = total >= threshold.max(1) && !already_poisoned;
    if poisoned {
        append_line(
            &qdir.join(POISON_LOG_FILE_NAME),
            &PoisonRecord {
                case,
                hash: hash.clone(),
                crashes: total,
            }
            .render(),
        )?;
        if let Some(artifact) = artifact_for(case) {
            if let Err(e) = artifact.write_to(&qdir) {
                eprintln!("[mocket-worker] quarantine artifact write failed: {e}");
            }
        }
    }
    Ok(CrashDisposition::Recorded { total, poisoned })
}

/// How an injected crash kills the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// `std::process::abort()` — simulates an escaped panic/OOM kill.
    Abort,
    /// Self-delivered SIGKILL — simulates `kill -9`.
    Sigkill,
}

/// Test-only failure injection, driven by environment variables so
/// integration tests and the CI smoke job can crash real worker
/// processes deterministically.
#[derive(Debug, Clone, Default)]
pub struct InjectionConfig {
    /// Crash once (guarded by a campaign-wide marker file) when the
    /// given case index comes in flight. `MOCKET_CAMPAIGN_INJECT_CRASH`
    /// = `abort:<idx>` or `sigkill:<idx>`.
    pub crash: Option<(CrashKind, usize)>,
    /// Abort on *every* attempt of the given case index — a
    /// deterministic poison case. `MOCKET_CAMPAIGN_POISON_CASE=<idx>`.
    pub poison: Option<usize>,
    /// Write the drain marker when the given case index comes in
    /// flight. `MOCKET_CAMPAIGN_INJECT_DRAIN=<idx>`.
    pub drain: Option<usize>,
}

impl InjectionConfig {
    /// Parses the three injection values (already read from the
    /// environment). Unparseable values are ignored.
    pub fn parse(
        crash: Option<&str>,
        poison: Option<&str>,
        drain: Option<&str>,
    ) -> InjectionConfig {
        InjectionConfig {
            crash: crash.and_then(|v| {
                let (kind, idx) = v.split_once(':')?;
                let idx = idx.parse().ok()?;
                match kind {
                    "abort" => Some((CrashKind::Abort, idx)),
                    "sigkill" => Some((CrashKind::Sigkill, idx)),
                    _ => None,
                }
            }),
            poison: poison.and_then(|v| v.parse().ok()),
            drain: drain.and_then(|v| v.parse().ok()),
        }
    }

    /// Reads the injection hooks from the process environment.
    pub fn from_env() -> InjectionConfig {
        InjectionConfig::parse(
            std::env::var("MOCKET_CAMPAIGN_INJECT_CRASH")
                .ok()
                .as_deref(),
            std::env::var("MOCKET_CAMPAIGN_POISON_CASE").ok().as_deref(),
            std::env::var("MOCKET_CAMPAIGN_INJECT_DRAIN")
                .ok()
                .as_deref(),
        )
    }
}

/// Worker-side configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The campaign directory.
    pub campaign_dir: PathBuf,
    /// This worker's slot id under the supervisor.
    pub worker_id: usize,
    /// Lease heartbeat/TTL parameters (must match the supervisor's).
    pub lease: LeaseConfig,
    /// Crash count at which a case is quarantined.
    pub poison_threshold: usize,
    /// Short hash of the verified campaign plan, pinned into every
    /// lease this worker writes — so stealers and a re-elected
    /// supervisor can prove which plan epoch the owner executed.
    pub plan_hash: String,
    /// Failure injection (test hooks), normally all `None`.
    pub inject: InjectionConfig,
}

/// Everything a worker needs besides the config: the pinned plan and
/// the deterministically regenerated model artifacts it was verified
/// against.
pub struct WorkerContext<'a> {
    /// The pinned campaign plan.
    pub plan: &'a CampaignPlan,
    /// Spec name recorded in quarantine artifacts.
    pub spec_name: &'a str,
    /// Spec/model identity recorded in quarantine artifacts.
    pub spec_config: &'a str,
    /// Runner config recorded in quarantine artifacts.
    pub run: &'a RunConfig,
    /// The selected edge paths, by plan index.
    pub paths: &'a [Vec<EdgeId>],
    /// Model-checking seconds spent building the graph (folded into
    /// per-shard wall totals).
    pub check_seconds: f64,
}

/// Per-shard setup handed to the pipeline factory.
pub struct ShardSetup {
    /// The claimed shard.
    pub shard: usize,
    /// Its half-open case-index window.
    pub range: (usize, usize),
    /// The shard's data directory (journal + artifacts).
    pub shard_dir: PathBuf,
    /// The case gate to install as `PipelineConfig::case_gate`.
    pub gate: Arc<dyn Fn(usize, &str) -> CaseGate + Send + Sync>,
}

/// How the worker loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// Every shard is retired.
    Completed,
    /// A drain was requested; in-flight state is journaled and the
    /// campaign is resumable.
    Drained,
}

fn make_gate(
    cfg: &WorkerConfig,
    lease: Arc<LeaseHandle>,
    poisoned: BTreeSet<String>,
) -> Arc<dyn Fn(usize, &str) -> CaseGate + Send + Sync> {
    let campaign_dir = cfg.campaign_dir.clone();
    let inject = cfg.inject.clone();
    Arc::new(move |idx, hash| {
        if drain_requested(&campaign_dir) {
            return CaseGate::Stop;
        }
        if inject.drain == Some(idx) {
            let _ = request_drain(&campaign_dir);
            return CaseGate::Stop;
        }
        if poisoned.contains(hash) {
            return CaseGate::Skip;
        }
        // Record the in-flight case *before* any chance of dying, so
        // a crash from here on is attributed to this case.
        lease.set_case(idx, hash);
        if let Some((kind, at)) = inject.crash {
            // One-shot: the exclusive marker create makes sure only
            // the first worker to reach the index crashes, clean
            // restarts and resumes run through.
            if at == idx
                && fs::OpenOptions::new()
                    .write(true)
                    .create_new(true)
                    .open(campaign_dir.join(CRASH_INJECTED_FILE_NAME))
                    .is_ok()
            {
                match kind {
                    CrashKind::Abort => std::process::abort(),
                    CrashKind::Sigkill => sigkill_self(),
                }
            }
        }
        if inject.poison == Some(idx) {
            // A poison case: dies on every attempt, by any worker.
            std::process::abort();
        }
        CaseGate::Run
    })
}

/// Builds the synthetic quarantine artifact for a crashed case: a
/// node-death inconsistency pinned at step 0 with the case as its own
/// reproducer, so `mocket-cli replay` can re-drive it like any other
/// artifact.
fn poison_artifact(
    ctx: &WorkerContext<'_>,
    graph: &StateGraph,
    idx: usize,
    victim: &LeaseInfo,
) -> Option<ReplayArtifact> {
    let path = ctx.paths.get(idx)?;
    let tc = TestCase::from_edge_path(graph, path)?;
    let (&first, &last) = (path.first()?, path.last()?);
    let final_enabled: Vec<ActionInstance> = graph
        .enabled_at(graph.edge(last).to)
        .into_iter()
        .cloned()
        .collect();
    let inconsistency = Inconsistency::NodeDeath {
        step: 0,
        action: graph.edge(first).action.clone(),
        node: 0,
        reason: format!(
            "worker {} (pid {}) crashed while this case was in flight; \
             quarantined as a poison case",
            victim.worker, victim.pid
        ),
    };
    Some(ReplayArtifact::from_failure(
        ctx.spec_name,
        ctx.spec_config,
        &inconsistency,
        Determinism::Unconfirmed,
        None,
        ctx.run,
        tc.len(),
        final_enabled,
        None,
        tc,
    ))
}

/// The worker's main loop: claim shards (stealing stale leases and
/// attributing crashes), run each through `build_pipeline(setup)`'s
/// pipeline, retire them, until all shards are done or a drain lands.
pub fn worker_loop<BP, MS>(
    cfg: &WorkerConfig,
    ctx: &WorkerContext<'_>,
    mut graph: StateGraph,
    mut build_pipeline: BP,
    mut make_sut: MS,
) -> io::Result<WorkerOutcome>
where
    BP: FnMut(&ShardSetup) -> Pipeline,
    MS: FnMut() -> Box<dyn SystemUnderTest>,
{
    let shard_count = ctx.plan.shard_count();
    loop {
        if drain_requested(&cfg.campaign_dir) {
            return Ok(WorkerOutcome::Drained);
        }
        let mut all_done = true;
        let mut progressed = false;
        for i in 0..shard_count {
            if drain_requested(&cfg.campaign_dir) {
                return Ok(WorkerOutcome::Drained);
            }
            // Offset the scan by worker id so fresh workers spread out
            // instead of all contending for shard 0.
            let shard = (i + cfg.worker_id) % shard_count;
            let mut on_steal = |victim: &LeaseInfo| {
                if victim.plan.as_deref().is_some_and(|p| p != cfg.plan_hash) {
                    // The victim verified against a different plan —
                    // its case indices are not comparable to ours, so
                    // a crash cannot be attributed safely.
                    eprintln!(
                        "[mocket-worker {}] stole shard {shard} from a worker on a \
                         different plan epoch; crash not attributed",
                        cfg.worker_id
                    );
                    return;
                }
                let artifact_for = |idx: usize| poison_artifact(ctx, &graph, idx, victim);
                match record_worker_crash(
                    &cfg.campaign_dir,
                    shard,
                    victim,
                    cfg.poison_threshold,
                    &artifact_for,
                ) {
                    Ok(CrashDisposition::Recorded { total, poisoned }) => {
                        eprintln!(
                            "[mocket-worker {}] stole shard {shard} from dead/hung \
                             worker {} (pid {}); crash #{total} attributed{}",
                            cfg.worker_id,
                            victim.worker,
                            victim.pid,
                            if poisoned { ", case quarantined" } else { "" }
                        );
                    }
                    Ok(_) => {}
                    Err(e) => eprintln!(
                        "[mocket-worker {}] crash attribution failed: {e}",
                        cfg.worker_id
                    ),
                }
            };
            let claimed = match try_claim(
                &cfg.campaign_dir,
                shard,
                cfg.worker_id,
                &cfg.lease,
                Some(&cfg.plan_hash),
                &mut on_steal,
            )? {
                ClaimOutcome::Done => continue,
                ClaimOutcome::Busy => {
                    all_done = false;
                    continue;
                }
                ClaimOutcome::Claimed(handle) => handle,
            };
            all_done = false;
            progressed = true;
            let lease = Arc::new(claimed);
            let poisoned: BTreeSet<String> = load_poisoned(&cfg.campaign_dir)?
                .into_iter()
                .map(|p| p.hash)
                .collect();
            let setup = ShardSetup {
                shard,
                range: ctx.plan.shard_range(shard),
                shard_dir: shard_data_dir(&cfg.campaign_dir, shard),
                gate: make_gate(cfg, lease.clone(), poisoned),
            };
            let pipeline = build_pipeline(&setup);
            let PipelineResult {
                graph: g,
                lock_conflict,
                stopped_by_gate,
                ..
            } = pipeline.run_prepared(graph, ctx.check_seconds, &mut make_sut);
            graph = g;
            if let Some(conflict) = lock_conflict {
                // The shard journal is still locked — most likely the
                // hung worker we stole the lease from hasn't been
                // killed yet. Release the shard and come back to it.
                eprintln!(
                    "[mocket-worker {}] shard {shard} journal busy, will retry: {conflict}",
                    cfg.worker_id
                );
                drop(lease);
                progressed = false;
                continue;
            }
            if stopped_by_gate {
                // Drain: the lease is released (not retired) on drop.
                return Ok(WorkerOutcome::Drained);
            }
            lease.mark_done()?;
        }
        if all_done {
            return Ok(WorkerOutcome::Completed);
        }
        if !progressed {
            // Everything claimable is busy (or waiting out a lock):
            // idle one heartbeat before rescanning.
            std::thread::sleep(cfg.lease.heartbeat);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{CaseOutcome, JournalEntry};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mocket-worker-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn victim(case: usize, hash: &str) -> LeaseInfo {
        LeaseInfo {
            pid: 12345,
            token: None,
            worker: 0,
            hb: 0,
            plan: None,
            case: Some((case, hash.to_string())),
        }
    }

    #[test]
    fn drain_marker_roundtrip() {
        let dir = tmp("drain");
        assert!(!drain_requested(&dir));
        request_drain(&dir).unwrap();
        assert!(drain_requested(&dir));
        clear_drain_marker(&dir);
        assert!(!drain_requested(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_and_poison_records_roundtrip() {
        let rec = CrashRecord {
            case: 4,
            hash: "abcd".into(),
            worker: 2,
            pid: 99,
        };
        assert_eq!(CrashRecord::parse(rec.render().trim()), Some(rec));
        let p = PoisonRecord {
            case: 4,
            hash: "abcd".into(),
            crashes: 3,
        };
        assert_eq!(PoisonRecord::parse(p.render().trim()), Some(p));
        assert_eq!(CrashRecord::parse("garbage"), None);
    }

    #[test]
    fn crash_attribution_skips_journaled_case() {
        let dir = tmp("attrib");
        // The victim journaled its verdict before dying: innocent.
        let shard_dir = shard_data_dir(&dir, 0);
        let mut journal = CampaignJournal::open(&shard_dir).unwrap();
        journal
            .record(JournalEntry {
                hash: "aaaa".into(),
                attempts: 1,
                determinism: None,
                outcome: CaseOutcome::Passed,
            })
            .unwrap();
        drop(journal);
        let none = |_: usize| None;
        assert_eq!(
            record_worker_crash(&dir, 0, &victim(3, "aaaa"), 2, &none).unwrap(),
            CrashDisposition::AlreadyJournaled
        );
        assert!(load_crashes(&dir).unwrap().is_empty());
        // No in-flight case at all: nothing to attribute.
        let idle = LeaseInfo {
            pid: 1,
            token: None,
            worker: 0,
            hb: 0,
            plan: None,
            case: None,
        };
        assert_eq!(
            record_worker_crash(&dir, 0, &idle, 2, &none).unwrap(),
            CrashDisposition::NoInflightCase
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poison_threshold_quarantines_after_k_crashes() {
        let dir = tmp("poison");
        let none = |_: usize| None;
        assert_eq!(
            record_worker_crash(&dir, 0, &victim(5, "feed"), 2, &none).unwrap(),
            CrashDisposition::Recorded {
                total: 1,
                poisoned: false
            }
        );
        assert_eq!(
            record_worker_crash(&dir, 0, &victim(5, "feed"), 2, &none).unwrap(),
            CrashDisposition::Recorded {
                total: 2,
                poisoned: true
            }
        );
        let poisoned = load_poisoned(&dir).unwrap();
        assert_eq!(poisoned.len(), 1);
        assert_eq!(poisoned[0].hash, "feed");
        assert_eq!(poisoned[0].crashes, 2);
        // A third crash of the same case does not re-poison.
        assert_eq!(
            record_worker_crash(&dir, 0, &victim(5, "feed"), 2, &none).unwrap(),
            CrashDisposition::Recorded {
                total: 3,
                poisoned: false
            }
        );
        assert_eq!(load_poisoned(&dir).unwrap().len(), 1);
        assert_eq!(load_crashes(&dir).unwrap().len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injection_config_parses_env_shapes() {
        let cfg = InjectionConfig::parse(Some("abort:3"), None, None);
        assert_eq!(cfg.crash, Some((CrashKind::Abort, 3)));
        let cfg = InjectionConfig::parse(Some("sigkill:0"), Some("7"), Some("2"));
        assert_eq!(cfg.crash, Some((CrashKind::Sigkill, 0)));
        assert_eq!(cfg.poison, Some(7));
        assert_eq!(cfg.drain, Some(2));
        let cfg = InjectionConfig::parse(Some("explode:1"), Some("x"), None);
        assert_eq!(cfg.crash, None);
        assert_eq!(cfg.poison, None);
    }
}
