//! Controlled testing of a single test case (§4.3.2, Figure 7).
//!
//! The runner deploys a fresh cluster, optionally checks the initial
//! state, then walks the test case: external faults and user requests
//! are triggered by the testbed, every other action must be offered
//! by a blocked node and is released on match. After each action the
//! state checker compares runtime values with the verified state; at
//! the end leftover offers are classified against the actions the
//! specification enables in the final state.

use std::time::Duration;

use mocket_obs::causal::Tracer;
use mocket_obs::Obs;
use mocket_sim::{Clock, RealClock};
use mocket_tla::{ActionClass, ActionInstance, State};

use crate::mapping::{MappingRegistry, VarTarget};
use crate::msgpool::{MessagePools, PoolError};
use crate::report::{Inconsistency, VariableDivergence};
use crate::scheduler::{
    find_match, offered_actions, translate_offers_observed, unexpected_offers_observed,
};
use crate::statecheck::check_state_observed;
use crate::sut::{ExecReport, SutError, SystemUnderTest};
use crate::testcase::TestCase;

/// Runner configuration.
///
/// Offer polling is deadline-based: the runner keeps polling (with
/// exponential backoff between rounds) until a matching offer shows
/// up or [`offer_deadline`](Self::offer_deadline) elapses — replacing
/// the old fixed `poll_rounds` count, which conflated "how long to
/// wait" with "how fast to poll". A separate
/// [`per_action_budget`](Self::per_action_budget) bounds each step
/// end-to-end; blowing it is reported as a watchdog-timeout
/// inconsistency rather than an opaque hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunConfig {
    /// Check the verified initial state before the first action
    /// (§4.3.1 adds `checkAllStates` for the first scheduled action).
    pub check_initial: bool,
    /// How long to wait for a matching offer before declaring a
    /// missing action (the paper's scheduler timeout). At least one
    /// poll always happens, even with a zero deadline.
    pub offer_deadline: Duration,
    /// Wall-clock budget for one step end-to-end (offer matching,
    /// execution, state check). Exceeding it fails the test case with
    /// [`Inconsistency::WatchdogTimeout`].
    pub per_action_budget: Duration,
    /// Sleep between the first and second offer poll; doubled after
    /// every further miss.
    pub poll_backoff: Duration,
    /// Upper bound for the poll backoff.
    pub poll_backoff_max: Duration,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            check_initial: true,
            offer_deadline: Duration::from_secs(2),
            per_action_budget: Duration::from_secs(10),
            poll_backoff: Duration::from_millis(1),
            poll_backoff_max: Duration::from_millis(50),
        }
    }
}

impl RunConfig {
    /// A configuration for in-process targets that answer offers
    /// immediately: short deadlines so missing-action cases fail fast.
    pub fn fast() -> Self {
        RunConfig {
            check_initial: true,
            offer_deadline: Duration::from_millis(50),
            per_action_budget: Duration::from_secs(5),
            poll_backoff: Duration::from_millis(1),
            poll_backoff_max: Duration::from_millis(10),
        }
    }
}

/// The runner's deterministic poll-backoff schedule: `poll_backoff`
/// doubled after every miss, capped at `poll_backoff_max`. Pure
/// function of the config — the sleep sequence between offer polls is
/// identical on every run, real or simulated; only the number of
/// sleeps taken differs (bounded by `offer_deadline` on the run's
/// clock).
pub fn backoff_schedule(config: &RunConfig) -> impl Iterator<Item = Duration> {
    let cap = config.poll_backoff_max;
    std::iter::successors(Some(config.poll_backoff.min(cap)), move |&d| {
        Some((d * 2).min(cap))
    })
}

/// Outcome of one controlled run.
#[derive(Debug, Clone)]
pub enum TestOutcome {
    /// Execution and all state checks matched the specification.
    Passed,
    /// A divergence was found.
    Failed(Inconsistency),
}

impl TestOutcome {
    /// Whether the run passed.
    pub fn passed(&self) -> bool {
        matches!(self, TestOutcome::Passed)
    }
}

/// Statistics of one controlled run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Actions actually executed (scheduled and matched).
    pub actions_executed: usize,
    /// State checks performed.
    pub checks: usize,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
}

/// Builds fresh message pools from the registry's message-related
/// variable mappings.
pub fn pools_from_registry(registry: &MappingRegistry) -> MessagePools {
    let mut pools = MessagePools::new();
    for vm in registry.variables() {
        if let Some(VarTarget::MessagePool { pool, bag }) = &vm.target {
            pools.register(pool.clone(), *bag);
        }
    }
    pools
}

/// Runs one test case against the system under test.
///
/// `final_enabled` lists the action instances the specification
/// enables in the test case's final state (read from the state-space
/// graph); leftover offers outside this set are unexpected actions.
pub fn run_test_case(
    sut: &mut dyn SystemUnderTest,
    test_case: &TestCase,
    registry: &MappingRegistry,
    final_enabled: &[ActionInstance],
    config: &RunConfig,
) -> Result<(TestOutcome, RunStats), SutError> {
    run_test_case_observed(
        sut,
        test_case,
        registry,
        final_enabled,
        config,
        &Obs::disabled(),
    )
}

/// [`run_test_case`] with observability: scheduler release latency
/// (`timing.runner.release_latency_ms`), offer-poll and action
/// counters (`runner.*`), and state-check/scheduler metrics. Only
/// metrics are recorded here — per-step events would dominate the
/// event stream; the pipeline owns per-case events.
pub fn run_test_case_observed(
    sut: &mut dyn SystemUnderTest,
    test_case: &TestCase,
    registry: &MappingRegistry,
    final_enabled: &[ActionInstance],
    config: &RunConfig,
    obs: &Obs,
) -> Result<(TestOutcome, RunStats), SutError> {
    run_test_case_clocked(
        sut,
        test_case,
        registry,
        final_enabled,
        config,
        obs,
        &RealClock::new(),
    )
}

/// [`run_test_case_observed`] on an explicit [`Clock`]. Every wait and
/// every measured duration — offer deadline, poll backoff, per-action
/// budget, `RunStats::seconds` — counts this clock's time. With a
/// `SimClock` the whole run takes zero wall time on waits and its
/// timings are byte-reproducible.
#[allow(clippy::too_many_arguments)]
pub fn run_test_case_clocked(
    sut: &mut dyn SystemUnderTest,
    test_case: &TestCase,
    registry: &MappingRegistry,
    final_enabled: &[ActionInstance],
    config: &RunConfig,
    obs: &Obs,
    clock: &dyn Clock,
) -> Result<(TestOutcome, RunStats), SutError> {
    run_test_case_traced(
        sut,
        test_case,
        registry,
        final_enabled,
        config,
        obs,
        clock,
        &Tracer::disabled(),
    )
}

/// [`run_test_case_clocked`] with a causal [`Tracer`]: the tracer is
/// installed on the SUT before deployment (so cluster and network
/// events reach it), every scheduler release and external trigger is
/// recorded with its step context, and the caller drains the events
/// afterwards. The disabled tracer makes this identical to the
/// untraced path.
#[allow(clippy::too_many_arguments)]
pub fn run_test_case_traced(
    sut: &mut dyn SystemUnderTest,
    test_case: &TestCase,
    registry: &MappingRegistry,
    final_enabled: &[ActionInstance],
    config: &RunConfig,
    obs: &Obs,
    clock: &dyn Clock,
    tracer: &Tracer,
) -> Result<(TestOutcome, RunStats), SutError> {
    let start = clock.now();
    let mut stats = RunStats::default();
    sut.install_tracer(tracer);
    sut.deploy()?;
    let result = drive(
        sut,
        test_case,
        registry,
        final_enabled,
        config,
        &mut stats,
        obs,
        clock,
        tracer,
    );
    sut.teardown();
    stats.seconds = clock.now().saturating_sub(start).as_secs_f64();
    result.map(|outcome| (outcome, stats))
}

/// How a SUT error during a driven step is handled.
enum Classified {
    /// The system under test is at fault: report as an inconsistency.
    Fail(Inconsistency),
    /// Harness-side trouble: propagate (the pipeline may retry).
    Harness(SutError),
}

/// Node deaths and node failures mid-run are divergences in the
/// system under test (a specification never models its nodes dying
/// or hanging on their own); everything else is harness trouble.
fn classify_sut_error(
    err: SutError,
    step: usize,
    action: &ActionInstance,
    waited: Duration,
) -> Classified {
    match err {
        SutError::NodeDeath { node, reason } => Classified::Fail(Inconsistency::NodeDeath {
            step,
            action: action.clone(),
            node,
            reason,
        }),
        SutError::NodeFailure { node, message } => {
            Classified::Fail(Inconsistency::WatchdogTimeout {
                step,
                action: action.clone(),
                waited,
                reason: format!("node {node}: {message}"),
            })
        }
        other => Classified::Harness(other),
    }
}

#[allow(clippy::too_many_arguments)]
fn drive(
    sut: &mut dyn SystemUnderTest,
    test_case: &TestCase,
    registry: &MappingRegistry,
    final_enabled: &[ActionInstance],
    config: &RunConfig,
    stats: &mut RunStats,
    obs: &Obs,
    clock: &dyn Clock,
    tracer: &Tracer,
) -> Result<TestOutcome, SutError> {
    let mut pools = pools_from_registry(registry);

    // Classifies a failed SUT call: crash-style errors become a
    // failed outcome, harness errors propagate to the caller.
    // `$start` is a `Duration` read from the run's clock.
    macro_rules! try_sut {
        ($call:expr, $step:expr, $action:expr, $start:expr) => {
            match $call {
                Ok(v) => v,
                Err(e) => {
                    let waited = clock.now().saturating_sub($start);
                    return match classify_sut_error(e, $step, $action, waited) {
                        Classified::Fail(inc) => Ok(TestOutcome::Failed(inc)),
                        Classified::Harness(e) => Err(e),
                    }
                }
            }
        };
    }

    if config.check_initial {
        let init_start = clock.now();
        let init_action = ActionInstance::nullary("<Init>");
        let snapshot = try_sut!(sut.snapshot(), 0, &init_action, init_start);
        stats.checks += 1;
        let divergences = check_state_observed(&test_case.initial, &snapshot, &pools, registry, obs);
        if !divergences.is_empty() {
            return Ok(TestOutcome::Failed(Inconsistency::InconsistentState {
                step: 0,
                action: init_action,
                divergences,
            }));
        }
    }

    for (i, step) in test_case.steps.iter().enumerate() {
        let step_start = clock.now();
        let class = registry
            .action_by_spec_name(&step.action.name)
            .map(|m| m.class)
            .unwrap_or(ActionClass::SingleNode);

        let report: ExecReport = match class {
            ActionClass::ExternalFault | ActionClass::UserRequest => {
                // Triggered by the testbed itself (§4.1.2): scripts
                // for crash/restart/user requests, overriding switches
                // for drop/duplicate.
                obs.metrics().add("runner.external_triggers", 1);
                tracer.external(i as u64, &step.action.name, 0);
                try_sut!(sut.execute_external(&step.action), i, &step.action, step_start)
            }
            _ => {
                // Deadline-based offer matching with exponential
                // backoff: poll, sleep, poll again until the offer
                // shows up or the deadline elapses. Poll counts depend
                // on how much clock time each poll burns, so the poll
                // metrics live under the `timing.` quarantine.
                let mut matched = None;
                let mut last_offers = Vec::new();
                let mut backoff = backoff_schedule(config);
                loop {
                    obs.metrics().add("timing.runner.offer_polls", 1);
                    let offers = translate_offers_observed(
                        registry,
                        try_sut!(sut.offers(), i, &step.action, step_start),
                        obs,
                    );
                    if let Some(hit) = find_match(&step.action, &offers) {
                        matched = Some(hit.raw.clone());
                        break;
                    }
                    last_offers = offers;
                    if clock.now().saturating_sub(step_start) >= config.offer_deadline {
                        break;
                    }
                    clock.sleep(backoff.next().expect("backoff schedule is infinite"));
                }
                match matched {
                    Some(offer) => {
                        // Scheduler release latency: time from step
                        // start until the blocked action was matched
                        // and released for execution.
                        let waited = clock.now().saturating_sub(step_start);
                        obs.metrics()
                            .observe("timing.runner.release_latency_ms", waited.as_secs_f64() * 1e3);
                        obs.metrics()
                            .observe("timing.profile.scheduler_release_seconds", waited.as_secs_f64());
                        obs.metrics().add("runner.actions_released", 1);
                        tracer.release(i as u64, offer.node, &step.action.name, 0);
                        try_sut!(sut.execute(&offer), i, &step.action, step_start)
                    }
                    None => {
                        obs.metrics().add("runner.missing_actions", 1);
                        return Ok(TestOutcome::Failed(Inconsistency::MissingAction {
                            step: i,
                            action: step.action.clone(),
                            offered: offered_actions(&last_offers),
                        }));
                    }
                }
            }
        };
        stats.actions_executed += 1;

        // Maintain the message pools from the reported events,
        // translating message contents into the spec domain.
        for event in &report.msg_events {
            let event = translate_event(registry, event);
            if let Err(err) = pools.apply(&event) {
                return Ok(TestOutcome::Failed(pool_error_to_inconsistency(
                    i, step, &pools, err,
                )));
            }
        }

        // Check the verified post-state.
        let snapshot = try_sut!(sut.snapshot(), i, &step.action, step_start);
        stats.checks += 1;
        let divergences = check_state_observed(&step.expected, &snapshot, &pools, registry, obs);
        if !divergences.is_empty() {
            return Ok(TestOutcome::Failed(Inconsistency::InconsistentState {
                step: i,
                action: step.action.clone(),
                divergences,
            }));
        }

        // Per-step watchdog: a step that consumed more than its
        // budget indicates a stalled system even if every call
        // eventually answered. The budget counts the run's clock —
        // virtual time under simulation.
        let step_elapsed = clock.now().saturating_sub(step_start);
        obs.metrics()
            .observe("timing.profile.runner_step_seconds", step_elapsed.as_secs_f64());
        if step_elapsed > config.per_action_budget {
            return Ok(TestOutcome::Failed(Inconsistency::WatchdogTimeout {
                step: i,
                action: step.action.clone(),
                waited: step_elapsed,
                reason: "per-action budget exceeded".to_string(),
            }));
        }
    }

    // End of test case: leftover notifications the spec does not
    // enable in the final state are unexpected actions.
    let final_start = clock.now();
    let final_action = ActionInstance::nullary("<Final>");
    let offers = translate_offers_observed(
        registry,
        try_sut!(
            sut.offers(),
            test_case.steps.len(),
            &final_action,
            final_start
        ),
        obs,
    );
    let unexpected = unexpected_offers_observed(registry, &offers, final_enabled, obs);
    if !unexpected.is_empty() {
        return Ok(TestOutcome::Failed(Inconsistency::UnexpectedAction {
            actions: unexpected,
        }));
    }

    Ok(TestOutcome::Passed)
}

fn translate_event(
    registry: &MappingRegistry,
    event: &crate::sut::MsgEvent,
) -> crate::sut::MsgEvent {
    use crate::sut::MsgEvent;
    let t = |v: &mocket_tla::Value| registry.consts().to_spec(v);
    match event {
        MsgEvent::Send { pool, msg } => MsgEvent::Send {
            pool: pool.clone(),
            msg: t(msg),
        },
        MsgEvent::Receive { pool, msg } => MsgEvent::Receive {
            pool: pool.clone(),
            msg: t(msg),
        },
        MsgEvent::Drop { pool, msg } => MsgEvent::Drop {
            pool: pool.clone(),
            msg: t(msg),
        },
        MsgEvent::Duplicate { pool, msg } => MsgEvent::Duplicate {
            pool: pool.clone(),
            msg: t(msg),
        },
    }
}

/// A pool bookkeeping failure means the implementation consumed or
/// dropped a message the specification does not have in flight —
/// report it as an inconsistent state on the pool variable.
fn pool_error_to_inconsistency(
    step: usize,
    s: &crate::testcase::Step,
    pools: &MessagePools,
    err: PoolError,
) -> Inconsistency {
    let (variable, actual) = match &err {
        PoolError::UnknownPool(p) => (p.clone(), None),
        PoolError::MissingMessage { pool, .. } => (pool.clone(), pools.as_value(pool)),
    };
    let expected = expected_value(&s.expected, &variable);
    Inconsistency::InconsistentState {
        step,
        action: s.action.clone(),
        divergences: vec![VariableDivergence {
            variable,
            expected,
            actual,
        }],
    }
}

fn expected_value(state: &State, variable: &str) -> mocket_tla::Value {
    state
        .get(variable)
        .cloned()
        .unwrap_or(mocket_tla::Value::Nil)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ActionBinding;
    use crate::sut::{MsgEvent, Offer, Snapshot};
    use mocket_tla::Value;

    /// A scripted fake SUT: a counter machine with one variable `n`.
    /// The script controls which offers appear and what executing
    /// them does, so every runner path is testable without threads.
    struct FakeSut {
        n: i64,
        /// Offer `inc` whenever `n < limit`.
        limit: i64,
        /// If true, executing `inc` silently does nothing (stuck
        /// implementation → inconsistent state).
        broken_inc: bool,
        /// If true, never offer anything (missing action).
        mute: bool,
        /// Extra bogus offer emitted always (unexpected at end).
        rogue_offer: bool,
        deployed: bool,
    }

    impl FakeSut {
        fn new(limit: i64) -> Self {
            FakeSut {
                n: 0,
                limit,
                broken_inc: false,
                mute: false,
                rogue_offer: false,
                deployed: false,
            }
        }
    }

    impl SystemUnderTest for FakeSut {
        fn deploy(&mut self) -> Result<(), SutError> {
            self.n = 0;
            self.deployed = true;
            Ok(())
        }

        fn teardown(&mut self) {
            self.deployed = false;
        }

        fn offers(&mut self) -> Result<Vec<Offer>, SutError> {
            assert!(self.deployed);
            let mut out = Vec::new();
            if !self.mute && self.n < self.limit {
                out.push(Offer {
                    node: 1,
                    action: ActionInstance::nullary("inc"),
                });
            }
            if self.rogue_offer {
                out.push(Offer {
                    node: 2,
                    action: ActionInstance::nullary("rogue"),
                });
            }
            Ok(out)
        }

        fn execute(&mut self, offer: &Offer) -> Result<ExecReport, SutError> {
            assert_eq!(offer.action.name, "inc");
            if !self.broken_inc {
                self.n += 1;
            }
            Ok(ExecReport::default())
        }

        fn execute_external(&mut self, action: &ActionInstance) -> Result<ExecReport, SutError> {
            match action.name.as_str() {
                // `Reset` models a user request.
                "Reset" => {
                    self.n = 0;
                    Ok(ExecReport::default())
                }
                other => Err(SutError::External(format!("unknown external {other}"))),
            }
        }

        fn snapshot(&mut self) -> Result<Snapshot, SutError> {
            Ok(Snapshot::from_pairs([("counter", Value::Int(self.n))]))
        }
    }

    fn registry() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.map_class_field("n", "counter").map_action(
            "Inc",
            "inc",
            mocket_tla::ActionClass::SingleNode,
            ActionBinding::Method,
        );
        r.map_action(
            "Reset",
            "reset.sh",
            mocket_tla::ActionClass::UserRequest,
            ActionBinding::Script,
        );
        r
    }

    fn st(n: i64) -> State {
        State::from_pairs([("n", Value::Int(n))])
    }

    fn inc_case(len: i64) -> TestCase {
        TestCase::new(
            st(0),
            (1..=len)
                .map(|i| (ActionInstance::nullary("Inc"), st(i)))
                .collect(),
        )
    }

    #[test]
    fn conformant_run_passes() {
        let mut sut = FakeSut::new(10);
        let (outcome, stats) = run_test_case(
            &mut sut,
            &inc_case(3),
            &registry(),
            &[ActionInstance::nullary("Inc")],
            &RunConfig::fast(),
        )
        .unwrap();
        assert!(outcome.passed(), "{outcome:?}");
        assert_eq!(stats.actions_executed, 3);
        assert_eq!(stats.checks, 4, "initial + one per action");
        assert!(!sut.deployed, "teardown must run");
    }

    #[test]
    fn observed_run_records_scheduler_and_statecheck_metrics() {
        let mut sut = FakeSut::new(10);
        let obs = Obs::disabled();
        let (outcome, stats) = run_test_case_observed(
            &mut sut,
            &inc_case(3),
            &registry(),
            &[ActionInstance::nullary("Inc")],
            &RunConfig::fast(),
            &obs,
        )
        .unwrap();
        assert!(outcome.passed(), "{outcome:?}");
        let m = obs.metrics();
        assert_eq!(m.counter("runner.actions_released"), 3);
        assert!(m.counter("timing.runner.offer_polls") >= 3);
        assert_eq!(m.counter("statecheck.checks"), stats.checks as u64);
        assert_eq!(m.counter("statecheck.divergences"), 0);
        let latency = m
            .histogram("timing.runner.release_latency_ms")
            .expect("release latency recorded");
        assert_eq!(latency.count, 3);
    }

    #[test]
    fn broken_effect_is_inconsistent_state() {
        let mut sut = FakeSut::new(10);
        sut.broken_inc = true;
        let (outcome, _) = run_test_case(
            &mut sut,
            &inc_case(2),
            &registry(),
            &[],
            &RunConfig::fast(),
        )
        .unwrap();
        match outcome {
            TestOutcome::Failed(Inconsistency::InconsistentState {
                step, divergences, ..
            }) => {
                assert_eq!(step, 0);
                assert_eq!(divergences[0].variable, "n");
                assert_eq!(divergences[0].expected, Value::Int(1));
                assert_eq!(divergences[0].actual, Some(Value::Int(0)));
            }
            other => panic!("expected inconsistent state, got {other:?}"),
        }
    }

    #[test]
    fn mute_sut_is_missing_action() {
        let mut sut = FakeSut::new(10);
        sut.mute = true;
        let (outcome, _) = run_test_case(
            &mut sut,
            &inc_case(1),
            &registry(),
            &[],
            &RunConfig::fast(),
        )
        .unwrap();
        match outcome {
            TestOutcome::Failed(Inconsistency::MissingAction { action, .. }) => {
                assert_eq!(action.name, "Inc");
            }
            other => panic!("expected missing action, got {other:?}"),
        }
    }

    #[test]
    fn rogue_offer_is_unexpected_action() {
        let mut sut = FakeSut::new(10);
        sut.rogue_offer = true;
        let (outcome, _) = run_test_case(
            &mut sut,
            &inc_case(1),
            &registry(),
            &[ActionInstance::nullary("Inc")],
            &RunConfig::fast(),
        )
        .unwrap();
        match outcome {
            TestOutcome::Failed(Inconsistency::UnexpectedAction { actions }) => {
                assert_eq!(actions, vec![ActionInstance::nullary("rogue")]);
            }
            other => panic!("expected unexpected action, got {other:?}"),
        }
    }

    #[test]
    fn benign_leftover_offers_pass() {
        // After 1 of 3 possible Incs, `inc` is still offered — but the
        // spec enables Inc at the final state, so it is benign.
        let mut sut = FakeSut::new(10);
        let (outcome, _) = run_test_case(
            &mut sut,
            &inc_case(1),
            &registry(),
            &[ActionInstance::nullary("Inc")],
            &RunConfig::fast(),
        )
        .unwrap();
        assert!(outcome.passed());
    }

    #[test]
    fn user_requests_are_triggered_externally() {
        let mut sut = FakeSut::new(10);
        let tc = TestCase::new(
            st(0),
            vec![
                (ActionInstance::nullary("Inc"), st(1)),
                (ActionInstance::nullary("Reset"), st(0)),
            ],
        );
        let (outcome, stats) = run_test_case(
            &mut sut,
            &tc,
            &registry(),
            &[ActionInstance::nullary("Inc")],
            &RunConfig::fast(),
        )
        .unwrap();
        assert!(outcome.passed(), "{outcome:?}");
        assert_eq!(stats.actions_executed, 2);
    }

    #[test]
    fn wrong_initial_state_detected() {
        let mut sut = FakeSut::new(10);
        let tc = TestCase::new(st(7), vec![]);
        let (outcome, _) =
            run_test_case(&mut sut, &tc, &registry(), &[], &RunConfig::fast()).unwrap();
        match outcome {
            TestOutcome::Failed(Inconsistency::InconsistentState { action, .. }) => {
                assert_eq!(action.name, "<Init>");
            }
            other => panic!("expected init inconsistency, got {other:?}"),
        }
    }

    #[test]
    fn pool_violation_reported_on_ghost_receive() {
        /// A SUT that reports receiving a message never sent.
        struct GhostSut;
        impl SystemUnderTest for GhostSut {
            fn deploy(&mut self) -> Result<(), SutError> {
                Ok(())
            }
            fn teardown(&mut self) {}
            fn offers(&mut self) -> Result<Vec<Offer>, SutError> {
                Ok(vec![Offer {
                    node: 1,
                    action: ActionInstance::nullary("recv"),
                }])
            }
            fn execute(&mut self, _offer: &Offer) -> Result<ExecReport, SutError> {
                Ok(ExecReport {
                    msg_events: vec![MsgEvent::Receive {
                        pool: "messages".into(),
                        msg: Value::Int(42),
                    }],
                })
            }
            fn execute_external(
                &mut self,
                _action: &ActionInstance,
            ) -> Result<ExecReport, SutError> {
                unreachable!()
            }
            fn snapshot(&mut self) -> Result<Snapshot, SutError> {
                Ok(Snapshot::default())
            }
        }

        let mut registry = MappingRegistry::new();
        registry.map_message_pool("messages", true).map_action(
            "Recv",
            "recv",
            mocket_tla::ActionClass::MessageReceive,
            ActionBinding::Snippet,
        );
        let tc = TestCase::new(
            State::from_pairs([("messages", Value::fun([]))]),
            vec![(
                ActionInstance::nullary("Recv"),
                State::from_pairs([("messages", Value::fun([]))]),
            )],
        );
        let mut sut = GhostSut;
        let (outcome, _) = run_test_case(
            &mut sut,
            &tc,
            &registry,
            &[],
            &RunConfig {
                check_initial: false,
                ..RunConfig::fast()
            },
        )
        .unwrap();
        match outcome {
            TestOutcome::Failed(Inconsistency::InconsistentState { divergences, .. }) => {
                assert_eq!(divergences[0].variable, "messages");
            }
            other => panic!("expected pool inconsistency, got {other:?}"),
        }
    }

    /// A virtual clock that records every sleep it serves, so a test
    /// can assert the exact wait sequence a run produced.
    struct RecordingClock {
        sim: mocket_sim::SimClock,
        sleeps: std::sync::Mutex<Vec<Duration>>,
    }

    impl RecordingClock {
        fn new() -> Self {
            RecordingClock {
                sim: mocket_sim::SimClock::new(),
                sleeps: std::sync::Mutex::new(Vec::new()),
            }
        }

        fn recorded(&self) -> Vec<Duration> {
            self.sleeps.lock().unwrap().clone()
        }
    }

    impl Clock for RecordingClock {
        fn now(&self) -> Duration {
            self.sim.now()
        }
        fn sleep(&self, d: Duration) {
            self.sleeps.lock().unwrap().push(d);
            self.sim.sleep(d);
        }
        fn is_virtual(&self) -> bool {
            true
        }
    }

    #[test]
    fn backoff_schedule_is_capped_doubling() {
        let cfg = RunConfig::fast();
        let seq: Vec<Duration> = backoff_schedule(&cfg).take(7).collect();
        assert_eq!(
            seq,
            [1, 2, 4, 8, 10, 10, 10]
                .map(Duration::from_millis)
                .to_vec()
        );
    }

    #[test]
    fn missing_action_retry_sequence_is_identical_across_runs() {
        // Satellite check: a mute SUT forces the runner through its
        // whole poll-backoff loop; on a virtual clock the sleep
        // sequence must be the exact capped-doubling schedule, byte
        // for byte the same on every run.
        let run_once = || {
            let mut sut = FakeSut::new(10);
            sut.mute = true;
            let clock = RecordingClock::new();
            let (outcome, _) = run_test_case_clocked(
                &mut sut,
                &inc_case(1),
                &registry(),
                &[],
                &RunConfig::fast(),
                &Obs::disabled(),
                &clock,
            )
            .unwrap();
            assert!(matches!(
                outcome,
                TestOutcome::Failed(Inconsistency::MissingAction { .. })
            ));
            clock.recorded()
        };
        let first = run_once();
        let second = run_once();
        assert_eq!(first, second, "retry sequence must be deterministic");
        // 50ms deadline over the 1,2,4,8,10,… schedule: cumulative
        // waits hit 1,3,7,15,25,35,45,55ms, so the elapsed virtual
        // time crosses the deadline after the eighth sleep.
        assert_eq!(
            first,
            [1, 2, 4, 8, 10, 10, 10, 10]
                .map(Duration::from_millis)
                .to_vec()
        );
    }

    #[test]
    fn virtual_clock_runs_report_virtual_seconds() {
        let mut sut = FakeSut::new(10);
        sut.mute = true;
        let clock = mocket_sim::SimClock::new();
        let wall = std::time::Instant::now();
        let (_, stats) = run_test_case_clocked(
            &mut sut,
            &inc_case(1),
            &registry(),
            &[],
            &RunConfig::default(), // 2s offer deadline — instant virtually
            &Obs::disabled(),
            &clock,
        )
        .unwrap();
        assert!(
            stats.seconds >= 2.0,
            "virtual deadline must be fully counted, got {}",
            stats.seconds
        );
        assert!(
            wall.elapsed() < Duration::from_secs(2),
            "a 2s virtual deadline must not cost 2s of wall time"
        );
    }
}
