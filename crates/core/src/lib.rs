//! Mocket: model-checking-guided testing for distributed systems.
//!
//! This crate is the paper's primary contribution. Given a
//! specification (from `mocket-tla`), its state-space graph (from
//! `mocket-checker`) and a mapping onto a target implementation, it:
//!
//! 1. generates test cases — verified paths through the graph —
//!    using edge-coverage-guided traversal ([`traversal`], Algorithm
//!    1) and partial-order reduction ([`por`], §4.2.2);
//! 2. runs controlled testing ([`runner`], §4.3): the action
//!    scheduler ([`scheduler`]) releases blocked actions in test-case
//!    order, message pools ([`msgpool`]) track message-related
//!    variables, and the state checker ([`statecheck`]) compares every
//!    runtime state with its verified counterpart;
//! 3. reports inconsistencies ([`report`]): inconsistent states,
//!    missing actions and unexpected actions.
//!
//! The [`pipeline`] module wires all stages together (Figure 3).

pub mod artifact;
pub mod explain;
pub mod fsio;
pub mod mapping;
pub mod minimize;
pub mod msgpool;
pub mod orchestrator;
pub mod pipeline;
pub mod por;
pub mod report;
pub mod runner;
pub mod scheduler;
pub mod statecheck;
pub mod sut;
pub mod testcase;
pub mod traversal;

pub use artifact::{
    replay, ArtifactError, CampaignJournal, CaseOutcome, JournalEntry, JournalIssue,
    JournalOpenError, ReplayArtifact, ReplayVerdict,
};
pub use explain::{explain_failure, ExplainConfig};
pub use mapping::{
    ActionBinding, ActionMapping, CompareMode, ConstMap, MappingIssue, MappingRegistry, VarTarget,
    VariableMapping,
};
pub use minimize::{minimize_case, weaken, MinimizeConfig, Minimized};
pub use msgpool::{MessagePools, PoolError};
pub use pipeline::{
    AttemptRecord, CaseGate, Pipeline, PipelineConfig, PipelineResult, QuarantinedCase,
    RetryPolicy, TestingEffort, TriageConfig,
};
pub use por::{partial_order_reduction, Diamond, PorResult};
pub use report::{BugClass, BugReport, Determinism, Inconsistency, VariableDivergence};
pub use runner::{
    pools_from_registry, run_test_case, run_test_case_clocked, run_test_case_observed, RunConfig,
    RunStats, TestOutcome,
};
pub use scheduler::{find_match, translate_offers, unexpected_offers, SpecOffer};
pub use statecheck::{check_state, state_matches, value_diff, values_match};
pub use sut::{
    int_param, record_int_field, ExecReport, MsgEvent, Offer, Snapshot, SutError, SystemUnderTest,
};
pub use testcase::{Step, TestCase};
pub use traversal::{
    edge_coverage_paths, node_coverage_paths, random_walk_paths, TraversalConfig, TraversalResult,
};
