//! Mapping a specification to its implementation (§4.1).
//!
//! The registry records, per specification element, where it lives in
//! the implementation: variables map to class fields or method
//! variables (§4.1.1), actions map to methods or code snippets
//! (§4.1.2), and constants map value-to-value (§4.1.3). Action
//! counters and auxiliary variables deliberately have no mapping.
//!
//! [`MappingRegistry::validate`] detects the developer-introduced
//! mapping errors §5.4 describes (e.g. a miswritten action name),
//! before any testing time is spent.

use std::collections::BTreeMap;

use mocket_tla::{ActionClass, ActionInstance, Spec, Value, VarClass};

/// How a collected value is compared against the spec value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompareMode {
    /// Structural equality after constant translation.
    #[default]
    Exact,
    /// The implementation keeps only a count where the specification
    /// keeps a collection: an `Int(k)` matches a spec collection of
    /// cardinality `k` (how Xraft's integer `votesGranted` is mapped
    /// onto the spec's voter set). Applied pointwise through
    /// node-indexed functions.
    Cardinality,
}

/// Where a state-related variable lives in the implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarTarget {
    /// A class field annotated with `@Variable` (Figure 4b).
    ClassField {
        /// The field's name in the implementation.
        impl_name: String,
    },
    /// A method-local variable recorded as a
    /// `<SpecName, ImplName, Location>` configuration tuple.
    MethodVariable {
        /// The local variable's name.
        impl_name: String,
        /// `file:line` of its declaration.
        location: String,
    },
    /// A message-related variable: lives in the testbed's message
    /// pool of the given name, not in the implementation.
    MessagePool {
        /// The pool name (equals the spec variable name by default).
        pool: String,
        /// Whether the pool is a bag (multiset) or plain set.
        bag: bool,
    },
}

/// One variable mapping entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariableMapping {
    /// The TLA+ variable name.
    pub spec_name: String,
    /// Its class (must agree with the specification's declaration).
    pub class: VarClass,
    /// Where it lives, for mapped classes.
    pub target: Option<VarTarget>,
    /// How values are compared.
    pub compare: CompareMode,
}

/// How an action was mapped (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionBinding {
    /// `@Action` annotation on a whole method.
    Method,
    /// `Action.begin`/`Action.end` around a code snippet.
    Snippet,
    /// External script invocation (faults and user requests).
    Script,
}

/// One action mapping entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionMapping {
    /// The TLA+ action name.
    pub spec_name: String,
    /// The implementation-side name the hook reports.
    pub impl_name: String,
    /// The action's class.
    pub class: ActionClass,
    /// How it is bound.
    pub binding: ActionBinding,
}

/// Bidirectional constant translation (§4.1.3): e.g. spec `"Follower"`
/// ↔ impl `"STATE_FOLLOWER"`.
#[derive(Debug, Clone, Default)]
pub struct ConstMap {
    impl_to_spec: BTreeMap<Value, Value>,
    spec_to_impl: BTreeMap<Value, Value>,
}

impl ConstMap {
    /// Creates an empty map (identity translation).
    pub fn new() -> Self {
        ConstMap::default()
    }

    /// Registers `spec ↔ impl`.
    pub fn bind(&mut self, spec: Value, impl_v: Value) {
        self.impl_to_spec.insert(impl_v.clone(), spec.clone());
        self.spec_to_impl.insert(spec, impl_v);
    }

    /// Translates a single implementation value into the spec domain,
    /// recursing through collections.
    pub fn to_spec(&self, v: &Value) -> Value {
        if let Some(s) = self.impl_to_spec.get(v) {
            return s.clone();
        }
        self.map_children(v, &|x| self.to_spec(x))
    }

    /// Translates a spec value into the implementation domain.
    pub fn to_impl(&self, v: &Value) -> Value {
        if let Some(s) = self.spec_to_impl.get(v) {
            return s.clone();
        }
        self.map_children(v, &|x| self.to_impl(x))
    }

    fn map_children(&self, v: &Value, f: &dyn Fn(&Value) -> Value) -> Value {
        match v {
            Value::Set(s) => Value::Set(s.iter().map(f).collect()),
            Value::Seq(s) => Value::Seq(s.iter().map(f).collect()),
            Value::Record(r) => Value::Record(r.iter().map(|(k, x)| (k.clone(), f(x))).collect()),
            Value::Fun(m) => Value::Fun(m.iter().map(|(k, x)| (f(k), f(x))).collect()),
            other => other.clone(),
        }
    }
}

/// The complete spec↔implementation mapping for one target system.
#[derive(Debug, Clone, Default)]
pub struct MappingRegistry {
    variables: Vec<VariableMapping>,
    actions: Vec<ActionMapping>,
    consts: ConstMap,
}

/// A problem found by [`MappingRegistry::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingIssue {
    /// A state- or message-related spec variable has no mapping.
    UnmappedVariable(String),
    /// A counter/auxiliary variable was mapped (it must not be).
    OvermappedVariable(String),
    /// A spec action has no mapping.
    UnmappedAction(String),
    /// A mapping references a name absent from the specification —
    /// the miswritten-annotation error of §5.4.
    UnknownSpecName(String),
    /// Two mappings claim the same spec name.
    DuplicateMapping(String),
}

impl std::fmt::Display for MappingIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingIssue::UnmappedVariable(n) => write!(f, "variable {n:?} is not mapped"),
            MappingIssue::OvermappedVariable(n) => {
                write!(
                    f,
                    "variable {n:?} is a counter/auxiliary and must not be mapped"
                )
            }
            MappingIssue::UnmappedAction(n) => write!(f, "action {n:?} is not mapped"),
            MappingIssue::UnknownSpecName(n) => {
                write!(f, "mapping references unknown spec element {n:?}")
            }
            MappingIssue::DuplicateMapping(n) => {
                write!(f, "spec element {n:?} is mapped more than once")
            }
        }
    }
}

impl MappingRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MappingRegistry::default()
    }

    /// Maps a state-related variable to an annotated class field.
    pub fn map_class_field(
        &mut self,
        spec_name: impl Into<String>,
        impl_name: impl Into<String>,
    ) -> &mut Self {
        self.variables.push(VariableMapping {
            spec_name: spec_name.into(),
            class: VarClass::StateRelated,
            target: Some(VarTarget::ClassField {
                impl_name: impl_name.into(),
            }),
            compare: CompareMode::Exact,
        });
        self
    }

    /// Like [`map_class_field`](Self::map_class_field) but compared by
    /// cardinality (implementation keeps a count of a spec
    /// collection).
    pub fn map_class_field_cardinality(
        &mut self,
        spec_name: impl Into<String>,
        impl_name: impl Into<String>,
    ) -> &mut Self {
        self.variables.push(VariableMapping {
            spec_name: spec_name.into(),
            class: VarClass::StateRelated,
            target: Some(VarTarget::ClassField {
                impl_name: impl_name.into(),
            }),
            compare: CompareMode::Cardinality,
        });
        self
    }

    /// Maps a state-related variable to a method variable via the
    /// `<SpecName, ImplName, Location>` configuration tuple.
    pub fn map_method_variable(
        &mut self,
        spec_name: impl Into<String>,
        impl_name: impl Into<String>,
        location: impl Into<String>,
    ) -> &mut Self {
        self.variables.push(VariableMapping {
            spec_name: spec_name.into(),
            class: VarClass::StateRelated,
            target: Some(VarTarget::MethodVariable {
                impl_name: impl_name.into(),
                location: location.into(),
            }),
            compare: CompareMode::Exact,
        });
        self
    }

    /// Declares a message pool for a message-related variable.
    pub fn map_message_pool(&mut self, spec_name: impl Into<String>, bag: bool) -> &mut Self {
        let spec_name = spec_name.into();
        self.variables.push(VariableMapping {
            spec_name: spec_name.clone(),
            class: VarClass::MessageRelated,
            target: Some(VarTarget::MessagePool {
                pool: spec_name,
                bag,
            }),
            compare: CompareMode::Exact,
        });
        self
    }

    /// Maps an action.
    pub fn map_action(
        &mut self,
        spec_name: impl Into<String>,
        impl_name: impl Into<String>,
        class: ActionClass,
        binding: ActionBinding,
    ) -> &mut Self {
        self.actions.push(ActionMapping {
            spec_name: spec_name.into(),
            impl_name: impl_name.into(),
            class,
            binding,
        });
        self
    }

    /// Registers a constant translation.
    pub fn bind_const(&mut self, spec: Value, impl_v: Value) -> &mut Self {
        self.consts.bind(spec, impl_v);
        self
    }

    /// The constant map.
    pub fn consts(&self) -> &ConstMap {
        &self.consts
    }

    /// All variable mappings.
    pub fn variables(&self) -> &[VariableMapping] {
        &self.variables
    }

    /// All action mappings.
    pub fn actions(&self) -> &[ActionMapping] {
        &self.actions
    }

    /// Looks up the variable mapping whose implementation name is
    /// `impl_name` (snapshot translation).
    pub fn variable_by_impl_name(&self, impl_name: &str) -> Option<&VariableMapping> {
        self.variables.iter().find(|v| match &v.target {
            Some(VarTarget::ClassField { impl_name: n })
            | Some(VarTarget::MethodVariable { impl_name: n, .. }) => n == impl_name,
            _ => false,
        })
    }

    /// Looks up a variable mapping by spec name.
    pub fn variable_by_spec_name(&self, spec_name: &str) -> Option<&VariableMapping> {
        self.variables.iter().find(|v| v.spec_name == spec_name)
    }

    /// Looks up an action mapping by implementation name.
    pub fn action_by_impl_name(&self, impl_name: &str) -> Option<&ActionMapping> {
        self.actions.iter().find(|a| a.impl_name == impl_name)
    }

    /// Looks up an action mapping by spec name.
    pub fn action_by_spec_name(&self, spec_name: &str) -> Option<&ActionMapping> {
        self.actions.iter().find(|a| a.spec_name == spec_name)
    }

    /// Translates an implementation-side action notification into the
    /// spec domain: maps the name and translates every parameter
    /// through the constant map. Returns `None` for unmapped names.
    pub fn offer_to_spec(&self, impl_action: &ActionInstance) -> Option<ActionInstance> {
        let mapping = self.action_by_impl_name(&impl_action.name)?;
        Some(ActionInstance::new(
            mapping.spec_name.clone(),
            impl_action
                .params
                .iter()
                .map(|p| self.consts.to_spec(p))
                .collect(),
        ))
    }

    /// Lines-of-code analog for Table 1: one entry per mapping plus
    /// one extra per message-related action for `Action.getMsg`
    /// (mapping message-related actions "requires more effort", §5.2).
    pub fn mapping_loc(&self) -> usize {
        let var_loc = self.variables.len();
        let action_loc: usize = self
            .actions
            .iter()
            .map(|a| match a.class {
                ActionClass::MessageSend | ActionClass::MessageReceive => 10,
                _ => 5,
            })
            .sum();
        var_loc + action_loc
    }

    /// Validates the registry against a specification, returning every
    /// issue found.
    pub fn validate(&self, spec: &dyn Spec) -> Vec<MappingIssue> {
        let mut issues = Vec::new();
        let spec_vars = spec.variables();
        let spec_actions = spec.actions();

        for v in &spec_vars {
            let mapped = self.variable_by_spec_name(&v.name).is_some();
            match v.class {
                VarClass::StateRelated | VarClass::MessageRelated => {
                    if !mapped {
                        issues.push(MappingIssue::UnmappedVariable(v.name.clone()));
                    }
                }
                VarClass::ActionCounter | VarClass::Auxiliary => {
                    if mapped {
                        issues.push(MappingIssue::OvermappedVariable(v.name.clone()));
                    }
                }
            }
        }
        for a in &spec_actions {
            if self.action_by_spec_name(&a.name).is_none() {
                issues.push(MappingIssue::UnmappedAction(a.name.clone()));
            }
        }
        for vm in &self.variables {
            if !spec_vars.iter().any(|v| v.name == vm.spec_name) {
                issues.push(MappingIssue::UnknownSpecName(vm.spec_name.clone()));
            }
        }
        for am in &self.actions {
            if !spec_actions.iter().any(|a| a.name == am.spec_name) {
                issues.push(MappingIssue::UnknownSpecName(am.spec_name.clone()));
            }
        }
        let mut names: Vec<&str> = self
            .variables
            .iter()
            .map(|v| v.spec_name.as_str())
            .chain(self.actions.iter().map(|a| a.spec_name.as_str()))
            .collect();
        names.sort_unstable();
        for w in names.windows(2) {
            if w[0] == w[1] {
                issues.push(MappingIssue::DuplicateMapping(w[0].to_string()));
            }
        }
        issues.dedup();
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::{ActionDef, State, VarDef};

    struct TinySpec;

    impl Spec for TinySpec {
        fn name(&self) -> &str {
            "Tiny"
        }

        fn variables(&self) -> Vec<VarDef> {
            vec![
                VarDef::new("nodeState", VarClass::StateRelated),
                VarDef::new("messages", VarClass::MessageRelated),
                VarDef::new("clientRequests", VarClass::ActionCounter),
                VarDef::new("stage", VarClass::Auxiliary),
            ]
        }

        fn init_states(&self) -> Vec<State> {
            vec![State::new()]
        }

        fn actions(&self) -> Vec<ActionDef> {
            vec![
                ActionDef::nullary("BecomeLeader", ActionClass::SingleNode, |s| Some(s.clone())),
                ActionDef::nullary("Crash", ActionClass::ExternalFault, |s| Some(s.clone())),
            ]
        }
    }

    fn good_registry() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.map_class_field("nodeState", "state")
            .map_message_pool("messages", true)
            .map_action(
                "BecomeLeader",
                "becomeLeader",
                ActionClass::SingleNode,
                ActionBinding::Method,
            )
            .map_action(
                "Crash",
                "crash.sh",
                ActionClass::ExternalFault,
                ActionBinding::Script,
            );
        r.bind_const(Value::str("Follower"), Value::str("STATE_FOLLOWER"));
        r.bind_const(Value::str("Leader"), Value::str("STATE_LEADER"));
        r
    }

    #[test]
    fn valid_registry_has_no_issues() {
        assert!(good_registry().validate(&TinySpec).is_empty());
    }

    #[test]
    fn unmapped_variable_and_action_detected() {
        let r = MappingRegistry::new();
        let issues = r.validate(&TinySpec);
        assert!(issues.contains(&MappingIssue::UnmappedVariable("nodeState".into())));
        assert!(issues.contains(&MappingIssue::UnmappedVariable("messages".into())));
        assert!(issues.contains(&MappingIssue::UnmappedAction("BecomeLeader".into())));
    }

    #[test]
    fn overmapped_counter_detected() {
        let mut r = good_registry();
        r.map_class_field("clientRequests", "requestCount");
        assert!(r
            .validate(&TinySpec)
            .contains(&MappingIssue::OvermappedVariable("clientRequests".into())));
    }

    #[test]
    fn miswritten_action_name_detected() {
        // The §5.4 developer error: annotating with a wrong name.
        let mut r = good_registry();
        r.map_action(
            "BecomeLeadr",
            "becomeLeader2",
            ActionClass::SingleNode,
            ActionBinding::Method,
        );
        assert!(r
            .validate(&TinySpec)
            .contains(&MappingIssue::UnknownSpecName("BecomeLeadr".into())));
    }

    #[test]
    fn duplicate_mapping_detected() {
        let mut r = good_registry();
        r.map_class_field("nodeState", "otherField");
        assert!(r
            .validate(&TinySpec)
            .contains(&MappingIssue::DuplicateMapping("nodeState".into())));
    }

    #[test]
    fn const_map_translates_deeply() {
        let r = good_registry();
        let impl_v = Value::fun([
            (Value::Int(1), Value::str("STATE_LEADER")),
            (Value::Int(2), Value::str("STATE_FOLLOWER")),
        ]);
        let spec_v = r.consts().to_spec(&impl_v);
        assert_eq!(
            spec_v,
            Value::fun([
                (Value::Int(1), Value::str("Leader")),
                (Value::Int(2), Value::str("Follower")),
            ])
        );
        assert_eq!(r.consts().to_impl(&spec_v), impl_v);
    }

    #[test]
    fn offer_translation_maps_name_and_params() {
        let r = good_registry();
        let offer = ActionInstance::new("becomeLeader", vec![Value::str("STATE_LEADER")]);
        let spec = r.offer_to_spec(&offer).unwrap();
        assert_eq!(spec.name, "BecomeLeader");
        assert_eq!(spec.params, vec![Value::str("Leader")]);
        assert!(r.offer_to_spec(&ActionInstance::nullary("nope")).is_none());
    }

    #[test]
    fn mapping_loc_weights_message_actions() {
        let mut r = MappingRegistry::new();
        r.map_action("A", "a", ActionClass::SingleNode, ActionBinding::Method);
        r.map_action("B", "b", ActionClass::MessageSend, ActionBinding::Method);
        assert_eq!(r.mapping_loc(), 15);
    }
}
