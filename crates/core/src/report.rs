//! Inconsistency and bug reports (§4.3.3).
//!
//! Mocket reports an inconsistency between specification and
//! implementation in three situations: an *inconsistent state*, a
//! *missing action*, or an *unexpected action*. Each report carries
//! the revealing test case; whether it is an implementation bug or a
//! specification bug is a later, human classification.

use std::fmt;
use std::time::Duration;

use mocket_obs::DivergenceExplanation;
use mocket_tla::{ActionInstance, Value};

use crate::testcase::TestCase;

/// One divergence between a runtime state and the expected spec state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariableDivergence {
    /// The specification variable that diverged.
    pub variable: String,
    /// The value the specification expects (spec domain).
    pub expected: Value,
    /// The value collected from the implementation, translated into
    /// the spec domain through the constant map (if translatable).
    pub actual: Option<Value>,
}

impl fmt::Display for VariableDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: expected {}, got {}",
            self.variable,
            self.expected,
            match &self.actual {
                Some(v) => v.to_string(),
                None => "<uncollected>".to_string(),
            }
        )
    }
}

/// The three inconsistency kinds of §4.3.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inconsistency {
    /// Collected runtime values differ from the expected state.
    InconsistentState {
        /// Index of the test-case step after which the check failed.
        step: usize,
        /// The action whose post-state diverged.
        action: ActionInstance,
        /// Every diverging variable.
        divergences: Vec<VariableDivergence>,
    },
    /// No notification matching the scheduled action arrived.
    MissingAction {
        /// Index of the unmatched step.
        step: usize,
        /// The scheduled action nobody offered.
        action: ActionInstance,
        /// What the nodes offered instead (for diagnosis).
        offered: Vec<ActionInstance>,
    },
    /// Leftover notifications at test end that the specification does
    /// not enable in the final state.
    UnexpectedAction {
        /// The offending notifications.
        actions: Vec<ActionInstance>,
    },
    /// A node's application code crashed (panicked) while the runner
    /// was driving the test case. The specification never models its
    /// nodes dying on their own, so an involuntary death is a
    /// divergence in its own right — reported instead of tearing the
    /// harness down.
    NodeDeath {
        /// Index of the step being driven when the node died.
        step: usize,
        /// The action being driven.
        action: ActionInstance,
        /// The node that died.
        node: u64,
        /// Panic message or death diagnosis.
        reason: String,
    },
    /// The runner's watchdog gave up on the system under test: a node
    /// stopped answering, or a step blew its wall-clock budget.
    WatchdogTimeout {
        /// Index of the step being driven.
        step: usize,
        /// The action being driven.
        action: ActionInstance,
        /// How long the runner waited.
        waited: Duration,
        /// What the watchdog observed.
        reason: String,
    },
}

impl Inconsistency {
    /// Short classification label, matching Table 2's wording.
    pub fn kind(&self) -> &'static str {
        match self {
            Inconsistency::InconsistentState { .. } => "Inconsistent state",
            Inconsistency::MissingAction { .. } => "Missing action",
            Inconsistency::UnexpectedAction { .. } => "Unexpected action",
            Inconsistency::NodeDeath { .. } => "Node crash",
            Inconsistency::WatchdogTimeout { .. } => "Watchdog timeout",
        }
    }

    /// Whether the inconsistency reflects the system under test
    /// crashing or stalling (rather than a state/action divergence).
    pub fn is_crash(&self) -> bool {
        matches!(
            self,
            Inconsistency::NodeDeath { .. } | Inconsistency::WatchdogTimeout { .. }
        )
    }

    /// The subject Table 2 prints: the diverging variable or the
    /// missing/unexpected action name.
    pub fn subject(&self) -> String {
        match self {
            Inconsistency::InconsistentState { divergences, .. } => divergences
                .first()
                .map(|d| d.variable.clone())
                .unwrap_or_default(),
            Inconsistency::MissingAction { action, .. } => action.name.clone(),
            Inconsistency::UnexpectedAction { actions } => {
                actions.first().map(|a| a.name.clone()).unwrap_or_default()
            }
            Inconsistency::NodeDeath { node, .. } => format!("node {node}"),
            Inconsistency::WatchdogTimeout { action, .. } => action.name.clone(),
        }
    }
}

impl fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inconsistency::InconsistentState {
                step,
                action,
                divergences,
            } => {
                writeln!(f, "Inconsistent state after step {step} ({action}):")?;
                for d in divergences {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
            Inconsistency::MissingAction {
                step,
                action,
                offered,
            } => {
                writeln!(
                    f,
                    "Missing action at step {step}: {action} was never offered."
                )?;
                if offered.is_empty() {
                    writeln!(f, "  (no actions were offered)")
                } else {
                    writeln!(
                        f,
                        "  offered instead: {}",
                        offered
                            .iter()
                            .map(|a| a.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            }
            Inconsistency::UnexpectedAction { actions } => {
                writeln!(
                    f,
                    "Unexpected action(s) at test end: {}",
                    actions
                        .iter()
                        .map(|a| a.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            Inconsistency::NodeDeath {
                step,
                action,
                node,
                reason,
            } => {
                writeln!(
                    f,
                    "Node {node} crashed at step {step} while driving {action}: {reason}"
                )
            }
            Inconsistency::WatchdogTimeout {
                step,
                action,
                waited,
                reason,
            } => {
                writeln!(
                    f,
                    "Watchdog timeout at step {step} ({action}) after {waited:.1?}: {reason}"
                )
            }
        }
    }
}

/// How reliably a failure reproduces when its case is re-run with the
/// identical seed and configuration (failure triage, confirm &
/// classify). A deterministic reproducer is the artifact that
/// matters; a flaky one is reported with its observed repro rate so a
/// human knows how many replay attempts to budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Never re-run (triage disabled, or `stop_at_first_bug` raced).
    Unconfirmed,
    /// Every confirmation re-run reproduced the same inconsistency
    /// kind.
    Deterministic {
        /// Number of confirming re-runs (>= 1).
        reruns: usize,
    },
    /// At least one re-run diverged; `reproduced` of `reruns` re-runs
    /// hit the same inconsistency kind again.
    Flaky {
        /// Re-runs that reproduced the inconsistency kind.
        reproduced: usize,
        /// Total re-runs performed.
        reruns: usize,
    },
}

impl Determinism {
    /// Whether the failure reproduced on every re-run.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Determinism::Deterministic { .. })
    }
}

impl fmt::Display for Determinism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Determinism::Unconfirmed => write!(f, "unconfirmed"),
            Determinism::Deterministic { reruns } => {
                write!(f, "deterministic ({reruns}/{reruns} re-runs)")
            }
            Determinism::Flaky { reproduced, reruns } => {
                write!(f, "flaky ({reproduced}/{reruns} re-runs)")
            }
        }
    }
}

/// Human classification of a confirmed inconsistency (§4.3.3): Mocket
/// itself cannot distinguish these; investigation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugClass {
    /// The implementation violates a correct specification.
    Implementation,
    /// The specification is wrong; the implementation is correct.
    Specification,
    /// Not yet classified.
    Unclassified,
}

/// A full bug report: the inconsistency plus its revealing test case.
#[derive(Debug, Clone)]
pub struct BugReport {
    /// The detected inconsistency.
    pub inconsistency: Inconsistency,
    /// The test case whose controlled execution revealed it.
    pub test_case: TestCase,
    /// Number of actions executed before the divergence (Table 2's
    /// `# Actions` column counts the whole revealing test case).
    pub actions_executed: usize,
    /// Wall-clock testing time elapsed when the report was produced.
    pub elapsed: Duration,
    /// 1-based attempt on which the revealing run happened (retried
    /// test cases can reveal a bug on a later attempt).
    pub attempt: usize,
    /// How reliably the failure reproduced on confirmation re-runs.
    pub determinism: Determinism,
    /// The delta-debugged reproducer, when triage minimized the
    /// revealing case (never longer than `test_case`).
    pub minimized: Option<TestCase>,
    /// Human classification.
    pub class: BugClass,
    /// The insight layer's divergence explanation: executed prefix,
    /// per-variable structured diff, and the nearest-verified-state
    /// verdict (see [`crate::explain`]). Present for inconsistent
    /// states and unexpected actions when the case validates against
    /// the graph.
    pub explanation: Option<DivergenceExplanation>,
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== Bug report ({}, {} actions, {:.1?}) ===",
            self.inconsistency.kind(),
            self.test_case.len(),
            self.elapsed
        )?;
        write!(f, "{}", self.inconsistency)?;
        if self.determinism != Determinism::Unconfirmed {
            writeln!(f, "Reproducibility: {}", self.determinism)?;
        }
        writeln!(f, "Revealing test case:")?;
        write!(f, "{}", self.test_case)?;
        if let Some(min) = &self.minimized {
            writeln!(
                f,
                "Minimized reproducer ({} of {} actions):",
                min.len(),
                self.test_case.len()
            )?;
            write!(f, "{min}")?;
        }
        if let Some(explanation) = &self.explanation {
            writeln!(f, "Explanation:")?;
            write!(f, "{explanation}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::State;

    #[test]
    fn kind_and_subject() {
        let inc = Inconsistency::InconsistentState {
            step: 3,
            action: ActionInstance::nullary("BecomeLeader"),
            divergences: vec![VariableDivergence {
                variable: "votesGranted".into(),
                expected: Value::set([Value::Int(1)]),
                actual: Some(Value::Int(3)),
            }],
        };
        assert_eq!(inc.kind(), "Inconsistent state");
        assert_eq!(inc.subject(), "votesGranted");

        let inc = Inconsistency::MissingAction {
            step: 0,
            action: ActionInstance::nullary("StartElection"),
            offered: vec![],
        };
        assert_eq!(inc.kind(), "Missing action");
        assert_eq!(inc.subject(), "StartElection");

        let inc = Inconsistency::UnexpectedAction {
            actions: vec![ActionInstance::nullary("HandleRequestVoteResponse")],
        };
        assert_eq!(inc.kind(), "Unexpected action");
        assert_eq!(inc.subject(), "HandleRequestVoteResponse");
    }

    #[test]
    fn display_mentions_divergence() {
        let inc = Inconsistency::InconsistentState {
            step: 1,
            action: ActionInstance::nullary("Restart"),
            divergences: vec![VariableDivergence {
                variable: "votedFor".into(),
                expected: Value::Int(1),
                actual: Some(Value::Nil),
            }],
        };
        let text = inc.to_string();
        assert!(text.contains("votedFor: expected 1, got Nil"));
    }

    #[test]
    fn report_display_includes_test_case() {
        let tc = TestCase::new(
            State::from_pairs([("n", Value::Int(0))]),
            vec![(
                ActionInstance::nullary("Inc"),
                State::from_pairs([("n", Value::Int(1))]),
            )],
        );
        let report = BugReport {
            inconsistency: Inconsistency::UnexpectedAction {
                actions: vec![ActionInstance::nullary("Inc")],
            },
            test_case: tc,
            actions_executed: 1,
            elapsed: Duration::from_millis(5),
            attempt: 1,
            determinism: Determinism::Deterministic { reruns: 2 },
            minimized: None,
            class: BugClass::Unclassified,
            explanation: Some(DivergenceExplanation {
                step: 1,
                action: "unexpected Inc".into(),
                prefix: vec!["Inc".into()],
                diffs: vec![],
                verdict: mocket_obs::NearestVerdict::NoneWithin {
                    radius: 3,
                    searched: 2,
                },
            }),
        };
        let text = report.to_string();
        assert!(text.contains("Unexpected action"));
        assert!(text.contains("Inc"));
        assert!(text.contains("deterministic (2/2 re-runs)"));
        assert!(text.contains("Explanation:"));
        assert!(text.contains("no verified state within distance 3"));
    }

    #[test]
    fn determinism_labels() {
        assert_eq!(Determinism::Unconfirmed.to_string(), "unconfirmed");
        assert!(Determinism::Deterministic { reruns: 1 }.is_deterministic());
        let flaky = Determinism::Flaky {
            reproduced: 1,
            reruns: 4,
        };
        assert!(!flaky.is_deterministic());
        assert_eq!(flaky.to_string(), "flaky (1/4 re-runs)");
    }
}
