//! The action scheduler (§4.3.2).
//!
//! The scheduler holds the set of blocked action notifications, picks
//! the one matching the scheduled step of the current test case, and
//! classifies leftovers at test end. Matching is exact on the spec
//! action instance (name plus translated parameter values).

use mocket_obs::Obs;
use mocket_tla::{ActionClass, ActionInstance};

use crate::mapping::MappingRegistry;
use crate::sut::Offer;

/// An offer translated into the spec domain (when its name is
/// mapped), paired with the original.
#[derive(Debug, Clone)]
pub struct SpecOffer {
    /// The raw implementation-side notification.
    pub raw: Offer,
    /// The spec-domain translation; `None` when the implementation
    /// notified an action name the mapping does not know.
    pub spec: Option<ActionInstance>,
}

/// Translates a batch of offers through the registry.
pub fn translate_offers(registry: &MappingRegistry, offers: Vec<Offer>) -> Vec<SpecOffer> {
    offers
        .into_iter()
        .map(|raw| {
            let spec = registry.offer_to_spec(&raw.action);
            SpecOffer { raw, spec }
        })
        .collect()
}

/// [`translate_offers`] with scheduler metrics: counts every
/// translated offer (`timing.scheduler.offers_translated`) and every
/// offer the mapping cannot name (`timing.scheduler.unmapped_offers`).
/// These accumulate once per poll round, and the number of poll rounds
/// depends on the run's clock — so both live under the `timing.`
/// quarantine and never appear in the deterministic summary section.
pub fn translate_offers_observed(
    registry: &MappingRegistry,
    offers: Vec<Offer>,
    obs: &Obs,
) -> Vec<SpecOffer> {
    let out = translate_offers(registry, offers);
    let m = obs.metrics();
    m.add("timing.scheduler.offers_translated", out.len() as u64);
    let unmapped = out.iter().filter(|o| o.spec.is_none()).count() as u64;
    if unmapped > 0 {
        m.add("timing.scheduler.unmapped_offers", unmapped);
    }
    out
}

/// Finds the offer matching the scheduled action exactly.
pub fn find_match<'a>(
    scheduled: &ActionInstance,
    offers: &'a [SpecOffer],
) -> Option<&'a SpecOffer> {
    offers.iter().find(|o| o.spec.as_ref() == Some(scheduled))
}

/// The spec-domain views of a batch of offers, for diagnostics;
/// untranslatable offers are rendered under their raw name.
pub fn offered_actions(offers: &[SpecOffer]) -> Vec<ActionInstance> {
    offers
        .iter()
        .map(|o| o.spec.clone().unwrap_or_else(|| o.raw.action.clone()))
        .collect()
}

/// Classifies leftover offers at test end (§4.3.3's *unexpected
/// action*).
///
/// An offer is unexpected when it cannot be translated at all, or when
/// it is a *message-receiving* action whose spec instance is not
/// enabled in the final verified state. Message receives are grounded
/// in an actual in-flight message, so an unenabled one means the
/// implementation produced a message the specification never sent —
/// both unexpected-action bugs in the paper's Table 2
/// (`HandleRequestVoteResponse` in Xraft, `ReceiveMessage` in
/// ZooKeeper) are of this kind. Timer-driven offers (a node always
/// willing to time out) are benign leftovers.
pub fn unexpected_offers(
    registry: &MappingRegistry,
    offers: &[SpecOffer],
    enabled_at_final: &[ActionInstance],
) -> Vec<ActionInstance> {
    offers
        .iter()
        .filter_map(|o| match &o.spec {
            Some(spec) => {
                let class = registry
                    .action_by_spec_name(&spec.name)
                    .map(|m| m.class)
                    .unwrap_or(ActionClass::SingleNode);
                if class == ActionClass::MessageReceive && !enabled_at_final.contains(spec) {
                    Some(spec.clone())
                } else {
                    None
                }
            }
            None => Some(o.raw.action.clone()),
        })
        .collect()
}

/// [`unexpected_offers`] with a `scheduler.unexpected_offers` count.
pub fn unexpected_offers_observed(
    registry: &MappingRegistry,
    offers: &[SpecOffer],
    enabled_at_final: &[ActionInstance],
    obs: &Obs,
) -> Vec<ActionInstance> {
    let out = unexpected_offers(registry, offers, enabled_at_final);
    if !out.is_empty() {
        obs.metrics()
            .add("scheduler.unexpected_offers", out.len() as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ActionBinding;
    use mocket_tla::{ActionClass, Value};

    fn registry() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.map_action(
            "BecomeLeader",
            "becomeLeader",
            ActionClass::SingleNode,
            ActionBinding::Method,
        );
        r.map_action(
            "HandleVote",
            "handleVote",
            ActionClass::MessageReceive,
            ActionBinding::Snippet,
        );
        r.bind_const(Value::str("N1"), Value::Int(1));
        r
    }

    fn offer(node: u64, name: &str, params: Vec<Value>) -> Offer {
        Offer {
            node,
            action: ActionInstance::new(name, params),
        }
    }

    #[test]
    fn translation_maps_names_and_params() {
        let r = registry();
        let offers = translate_offers(
            &r,
            vec![
                offer(1, "becomeLeader", vec![Value::Int(1)]),
                offer(2, "unknownHook", vec![]),
            ],
        );
        assert_eq!(
            offers[0].spec,
            Some(ActionInstance::new("BecomeLeader", vec![Value::str("N1")]))
        );
        assert_eq!(offers[1].spec, None);
    }

    #[test]
    fn matching_is_exact_on_instance() {
        let r = registry();
        let offers = translate_offers(
            &r,
            vec![
                offer(1, "becomeLeader", vec![Value::Int(1)]),
                offer(2, "handleVote", vec![]),
            ],
        );
        let hit = find_match(
            &ActionInstance::new("BecomeLeader", vec![Value::str("N1")]),
            &offers,
        );
        assert_eq!(hit.unwrap().raw.node, 1);
        // Wrong parameters: no match.
        assert!(find_match(
            &ActionInstance::new("BecomeLeader", vec![Value::str("N2")]),
            &offers
        )
        .is_none());
        // Unscheduled action name: no match.
        assert!(find_match(&ActionInstance::nullary("Crash"), &offers).is_none());
    }

    #[test]
    fn unexpected_filters_by_final_enabled_set() {
        let r = registry();
        let offers = translate_offers(
            &r,
            vec![
                offer(1, "becomeLeader", vec![]),
                offer(2, "handleVote", vec![]),
                offer(3, "unknownHook", vec![]),
            ],
        );
        let enabled = vec![ActionInstance::nullary("BecomeLeader")];
        let unexpected = unexpected_offers(&r, &offers, &enabled);
        // becomeLeader is a single-node action (benign even if it
        // were unenabled); handleVote is a message receive that the
        // spec does not enable (unexpected); unknownHook is unmapped
        // (unexpected).
        assert_eq!(unexpected.len(), 2);
        assert_eq!(unexpected[0], ActionInstance::nullary("HandleVote"));
        assert_eq!(unexpected[1], ActionInstance::nullary("unknownHook"));
    }

    #[test]
    fn enabled_message_receives_are_benign() {
        let r = registry();
        let offers = translate_offers(&r, vec![offer(2, "handleVote", vec![])]);
        let enabled = vec![ActionInstance::nullary("HandleVote")];
        assert!(unexpected_offers(&r, &offers, &enabled).is_empty());
    }

    #[test]
    fn observed_wrappers_count_offers() {
        let r = registry();
        let obs = Obs::disabled();
        let offers = translate_offers_observed(
            &r,
            vec![
                offer(1, "becomeLeader", vec![]),
                offer(2, "handleVote", vec![]),
                offer(3, "unknownHook", vec![]),
            ],
            &obs,
        );
        let unexpected = unexpected_offers_observed(&r, &offers, &[], &obs);
        assert_eq!(unexpected.len(), 2);
        let m = obs.metrics();
        assert_eq!(m.counter("timing.scheduler.offers_translated"), 3);
        assert_eq!(m.counter("timing.scheduler.unmapped_offers"), 1);
        assert_eq!(m.counter("scheduler.unexpected_offers"), 2);
    }

    #[test]
    fn offered_actions_render_raw_when_unmapped() {
        let r = registry();
        let offers = translate_offers(&r, vec![offer(1, "mystery", vec![])]);
        assert_eq!(
            offered_actions(&offers),
            vec![ActionInstance::nullary("mystery")]
        );
    }
}
