//! Partial-order reduction (§4.2.2).
//!
//! Two actions `a1`, `a2` enabled in the same state `s0` are
//! *commutative* when both schedule orders reach the same state:
//! `s0 -a1-> s1 -a2-> s3` and `s0 -a2-> s2 -a1-> s3`. Testing both
//! orders is redundant, so one order is chosen and the other's edges
//! are removed from the traversal's coverage targets. Excluded edges
//! stay in the graph — only their status as coverage targets changes,
//! exactly as the paper describes.

use std::collections::HashSet;

use mocket_checker::{EdgeId, NodeId, StateGraph};

/// A detected commutative diamond.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diamond {
    /// The shared source state.
    pub source: NodeId,
    /// The shared target state.
    pub target: NodeId,
    /// The kept order: `first_kept` then its continuation.
    pub kept: (EdgeId, EdgeId),
    /// The dropped order (its edges leave the coverage target set).
    pub dropped: (EdgeId, EdgeId),
}

/// Result of the reduction analysis.
#[derive(Debug, Clone, Default)]
pub struct PorResult {
    /// All diamonds found.
    pub diamonds: Vec<Diamond>,
    /// Edges excluded from coverage. An edge is only excluded when
    /// *every* diamond it participates in drops it, and never when a
    /// kept order needs it.
    pub excluded_edges: HashSet<EdgeId>,
}

impl PorResult {
    /// Number of excluded edges.
    pub fn excluded_count(&self) -> usize {
        self.excluded_edges.len()
    }
}

/// Analyzes the graph for commutative diamonds and chooses one order
/// per diamond.
///
/// The choice is deterministic: the order whose first action instance
/// is smaller (by the total order on [`mocket_tla::ActionInstance`])
/// is kept. The paper chooses randomly; determinism makes runs
/// reproducible without changing which schedules are considered
/// redundant.
pub fn partial_order_reduction(graph: &StateGraph) -> PorResult {
    let mut diamonds = Vec::new();
    let mut dropped: HashSet<EdgeId> = HashSet::new();
    let mut kept: HashSet<EdgeId> = HashSet::new();

    for (node, _) in graph.states() {
        let out = graph.out_edges(node);
        for (i, &e1) in out.iter().enumerate() {
            for &e2 in &out[i + 1..] {
                let edge1 = graph.edge(e1);
                let edge2 = graph.edge(e2);
                if edge1.action == edge2.action {
                    continue;
                }
                // Find continuation edges closing the diamond:
                // e1.to -edge2.action-> t and e2.to -edge1.action-> t.
                let cont1 = graph
                    .out_edges(edge1.to)
                    .iter()
                    .copied()
                    .find(|&c| graph.edge(c).action == edge2.action);
                let cont2 = graph
                    .out_edges(edge2.to)
                    .iter()
                    .copied()
                    .find(|&c| graph.edge(c).action == edge1.action);
                if let (Some(c1), Some(c2)) = (cont1, cont2) {
                    if graph.edge(c1).to == graph.edge(c2).to
                        && is_genuine_diamond(node, edge1.to, edge2.to, graph.edge(c1).to)
                    {
                        // Commutative: keep the order starting with
                        // the smaller action instance.
                        let (keep_first, keep_cont, drop_first, drop_cont) =
                            if edge1.action <= edge2.action {
                                (e1, c1, e2, c2)
                            } else {
                                (e2, c2, e1, c1)
                            };
                        diamonds.push(Diamond {
                            source: node,
                            target: graph.edge(c1).to,
                            kept: (keep_first, keep_cont),
                            dropped: (drop_first, drop_cont),
                        });
                        kept.insert(keep_first);
                        kept.insert(keep_cont);
                        dropped.insert(drop_first);
                        dropped.insert(drop_cont);
                    }
                }
            }
        }
    }

    // Never exclude an edge some kept order needs.
    let excluded_edges: HashSet<EdgeId> = dropped.difference(&kept).copied().collect();
    PorResult {
        diamonds,
        excluded_edges,
    }
}

/// A genuine commutative diamond reorders the *same two events*: the
/// source and the two intermediates are distinct, and neither closing
/// edge is a self-loop.
///
/// Self-loops fake the closing condition: with `s1 -b-> s1`, the pair
/// `s0 -a-> s1` / `s0 -b-> s2 -a-> s1` matches on final state without
/// reordering the same two events, and dropping the "redundant" order
/// would exclude the only coverage path through `s2`. The same holds
/// when a first edge loops on the source or both intermediates
/// coincide. A target equal to the *source* is fine, though: that is a
/// real commuting cycle (e.g. `Inc`/`Dec` around a counter) where both
/// orders schedule the same pair of actions.
fn is_genuine_diamond(source: NodeId, mid1: NodeId, mid2: NodeId, target: NodeId) -> bool {
    mid1 != mid2 && mid1 != source && mid2 != source && target != mid1 && target != mid2
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::{ActionInstance, State, Value};

    fn st(n: i64) -> State {
        State::from_pairs([("n", Value::Int(n))])
    }

    /// 0 -a-> 1 -b-> 3 and 0 -b-> 2 -a-> 3: a perfect diamond.
    fn diamond_graph() -> (StateGraph, Vec<NodeId>) {
        let mut g = StateGraph::new();
        let n: Vec<_> = (0..4).map(|i| g.insert_state(st(i)).0).collect();
        g.mark_initial(n[0]);
        g.add_edge(n[0], ActionInstance::nullary("a"), n[1]);
        g.add_edge(n[0], ActionInstance::nullary("b"), n[2]);
        g.add_edge(n[1], ActionInstance::nullary("b"), n[3]);
        g.add_edge(n[2], ActionInstance::nullary("a"), n[3]);
        (g, n)
    }

    #[test]
    fn detects_diamond_and_excludes_one_order() {
        let (g, n) = diamond_graph();
        let r = partial_order_reduction(&g);
        assert_eq!(r.diamonds.len(), 1);
        let d = &r.diamonds[0];
        assert_eq!(d.source, n[0]);
        assert_eq!(d.target, n[3]);
        // "a" < "b", so the a-then-b order is kept: excluded edges are
        // 0 -b-> 2 and 2 -a-> 3.
        assert_eq!(r.excluded_count(), 2);
        for e in &r.excluded_edges {
            let edge = g.edge(*e);
            assert!(
                (edge.from == n[0] && edge.action.name == "b")
                    || (edge.from == n[2] && edge.action.name == "a")
            );
        }
    }

    #[test]
    fn non_commuting_actions_are_untouched() {
        // 0 -a-> 1 -b-> 3, 0 -b-> 2 -a-> 4 (different targets).
        let mut g = StateGraph::new();
        let n: Vec<_> = (0..5).map(|i| g.insert_state(st(i)).0).collect();
        g.mark_initial(n[0]);
        g.add_edge(n[0], ActionInstance::nullary("a"), n[1]);
        g.add_edge(n[0], ActionInstance::nullary("b"), n[2]);
        g.add_edge(n[1], ActionInstance::nullary("b"), n[3]);
        g.add_edge(n[2], ActionInstance::nullary("a"), n[4]);
        let r = partial_order_reduction(&g);
        assert!(r.diamonds.is_empty());
        assert!(r.excluded_edges.is_empty());
    }

    #[test]
    fn same_action_different_params_commute() {
        // Request(1) and Request(2) from two clients commuting.
        let a1 = ActionInstance::new("Req", vec![Value::Int(1)]);
        let a2 = ActionInstance::new("Req", vec![Value::Int(2)]);
        let mut g = StateGraph::new();
        let n: Vec<_> = (0..4).map(|i| g.insert_state(st(i)).0).collect();
        g.mark_initial(n[0]);
        g.add_edge(n[0], a1.clone(), n[1]);
        g.add_edge(n[0], a2.clone(), n[2]);
        g.add_edge(n[1], a2, n[3]);
        g.add_edge(n[2], a1, n[3]);
        let r = partial_order_reduction(&g);
        assert_eq!(r.diamonds.len(), 1);
    }

    #[test]
    fn kept_edges_survive_overlapping_diamonds() {
        // Two diamonds sharing the kept continuation edge: an edge
        // dropped by one diamond but kept by another must NOT be
        // excluded.
        let (g, _) = diamond_graph();
        let r = partial_order_reduction(&g);
        for d in &r.diamonds {
            assert!(!r.excluded_edges.contains(&d.kept.0));
            assert!(!r.excluded_edges.contains(&d.kept.1));
        }
    }

    #[test]
    fn self_loop_pseudo_diamond_is_rejected() {
        // Counterexample: 0 -a-> 1, 0 -b-> 2, 1 -b-> 1 (self-loop),
        // 2 -a-> 1. Both "orders" end in state 1, but the self-loop is
        // b applied *at state 1*, not a reordering of the b that moves
        // 0 to 2. Treating this as a diamond dropped 0 -b-> 2 and
        // 2 -a-> 1 — the only coverage path through state 2.
        let mut g = StateGraph::new();
        let n: Vec<_> = (0..3).map(|i| g.insert_state(st(i)).0).collect();
        g.mark_initial(n[0]);
        g.add_edge(n[0], ActionInstance::nullary("a"), n[1]);
        let to_two = g.add_edge(n[0], ActionInstance::nullary("b"), n[2]);
        g.add_edge(n[1], ActionInstance::nullary("b"), n[1]);
        let from_two = g.add_edge(n[2], ActionInstance::nullary("a"), n[1]);
        let r = partial_order_reduction(&g);
        assert!(r.diamonds.is_empty(), "self-loop shape is not a diamond");
        assert!(r.excluded_edges.is_empty());
        // Edge coverage must still reach state 2 after reduction.
        let config =
            crate::traversal::TraversalConfig::default().with_excluded_edges(r.excluded_edges);
        let t = crate::traversal::edge_coverage_paths(&g, &config);
        let covered: HashSet<EdgeId> = t.paths.iter().flatten().copied().collect();
        assert!(covered.contains(&to_two), "path into state 2 lost");
        assert!(covered.contains(&from_two), "path out of state 2 lost");
    }

    #[test]
    fn reduction_composes_with_traversal() {
        let (g, _) = diamond_graph();
        let r = partial_order_reduction(&g);
        let config =
            crate::traversal::TraversalConfig::default().with_excluded_edges(r.excluded_edges);
        let t = crate::traversal::edge_coverage_paths(&g, &config);
        // Only the kept order remains: a single path a;b.
        assert_eq!(t.paths.len(), 1);
        let names: Vec<_> = t.paths[0]
            .iter()
            .map(|&e| g.edge(e).action.name.clone())
            .collect();
        assert_eq!(names, ["a", "b"]);
    }
}
