//! Message pools for message-related variables (§4.1.1).
//!
//! Message-related variables have no counterpart in the
//! implementation, so the testbed maintains one pool per variable:
//! sending actions add the reported message, receiving actions remove
//! it, and drop/duplicate faults adjust multiplicity. During state
//! checks the pool is rendered as a value in exactly the
//! representation the specification uses (bag or set) and compared
//! against the verified state.

use std::collections::BTreeMap;

use mocket_tla::Value;

use crate::sut::MsgEvent;

/// Errors from pool maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// An event referenced a pool that was never registered.
    UnknownPool(String),
    /// A receive/drop referenced a message not in the pool — a
    /// conformance signal in its own right.
    MissingMessage {
        /// The pool.
        pool: String,
        /// The message that was not present.
        msg: Value,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::UnknownPool(p) => write!(f, "unknown message pool {p:?}"),
            PoolError::MissingMessage { pool, msg } => {
                write!(f, "pool {pool:?} does not contain {msg}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

#[derive(Debug, Clone)]
struct Pool {
    bag: bool,
    // Message (spec domain) → multiplicity.
    contents: BTreeMap<Value, usize>,
}

/// All message pools of one test run.
#[derive(Debug, Clone, Default)]
pub struct MessagePools {
    pools: BTreeMap<String, Pool>,
}

impl MessagePools {
    /// Creates an empty pool set.
    pub fn new() -> Self {
        MessagePools::default()
    }

    /// Registers a pool. `bag` selects multiset semantics (the Raft
    /// spec's `messages` allows duplicates); otherwise set semantics
    /// (ZAB's `le_msgs`/`bc_msgs`).
    pub fn register(&mut self, name: impl Into<String>, bag: bool) {
        self.pools.insert(
            name.into(),
            Pool {
                bag,
                contents: BTreeMap::new(),
            },
        );
    }

    /// Whether a pool is registered.
    pub fn has_pool(&self, name: &str) -> bool {
        self.pools.contains_key(name)
    }

    /// Applies one reported event. Messages must already be translated
    /// into the spec domain.
    pub fn apply(&mut self, event: &MsgEvent) -> Result<(), PoolError> {
        match event {
            MsgEvent::Send { pool, msg } | MsgEvent::Duplicate { pool, msg } => {
                let p = self
                    .pools
                    .get_mut(pool)
                    .ok_or_else(|| PoolError::UnknownPool(pool.clone()))?;
                let slot = p.contents.entry(msg.clone()).or_insert(0);
                if p.bag {
                    *slot += 1;
                } else {
                    *slot = 1;
                }
                Ok(())
            }
            MsgEvent::Receive { pool, msg } | MsgEvent::Drop { pool, msg } => {
                let p = self
                    .pools
                    .get_mut(pool)
                    .ok_or_else(|| PoolError::UnknownPool(pool.clone()))?;
                match p.contents.get_mut(msg) {
                    Some(n) if *n > 1 => {
                        *n -= 1;
                        Ok(())
                    }
                    Some(_) => {
                        p.contents.remove(msg);
                        Ok(())
                    }
                    None => Err(PoolError::MissingMessage {
                        pool: pool.clone(),
                        msg: msg.clone(),
                    }),
                }
            }
        }
    }

    /// Renders a pool in the specification's representation: a bag
    /// pool becomes `Fun(message → count)`, a set pool becomes
    /// `Set(message)`.
    pub fn as_value(&self, name: &str) -> Option<Value> {
        self.pools.get(name).map(|p| {
            if p.bag {
                Value::Fun(
                    p.contents
                        .iter()
                        .map(|(m, n)| (m.clone(), Value::Int(*n as i64)))
                        .collect(),
                )
            } else {
                Value::Set(p.contents.keys().cloned().collect())
            }
        })
    }

    /// Total number of in-flight messages across pools (multiplicity
    /// counted).
    pub fn total_in_flight(&self) -> usize {
        self.pools
            .values()
            .map(|p| p.contents.values().sum::<usize>())
            .sum()
    }

    /// Empties every pool (new test case).
    pub fn reset(&mut self) {
        for p in self.pools.values_mut() {
            p.contents.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::vrec;

    fn msg(n: i64) -> Value {
        vrec! { mtype => "Req", mterm => n }
    }

    #[test]
    fn bag_counts_multiplicity() {
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        let send = MsgEvent::Send {
            pool: "messages".into(),
            msg: msg(1),
        };
        pools.apply(&send).unwrap();
        pools
            .apply(&MsgEvent::Duplicate {
                pool: "messages".into(),
                msg: msg(1),
            })
            .unwrap();
        assert_eq!(
            pools.as_value("messages").unwrap(),
            Value::fun([(msg(1), Value::Int(2))])
        );
        assert_eq!(pools.total_in_flight(), 2);
        pools
            .apply(&MsgEvent::Receive {
                pool: "messages".into(),
                msg: msg(1),
            })
            .unwrap();
        assert_eq!(
            pools.as_value("messages").unwrap(),
            Value::fun([(msg(1), Value::Int(1))])
        );
    }

    #[test]
    fn set_pool_ignores_duplicates() {
        let mut pools = MessagePools::new();
        pools.register("le_msgs", false);
        for _ in 0..2 {
            pools
                .apply(&MsgEvent::Send {
                    pool: "le_msgs".into(),
                    msg: msg(1),
                })
                .unwrap();
        }
        assert_eq!(pools.as_value("le_msgs").unwrap(), Value::set([msg(1)]));
        pools
            .apply(&MsgEvent::Receive {
                pool: "le_msgs".into(),
                msg: msg(1),
            })
            .unwrap();
        assert_eq!(pools.as_value("le_msgs").unwrap(), Value::empty_set());
    }

    #[test]
    fn receive_of_absent_message_errors() {
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        let err = pools
            .apply(&MsgEvent::Receive {
                pool: "messages".into(),
                msg: msg(9),
            })
            .unwrap_err();
        assert!(matches!(err, PoolError::MissingMessage { .. }));
    }

    #[test]
    fn unknown_pool_errors() {
        let mut pools = MessagePools::new();
        let err = pools
            .apply(&MsgEvent::Send {
                pool: "nope".into(),
                msg: msg(1),
            })
            .unwrap_err();
        assert_eq!(err, PoolError::UnknownPool("nope".into()));
    }

    #[test]
    fn drop_removes_one_copy() {
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        for _ in 0..2 {
            pools
                .apply(&MsgEvent::Send {
                    pool: "messages".into(),
                    msg: msg(1),
                })
                .unwrap();
        }
        pools
            .apply(&MsgEvent::Drop {
                pool: "messages".into(),
                msg: msg(1),
            })
            .unwrap();
        assert_eq!(pools.total_in_flight(), 1);
    }

    #[test]
    fn reset_clears_contents_but_keeps_pools() {
        let mut pools = MessagePools::new();
        pools.register("messages", true);
        pools
            .apply(&MsgEvent::Send {
                pool: "messages".into(),
                msg: msg(1),
            })
            .unwrap();
        pools.reset();
        assert!(pools.has_pool("messages"));
        assert_eq!(pools.total_in_flight(), 0);
    }
}
