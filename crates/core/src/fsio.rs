//! Fault-injectable filesystem I/O for the campaign harness.
//!
//! The implementation lives in `mocket-obs` ([`mocket_obs::fsio`]) so
//! the dependency-free obs sinks can use the same layer; this module
//! re-exports it and owns the **fault-point catalog** — the stable
//! names at which the seeded injector can be aimed. Every durable
//! write in the orchestrator flows through one of these points; the
//! catalog is documented in DESIGN.md's crash-consistency model.

pub use mocket_obs::fsio::{
    append_bytes, append_line, armed, create_exclusive, is_enospc, write_atomic, Fault,
    FaultInjector, FaultKind, RetryPolicy, MOCKET_FSIO_FAULTS_ENV, MOCKET_FSIO_FAULT_LOG_ENV,
};

/// The named fault points: where a seeded [`FaultInjector`] can bite.
///
/// Names are part of the chaos-replay contract — a pinned seed plus a
/// point name identifies a reproducible fault schedule, so renaming a
/// point invalidates recorded chaos failures. Append, don't rename.
pub mod points {
    /// `plan.txt` atomic write (supervisor, campaign start).
    pub const PLAN_WRITE: &str = "plan.write";
    /// Lease claim: `O_EXCL` create of `shard-N.lease`.
    pub const LEASE_CLAIM: &str = "lease.claim";
    /// Lease rewrite: heartbeat / case pin / steal (temp + rename).
    pub const LEASE_WRITE: &str = "lease.write";
    /// Shard retirement: `shard-N.done` atomic write.
    pub const LEASE_DONE: &str = "lease.done";
    /// Per-shard `journal.log` verdict append.
    pub const JOURNAL_APPEND: &str = "journal.append";
    /// Quarantine forensics appends (`crashes.log`, `poisoned.log`).
    pub const QUARANTINE_APPEND: &str = "quarantine.append";
    /// Supervisor journal append (`supervisor.log`).
    pub const SUPERVISOR_JOURNAL: &str = "supervisor.journal";
    /// Canonical merged outputs (temp + rename each).
    pub const MERGE_WRITE: &str = "merge.write";
    /// `run-summary.json` atomic write (pipeline and merge).
    pub const SUMMARY_WRITE: &str = "summary.write";
    /// `campaign-history.jsonl` append.
    pub const HISTORY_APPEND: &str = "history.append";
    /// `events.jsonl` buffered-batch flush.
    pub const OBS_FLUSH: &str = "obs.flush";
    /// `DirLock` / steal-lock `O_EXCL` create.
    pub const LOCK_CREATE: &str = "lock.create";
    /// Pipeline insight outputs (coverage map, uncovered edges, dot).
    pub const INSIGHT_WRITE: &str = "insight.write";
    /// Replay-artifact atomic write (`case-<hash>.artifact`).
    pub const ARTIFACT_WRITE: &str = "artifact.write";
    /// Per-case causal trace append (`trace.jsonl`).
    pub const TRACE_APPEND: &str = "trace.append";
}
