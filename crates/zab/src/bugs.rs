//! Seeded bug switches for ZabKeeper (the ZooKeeper bugs of Table 2).

/// The two known ZooKeeper bugs Mocket re-found.
#[derive(Debug, Clone, Default)]
pub struct ZabBugs {
    /// ZooKeeper bug #1 (ZOOKEEPER-1419 analog: "leader election
    /// never settles"): agreeing votes are wrongly re-echoed through a
    /// resend path the instrumentation does not cover, flooding the
    /// election channel with notifications the specification never
    /// sends. Verdict: unexpected action `HandleVote`.
    pub election_echo_storm: bool,
    /// ZooKeeper bug #2 (ZOOKEEPER-1653: "fails to start because of
    /// inconsistent epoch"): the second durable epoch write is lost in
    /// a race, so the restarted server trips its startup sanity check
    /// and never joins an election. Verdict: missing action
    /// `StartElection`.
    pub epoch_marker_race: bool,
}

impl ZabBugs {
    /// The conformant implementation.
    pub fn none() -> Self {
        ZabBugs::default()
    }

    /// Whether any switch is on.
    pub fn any(&self) -> bool {
        self.election_echo_storm || self.epoch_marker_race
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_conformant() {
        assert!(!ZabBugs::none().any());
    }
}
