//! ZabKeeper: the ZooKeeper ZAB analog target system.
//!
//! A ZAB implementation on the `mocket-dsnet` substrate: fast leader
//! election, the NEWEPOCH/NEWLEADER synchronization handshake with
//! durable epoch files, and the PROPOSE/ACK/COMMIT broadcast phase.
//! Two seeded bug switches ([`ZabBugs`]) reproduce the mechanisms of
//! the two known ZooKeeper bugs in the paper's Table 2.

pub mod bugs;
pub mod msg;
pub mod node;
pub mod sut;

pub use bugs::ZabBugs;
pub use msg::{ZEntry, ZVote, ZabMsg};
pub use node::ZabNode;
pub use sut::{make_sut, make_sut_backend, make_sut_full, mapping};
