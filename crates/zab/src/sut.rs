//! Wiring ZabKeeper to Mocket: mapping, external driver, SUT factory.
//!
//! Table 1's ZooKeeper row: two message-related variables mapped to
//! testbed pools (`le_msgs` and `bc_msgs`, both plain sets), the
//! state-related variables mapped to annotated fields, and the
//! election entry points mapped as code snippets (Figure 5 maps
//! `StartElection` and `HandleVote` with `Action.begin`/`end`).

use std::sync::Arc;

use mocket_core::mapping::{ActionBinding, MappingRegistry};
use mocket_core::sut::{int_param, ExecReport, SutError};
use mocket_dsnet::{ClusterStorage, Net, NodeId};
use mocket_runtime::{Backend, Cluster, ClusterSut, ExternalDriver};
use mocket_tla::{ActionClass, ActionInstance, Value};

use crate::bugs::ZabBugs;
use crate::node::ZabNode;

/// The spec↔implementation mapping for ZabKeeper.
pub fn mapping() -> MappingRegistry {
    let mut r = MappingRegistry::new();
    r.map_message_pool("le_msgs", false)
        .map_message_pool("bc_msgs", false)
        .map_class_field("zbState", "zkState")
        .map_class_field("vote", "currentVote")
        .map_class_field("voteTable", "recvSet")
        .map_class_field("leaderOf", "following")
        .map_class_field("acceptedEpoch", "acceptedEpoch")
        .map_class_field("currentEpoch", "currentEpoch")
        .map_class_field("history", "dataLog")
        .map_class_field("lastCommitted", "lastCommitted")
        .map_class_field("synced", "syncedSet")
        .map_class_field("epochAcks", "epochAckSet")
        .map_class_field("acks", "ackSet");
    // Election entry points are code snippets (Figure 5); the rest
    // are whole methods.
    r.map_action(
        "StartElection",
        "lookForLeader",
        ActionClass::SingleNode,
        ActionBinding::Snippet,
    )
    .map_action(
        "SendVote",
        "sendNotification",
        ActionClass::MessageSend,
        ActionBinding::Method,
    )
    .map_action(
        "HandleVote",
        "handleNotification",
        ActionClass::MessageReceive,
        ActionBinding::Snippet,
    )
    .map_action(
        "DecideLeader",
        "finishElection",
        ActionClass::SingleNode,
        ActionBinding::Method,
    )
    .map_action(
        "SendNewEpoch",
        "proposeNewEpoch",
        ActionClass::MessageSend,
        ActionBinding::Method,
    )
    .map_action(
        "HandleNewEpoch",
        "onNewEpoch",
        ActionClass::MessageReceive,
        ActionBinding::Method,
    )
    .map_action(
        "HandleEpochAck",
        "onEpochAck",
        ActionClass::MessageReceive,
        ActionBinding::Method,
    )
    .map_action(
        "HandleNewLeader",
        "onNewLeader",
        ActionClass::MessageReceive,
        ActionBinding::Method,
    )
    .map_action(
        "HandleAckLd",
        "onAckLd",
        ActionClass::MessageReceive,
        ActionBinding::Method,
    )
    .map_action(
        "ClientRequest",
        "zkCli_create.sh",
        ActionClass::UserRequest,
        ActionBinding::Script,
    )
    .map_action(
        "SendProposal",
        "sendProposal",
        ActionClass::MessageSend,
        ActionBinding::Method,
    )
    .map_action(
        "HandlePropose",
        "onProposal",
        ActionClass::MessageReceive,
        ActionBinding::Method,
    )
    .map_action(
        "HandleAck",
        "onAck",
        ActionClass::MessageReceive,
        ActionBinding::Method,
    )
    .map_action(
        "CommitProposal",
        "commitProposal",
        ActionClass::SingleNode,
        ActionBinding::Method,
    )
    .map_action(
        "SendCommit",
        "sendCommitMsg",
        ActionClass::MessageSend,
        ActionBinding::Method,
    )
    .map_action(
        "HandleCommit",
        "onCommit",
        ActionClass::MessageReceive,
        ActionBinding::Method,
    )
    .map_action(
        "Restart",
        "restart_zk.sh",
        ActionClass::ExternalFault,
        ActionBinding::Script,
    )
    .map_action(
        "Crash",
        "kill_zk.sh",
        ActionClass::ExternalFault,
        ActionBinding::Script,
    );
    r
}

struct ZabDriver {
    client_counter: i64,
}

impl ExternalDriver for ZabDriver {
    fn execute(
        &mut self,
        cluster: &mut Cluster,
        action: &ActionInstance,
    ) -> Result<ExecReport, SutError> {
        match action.name.as_str() {
            "ClientRequest" => {
                let leader = int_param(action, 0)? as NodeId;
                self.client_counter += 1;
                let events = cluster
                    .execute(
                        leader,
                        &ActionInstance::new("createZNode", vec![Value::Int(self.client_counter)]),
                    )
                    .map_err(|e| SutError::External(e.to_string()))?;
                Ok(ExecReport { msg_events: events })
            }
            "Restart" => {
                cluster.restart(int_param(action, 0)? as NodeId);
                Ok(ExecReport::default())
            }
            "Crash" => {
                cluster.crash(int_param(action, 0)? as NodeId);
                Ok(ExecReport::default())
            }
            other => Err(SutError::External(format!(
                "unknown external action {other}"
            ))),
        }
    }
}

/// Builds a deployable ZabKeeper cluster as a Mocket system under
/// test.
pub fn make_sut(servers: Vec<NodeId>, bugs: ZabBugs) -> ClusterSut {
    make_sut_backend(servers, bugs, Backend::Threads)
}

/// [`make_sut`] on an explicit cluster backend (threads or
/// simulation). Under [`Backend::Sim`] the network runs on the
/// simulation's shared virtual clock, so time-based delay faults
/// mature deterministically in virtual time.
pub fn make_sut_backend(servers: Vec<NodeId>, bugs: ZabBugs, backend: Backend) -> ClusterSut {
    make_sut_full(servers, bugs, backend, None)
}

/// [`make_sut_backend`] plus an optional seed-driven fault plan
/// installed on the network before deployment.
pub fn make_sut_full(
    servers: Vec<NodeId>,
    bugs: ZabBugs,
    backend: Backend,
    fault_plan: Option<mocket_dsnet::FaultPlan>,
) -> ClusterSut {
    let net = Net::new(servers.iter().copied());
    if let Backend::Sim(handle) = &backend {
        net.set_clock(handle.clock.clone());
    }
    if let Some(plan) = fault_plan {
        net.install_fault_plan(plan);
    }
    let storage: Arc<ClusterStorage<Value>> = ClusterStorage::new();
    let factory_net = net.clone();
    let factory_servers = servers.clone();
    let cluster = Cluster::with_backend(
        Box::new(move |id| {
            Box::new(ZabNode::new(
                id,
                factory_servers.clone(),
                bugs.clone(),
                factory_net.clone(),
                storage.for_node(id),
            )) as Box<dyn mocket_runtime::NodeApp>
        }),
        backend,
    );
    let trace_net = net.clone();
    ClusterSut::new(cluster, servers, Box::new(ZabDriver { client_counter: 0 }))
        .with_tracer_hook(Box::new(move |t| trace_net.set_tracer(t.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_specs::zab::{ZabSpec, ZabSpecConfig};

    #[test]
    fn mapping_is_valid_for_the_zab_spec() {
        let spec = ZabSpec::new(ZabSpecConfig::small(vec![1, 2]));
        let issues = mapping().validate(&spec);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn mapping_loc_is_table1_scale() {
        let loc = mapping().mapping_loc();
        assert!((50..=250).contains(&loc), "mapping LOC {loc}");
    }
}
