//! ZabKeeper's wire messages.
//!
//! Two channels, matching the specification's two message-related
//! variables: election notifications (`le_msgs`) and the
//! synchronization/broadcast channel (`bc_msgs`).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use mocket_dsnet::{Wire, WireError};
use mocket_tla::{vrec, Value};

/// An election vote `(leader, zxid)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ZVote {
    /// The proposed leader.
    pub leader: i64,
    /// The proposer's last zxid.
    pub zxid: i64,
}

impl ZVote {
    /// The spec-record shape.
    pub fn to_value(&self) -> Value {
        vrec! { vleader => self.leader, vzxid => self.zxid }
    }

    /// Vote ordering: `(zxid, id)` lexicographic.
    pub fn beats(&self, other: &ZVote) -> bool {
        self.zxid > other.zxid || (self.zxid == other.zxid && self.leader > other.leader)
    }
}

impl Wire for ZVote {
    fn encode(&self, buf: &mut BytesMut) {
        self.leader.encode(buf);
        self.zxid.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ZVote {
            leader: i64::decode(buf)?,
            zxid: i64::decode(buf)?,
        })
    }
}

/// A history entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZEntry {
    /// The entry's zxid.
    pub zxid: i64,
    /// The client datum.
    pub value: i64,
}

impl ZEntry {
    /// The spec-record shape.
    pub fn to_value(&self) -> Value {
        vrec! { zxid => self.zxid, value => self.value }
    }
}

impl Wire for ZEntry {
    fn encode(&self, buf: &mut BytesMut) {
        self.zxid.encode(buf);
        self.value.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ZEntry {
            zxid: i64::decode(buf)?,
            value: i64::decode(buf)?,
        })
    }
}

/// All ZabKeeper messages. Vote notifications travel the election
/// channel; everything else travels the broadcast channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZabMsg {
    /// Election notification.
    Vote {
        /// The sender's current vote.
        vote: ZVote,
        /// Sender.
        from: u64,
        /// Receiver.
        to: u64,
    },
    /// Discovery: the new leader proposes an epoch.
    NewEpoch {
        /// The proposed epoch.
        epoch: i64,
        /// Leader.
        from: u64,
        /// Follower.
        to: u64,
    },
    /// The follower acknowledges the epoch with its last zxid.
    EpochAck {
        /// The acknowledged epoch.
        epoch: i64,
        /// The follower's last zxid.
        zxid: i64,
        /// Follower.
        from: u64,
        /// Leader.
        to: u64,
    },
    /// Synchronization: the leader ships its history.
    NewLeader {
        /// The epoch.
        epoch: i64,
        /// The leader's history.
        history: Vec<ZEntry>,
        /// Leader.
        from: u64,
        /// Follower.
        to: u64,
    },
    /// The follower completes synchronization.
    AckLd {
        /// The epoch.
        epoch: i64,
        /// Follower.
        from: u64,
        /// Leader.
        to: u64,
    },
    /// Broadcast: a proposal.
    Propose {
        /// The proposed entry.
        entry: ZEntry,
        /// Leader.
        from: u64,
        /// Follower.
        to: u64,
    },
    /// Proposal acknowledgment.
    Ack {
        /// The acknowledged zxid.
        zxid: i64,
        /// Follower.
        from: u64,
        /// Leader.
        to: u64,
    },
    /// Commit notification.
    Commit {
        /// The committed zxid.
        zxid: i64,
        /// Leader.
        from: u64,
        /// Follower.
        to: u64,
    },
}

impl ZabMsg {
    /// Destination node.
    pub fn dest(&self) -> u64 {
        match self {
            ZabMsg::Vote { to, .. }
            | ZabMsg::NewEpoch { to, .. }
            | ZabMsg::EpochAck { to, .. }
            | ZabMsg::NewLeader { to, .. }
            | ZabMsg::AckLd { to, .. }
            | ZabMsg::Propose { to, .. }
            | ZabMsg::Ack { to, .. }
            | ZabMsg::Commit { to, .. } => *to,
        }
    }

    /// Which message-related variable (pool) this message belongs to.
    pub fn pool(&self) -> &'static str {
        match self {
            ZabMsg::Vote { .. } => "le_msgs",
            _ => "bc_msgs",
        }
    }

    /// The spec-record shape.
    pub fn to_value(&self) -> Value {
        match self {
            ZabMsg::Vote { vote, from, to } => vrec! {
                mtype => "Vote",
                mvote => vote.to_value(),
                msource => *from as i64,
                mdest => *to as i64,
            },
            ZabMsg::NewEpoch { epoch, from, to } => vrec! {
                mtype => "NewEpoch",
                mepoch => *epoch,
                msource => *from as i64,
                mdest => *to as i64,
            },
            ZabMsg::EpochAck {
                epoch,
                zxid,
                from,
                to,
            } => vrec! {
                mtype => "EpochAck",
                mepoch => *epoch,
                mzxid => *zxid,
                msource => *from as i64,
                mdest => *to as i64,
            },
            ZabMsg::NewLeader {
                epoch,
                history,
                from,
                to,
            } => vrec! {
                mtype => "NewLeader",
                mepoch => *epoch,
                mhistory => Value::seq(history.iter().map(ZEntry::to_value)),
                msource => *from as i64,
                mdest => *to as i64,
            },
            ZabMsg::AckLd { epoch, from, to } => vrec! {
                mtype => "AckLd",
                mepoch => *epoch,
                msource => *from as i64,
                mdest => *to as i64,
            },
            ZabMsg::Propose { entry, from, to } => vrec! {
                mtype => "Propose",
                mentry => entry.to_value(),
                msource => *from as i64,
                mdest => *to as i64,
            },
            ZabMsg::Ack { zxid, from, to } => vrec! {
                mtype => "Ack",
                mzxid => *zxid,
                msource => *from as i64,
                mdest => *to as i64,
            },
            ZabMsg::Commit { zxid, from, to } => vrec! {
                mtype => "Commit",
                mzxid => *zxid,
                msource => *from as i64,
                mdest => *to as i64,
            },
        }
    }
}

impl Wire for ZabMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ZabMsg::Vote { vote, from, to } => {
                buf.put_u8(0);
                vote.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
            ZabMsg::NewEpoch { epoch, from, to } => {
                buf.put_u8(1);
                epoch.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
            ZabMsg::EpochAck {
                epoch,
                zxid,
                from,
                to,
            } => {
                buf.put_u8(2);
                epoch.encode(buf);
                zxid.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
            ZabMsg::NewLeader {
                epoch,
                history,
                from,
                to,
            } => {
                buf.put_u8(3);
                epoch.encode(buf);
                history.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
            ZabMsg::AckLd { epoch, from, to } => {
                buf.put_u8(4);
                epoch.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
            ZabMsg::Propose { entry, from, to } => {
                buf.put_u8(5);
                entry.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
            ZabMsg::Ack { zxid, from, to } => {
                buf.put_u8(6);
                zxid.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
            ZabMsg::Commit { zxid, from, to } => {
                buf.put_u8(7);
                zxid.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        WireError::need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(ZabMsg::Vote {
                vote: ZVote::decode(buf)?,
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
            }),
            1 => Ok(ZabMsg::NewEpoch {
                epoch: i64::decode(buf)?,
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
            }),
            2 => Ok(ZabMsg::EpochAck {
                epoch: i64::decode(buf)?,
                zxid: i64::decode(buf)?,
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
            }),
            3 => Ok(ZabMsg::NewLeader {
                epoch: i64::decode(buf)?,
                history: Vec::<ZEntry>::decode(buf)?,
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
            }),
            4 => Ok(ZabMsg::AckLd {
                epoch: i64::decode(buf)?,
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
            }),
            5 => Ok(ZabMsg::Propose {
                entry: ZEntry::decode(buf)?,
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
            }),
            6 => Ok(ZabMsg::Ack {
                zxid: i64::decode(buf)?,
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
            }),
            7 => Ok(ZabMsg::Commit {
                zxid: i64::decode(buf)?,
                from: u64::decode(buf)?,
                to: u64::decode(buf)?,
            }),
            other => Err(WireError::new(format!("bad ZabMsg tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_messages_roundtrip() {
        for m in [
            ZabMsg::Vote {
                vote: ZVote { leader: 2, zxid: 0 },
                from: 1,
                to: 2,
            },
            ZabMsg::NewEpoch {
                epoch: 1,
                from: 2,
                to: 1,
            },
            ZabMsg::EpochAck {
                epoch: 1,
                zxid: 0,
                from: 1,
                to: 2,
            },
            ZabMsg::NewLeader {
                epoch: 1,
                history: vec![ZEntry {
                    zxid: 101,
                    value: 1,
                }],
                from: 2,
                to: 1,
            },
            ZabMsg::AckLd {
                epoch: 1,
                from: 1,
                to: 2,
            },
            ZabMsg::Propose {
                entry: ZEntry {
                    zxid: 101,
                    value: 1,
                },
                from: 2,
                to: 1,
            },
            ZabMsg::Ack {
                zxid: 101,
                from: 1,
                to: 2,
            },
            ZabMsg::Commit {
                zxid: 101,
                from: 2,
                to: 1,
            },
        ] {
            assert_eq!(m.wire_roundtrip().unwrap(), m);
        }
    }

    #[test]
    fn pools_split_by_channel() {
        let v = ZabMsg::Vote {
            vote: ZVote { leader: 1, zxid: 0 },
            from: 1,
            to: 2,
        };
        assert_eq!(v.pool(), "le_msgs");
        let c = ZabMsg::Commit {
            zxid: 1,
            from: 1,
            to: 2,
        };
        assert_eq!(c.pool(), "bc_msgs");
    }

    #[test]
    fn vote_ordering_is_zxid_then_id() {
        assert!(ZVote { leader: 1, zxid: 5 }.beats(&ZVote { leader: 9, zxid: 0 }));
        assert!(ZVote { leader: 3, zxid: 0 }.beats(&ZVote { leader: 2, zxid: 0 }));
        assert!(!ZVote { leader: 2, zxid: 0 }.beats(&ZVote { leader: 2, zxid: 0 }));
    }
}
