//! The ZabKeeper node (ZooKeeper ZAB analog).
//!
//! Fast leader election on `(zxid, id)` votes, the NEWEPOCH /
//! EPOCHACK / NEWLEADER / ACKLD synchronization handshake with durable
//! epoch files, and the PROPOSE / ACK / COMMIT broadcast phase. Hook
//! names follow ZooKeeper's method names (`lookForLeader`,
//! `handleNotification`, ...).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use mocket_core::sut::MsgEvent;
use mocket_dsnet::{Net, NodeId, Storage};
use mocket_runtime::{NodeApp, Shadow, VarRegistry};
use mocket_tla::{ActionInstance, Value};

use crate::bugs::ZabBugs;
use crate::msg::{ZEntry, ZVote, ZabMsg};

/// Phase constants (identical to the spec's — ZooKeeper uses these
/// names literally, so the constant map is the identity here).
pub const LOOKING: &str = "LOOKING";
/// Following.
pub const FOLLOWING: &str = "FOLLOWING";
/// Leading.
pub const LEADING: &str = "LEADING";

/// A ZabKeeper node.
pub struct ZabNode {
    id: NodeId,
    servers: Vec<NodeId>,
    bugs: ZabBugs,
    net: Arc<Net<ZabMsg>>,
    storage: Arc<Storage<Value>>,
    registry: Arc<VarRegistry>,
    /// Startup sanity check failed (ZooKeeper bug #2): the server
    /// process is up but refuses to participate — it will never offer
    /// an action.
    broken: bool,

    state: Shadow<String>,
    current_vote: Shadow<Value>,
    recv_set: BTreeMap<NodeId, ZVote>,
    following: Shadow<Value>,
    accepted_epoch: Shadow<i64>,
    current_epoch: Shadow<i64>,
    history: Vec<ZEntry>,
    last_committed: Shadow<i64>,
    synced_set: BTreeSet<NodeId>,
    epoch_ack_set: BTreeSet<NodeId>,
    ack_set: BTreeSet<NodeId>,
}

impl ZabNode {
    /// Creates (or restarts) a node, recovering durable state and
    /// running ZooKeeper's startup epoch sanity check.
    pub fn new(
        id: NodeId,
        servers: Vec<NodeId>,
        bugs: ZabBugs,
        net: Arc<Net<ZabMsg>>,
        storage: Arc<Storage<Value>>,
    ) -> Self {
        let registry = VarRegistry::new();
        let accepted = storage
            .get("acceptedEpoch")
            .and_then(|v| v.as_int())
            .unwrap_or(0);
        let current = storage
            .get("currentEpoch")
            .and_then(|v| v.as_int())
            .unwrap_or(0);
        let marker = storage
            .get("epochMarker")
            .and_then(|v| v.as_int())
            .unwrap_or(0);
        let committed = storage
            .get("lastCommitted")
            .and_then(|v| v.as_int())
            .unwrap_or(0);
        let history: Vec<ZEntry> = storage
            .get("history")
            .and_then(|v| {
                v.as_seq().map(|items| {
                    items
                        .iter()
                        .map(|e| ZEntry {
                            zxid: e.expect_field("zxid").expect_int(),
                            value: e.expect_field("value").expect_int(),
                        })
                        .collect()
                })
            })
            .unwrap_or_default();
        // ZooKeeper's startup consistency check between its two epoch
        // files: if the second write never landed, the server throws
        // and never joins an election (ZOOKEEPER-1653).
        let broken = current != marker;

        let mut node = ZabNode {
            id,
            state: Shadow::new("zkState", LOOKING.to_string(), registry.clone()),
            current_vote: Shadow::new("currentVote", Value::Nil, registry.clone()),
            recv_set: BTreeMap::new(),
            following: Shadow::new("following", Value::Nil, registry.clone()),
            accepted_epoch: Shadow::new("acceptedEpoch", accepted, registry.clone()),
            current_epoch: Shadow::new("currentEpoch", current, registry.clone()),
            history,
            last_committed: Shadow::new("lastCommitted", committed, registry.clone()),
            synced_set: BTreeSet::new(),
            epoch_ack_set: BTreeSet::new(),
            ack_set: BTreeSet::new(),
            servers,
            bugs,
            net,
            storage,
            registry,
            broken,
        };
        node.mirror_collections();
        node
    }

    fn quorum(&self) -> usize {
        self.servers.len() / 2 + 1
    }

    fn last_zxid(&self) -> i64 {
        self.history.last().map(|e| e.zxid).unwrap_or(0)
    }

    fn mirror_collections(&mut self) {
        self.registry.write(
            "recvSet",
            Value::Fun(
                self.recv_set
                    .iter()
                    .map(|(&j, v)| (Value::Int(j as i64), v.to_value()))
                    .collect(),
            ),
        );
        self.registry.write(
            "dataLog",
            Value::seq(self.history.iter().map(ZEntry::to_value)),
        );
        for (name, set) in [
            ("syncedSet", &self.synced_set),
            ("epochAckSet", &self.epoch_ack_set),
            ("ackSet", &self.ack_set),
        ] {
            self.registry
                .write(name, Value::set(set.iter().map(|&j| Value::Int(j as i64))));
        }
    }

    fn persist_history(&self) {
        self.storage.put(
            "history",
            Value::seq(self.history.iter().map(ZEntry::to_value)),
        );
    }

    fn send(&self, msg: ZabMsg) -> MsgEvent {
        let value = msg.to_value();
        let pool = msg.pool().to_string();
        self.net
            .send(self.id, msg.dest(), &msg)
            .expect("wire encode");
        MsgEvent::Send { pool, msg: value }
    }

    /// Sends unless an identical message is already queued for the
    /// destination — the sender-side queue deduplication ZooKeeper's
    /// election and learner channels perform (and what keeps the
    /// implementation in lockstep with the spec's message *sets*).
    fn send_deduped(&self, msg: ZabMsg) -> Option<MsgEvent> {
        let already = self.net.inbox(msg.dest()).iter().any(|env| env.msg == msg);
        if already {
            None
        } else {
            Some(self.send(msg))
        }
    }

    fn take(&self, wanted: &Value) -> Option<ZabMsg> {
        self.net
            .take_matching(self.id, |env| env.msg.to_value() == *wanted)
            .map(|env| env.msg)
    }

    fn receive_event(&self, msg: &ZabMsg) -> MsgEvent {
        MsgEvent::Receive {
            pool: msg.pool().to_string(),
            msg: msg.to_value(),
        }
    }

    fn my_vote(&self) -> Option<ZVote> {
        self.current_vote.get().as_record().map(|r| ZVote {
            leader: r["vleader"].expect_int(),
            zxid: r["vzxid"].expect_int(),
        })
    }

    fn set_vote(&mut self, v: Option<ZVote>) {
        self.current_vote
            .set(v.map(|v| v.to_value()).unwrap_or(Value::Nil));
    }

    // ------------------------------------------------------------------
    // Handlers.
    // ------------------------------------------------------------------

    fn look_for_leader(&mut self) -> Vec<MsgEvent> {
        let v = ZVote {
            leader: self.id as i64,
            zxid: self.last_zxid(),
        };
        self.set_vote(Some(v.clone()));
        self.recv_set.clear();
        self.recv_set.insert(self.id, v);
        self.mirror_collections();
        Vec::new()
    }

    fn send_notification(&mut self, peer: NodeId) -> Vec<MsgEvent> {
        let Some(vote) = self.my_vote() else {
            return Vec::new();
        };
        // Plain send: the scheduler only releases this action when the
        // specification's `SendVote` guard (message not in flight)
        // holds, so no dedup is needed here.
        vec![self.send(ZabMsg::Vote {
            vote,
            from: self.id,
            to: peer,
        })]
    }

    fn handle_notification(&mut self, wanted: &Value) -> Vec<MsgEvent> {
        let Some(msg) = self.take(wanted) else {
            return Vec::new();
        };
        let mut events = vec![self.receive_event(&msg)];
        let ZabMsg::Vote { vote, from, .. } = msg else {
            return events;
        };
        if self.state.get() != LOOKING {
            // Answer with the decided vote so late joiners find the
            // leader.
            if let Some(mine) = self.my_vote() {
                events.extend(self.send_deduped(ZabMsg::Vote {
                    vote: mine,
                    from: self.id,
                    to: from,
                }));
            }
            return events;
        }
        let Some(mine) = self.my_vote() else {
            // Election not started here yet: record only.
            self.recv_set.insert(from, vote);
            self.mirror_collections();
            return events;
        };
        self.recv_set.insert(from, vote.clone());
        if vote.beats(&mine) {
            self.set_vote(Some(vote.clone()));
            self.recv_set.insert(self.id, vote);
        } else if vote == mine && self.bugs.election_echo_storm {
            // ZooKeeper bug #1 (ZOOKEEPER-1419 analog): on an agreeing
            // notification, a node that has already adopted another
            // vote wrongly re-sends its *stale* original self-vote
            // through a resend path the instrumentation does not
            // cover. Stale notifications keep circulating and the
            // election never settles.
            let stale = ZVote {
                leader: self.id as i64,
                zxid: self.last_zxid(),
            };
            if stale != mine {
                let echo = ZabMsg::Vote {
                    vote: stale,
                    from: self.id,
                    to: from,
                };
                let already = self.net.inbox(from).iter().any(|env| env.msg == echo);
                if !already {
                    self.net.send(self.id, from, &echo).expect("wire encode");
                }
            }
        }
        self.mirror_collections();
        events
    }

    fn finish_election(&mut self) -> Vec<MsgEvent> {
        let Some(mine) = self.my_vote() else {
            return Vec::new();
        };
        self.following.set(Value::Int(mine.leader));
        if mine.leader == self.id as i64 {
            self.state.set(LEADING.to_string());
        } else {
            self.state.set(FOLLOWING.to_string());
        }
        Vec::new()
    }

    fn propose_new_epoch(&mut self, peer: NodeId) -> Vec<MsgEvent> {
        let epoch = *self.current_epoch.get() + 1;
        self.send_deduped(ZabMsg::NewEpoch {
            epoch,
            from: self.id,
            to: peer,
        })
        .into_iter()
        .collect()
    }

    fn on_new_epoch(&mut self, wanted: &Value) -> Vec<MsgEvent> {
        let Some(msg) = self.take(wanted) else {
            return Vec::new();
        };
        let mut events = vec![self.receive_event(&msg)];
        let ZabMsg::NewEpoch { epoch, from, .. } = msg else {
            return events;
        };
        if epoch < *self.accepted_epoch.get() {
            return events;
        }
        // Durably accept the epoch, then acknowledge.
        self.accepted_epoch.set(epoch);
        self.storage.put("acceptedEpoch", Value::Int(epoch));
        events.extend(self.send_deduped(ZabMsg::EpochAck {
            epoch,
            zxid: self.last_zxid(),
            from: self.id,
            to: from,
        }));
        events
    }

    fn on_epoch_ack(&mut self, wanted: &Value) -> Vec<MsgEvent> {
        let Some(msg) = self.take(wanted) else {
            return Vec::new();
        };
        let mut events = vec![self.receive_event(&msg)];
        let ZabMsg::EpochAck { epoch, from, .. } = msg else {
            return events;
        };
        self.epoch_ack_set.insert(from);
        self.mirror_collections();
        events.extend(self.send_deduped(ZabMsg::NewLeader {
            epoch,
            history: self.history.clone(),
            from: self.id,
            to: from,
        }));
        events
    }

    fn on_new_leader(&mut self, wanted: &Value) -> Vec<MsgEvent> {
        let Some(msg) = self.take(wanted) else {
            return Vec::new();
        };
        let mut events = vec![self.receive_event(&msg)];
        let ZabMsg::NewLeader {
            epoch,
            history,
            from,
            ..
        } = msg
        else {
            return events;
        };
        // Adopt the epoch and the leader's history, durably. The
        // conformant implementation also updates the second epoch
        // file (the marker); the seeded ZOOKEEPER-1653 race skips it,
        // which the startup sanity check later trips over.
        self.current_epoch.set(epoch);
        self.storage.put("currentEpoch", Value::Int(epoch));
        if !self.bugs.epoch_marker_race {
            self.storage.put("epochMarker", Value::Int(epoch));
        }
        self.history = history;
        self.persist_history();
        self.mirror_collections();
        events.extend(self.send_deduped(ZabMsg::AckLd {
            epoch,
            from: self.id,
            to: from,
        }));
        events
    }

    fn on_ack_ld(&mut self, wanted: &Value) -> Vec<MsgEvent> {
        let Some(msg) = self.take(wanted) else {
            return Vec::new();
        };
        let events = vec![self.receive_event(&msg)];
        let ZabMsg::AckLd { epoch, from, .. } = msg else {
            return events;
        };
        self.synced_set.insert(from);
        self.mirror_collections();
        self.current_epoch.set(epoch);
        self.storage.put("currentEpoch", Value::Int(epoch));
        if !self.bugs.epoch_marker_race {
            self.storage.put("epochMarker", Value::Int(epoch));
        }
        events
    }

    fn create_znode(&mut self, datum: i64) -> Vec<MsgEvent> {
        let zxid = *self.current_epoch.get() * 100 + datum;
        self.history.push(ZEntry { zxid, value: datum });
        self.persist_history();
        self.ack_set.clear();
        self.ack_set.insert(self.id);
        self.mirror_collections();
        Vec::new()
    }

    fn send_proposal(&mut self, peer: NodeId) -> Vec<MsgEvent> {
        let Some(entry) = self.history.last().cloned() else {
            return Vec::new();
        };
        self.send_deduped(ZabMsg::Propose {
            entry,
            from: self.id,
            to: peer,
        })
        .into_iter()
        .collect()
    }

    fn on_proposal(&mut self, wanted: &Value) -> Vec<MsgEvent> {
        let Some(msg) = self.take(wanted) else {
            return Vec::new();
        };
        let mut events = vec![self.receive_event(&msg)];
        let ZabMsg::Propose { entry, from, .. } = msg else {
            return events;
        };
        let zxid = entry.zxid;
        if self.last_zxid() < zxid {
            self.history.push(entry);
            self.persist_history();
            self.mirror_collections();
        }
        events.extend(self.send_deduped(ZabMsg::Ack {
            zxid,
            from: self.id,
            to: from,
        }));
        events
    }

    fn on_ack(&mut self, wanted: &Value) -> Vec<MsgEvent> {
        let Some(msg) = self.take(wanted) else {
            return Vec::new();
        };
        let events = vec![self.receive_event(&msg)];
        let ZabMsg::Ack { from, .. } = msg else {
            return events;
        };
        self.ack_set.insert(from);
        self.mirror_collections();
        events
    }

    fn commit_proposal(&mut self) -> Vec<MsgEvent> {
        let zxid = self.last_zxid();
        self.last_committed.set(zxid);
        self.storage.put("lastCommitted", Value::Int(zxid));
        Vec::new()
    }

    fn send_commit(&mut self, peer: NodeId) -> Vec<MsgEvent> {
        let zxid = *self.last_committed.get();
        self.send_deduped(ZabMsg::Commit {
            zxid,
            from: self.id,
            to: peer,
        })
        .into_iter()
        .collect()
    }

    fn on_commit(&mut self, wanted: &Value) -> Vec<MsgEvent> {
        let Some(msg) = self.take(wanted) else {
            return Vec::new();
        };
        let events = vec![self.receive_event(&msg)];
        let ZabMsg::Commit { zxid, .. } = msg else {
            return events;
        };
        let cur = *self.last_committed.get();
        let new = cur.max(zxid);
        self.last_committed.set(new);
        self.storage.put("lastCommitted", Value::Int(new));
        events
    }
}

impl NodeApp for ZabNode {
    fn enabled(&mut self) -> Vec<ActionInstance> {
        if self.broken {
            // The startup check failed: the server never participates.
            return Vec::new();
        }
        let mut offers = Vec::new();
        let me = Value::Int(self.id as i64);
        let state = self.state.get().clone();

        if state == LOOKING && self.current_vote.get() == &Value::Nil {
            offers.push(ActionInstance::new("lookForLeader", vec![me.clone()]));
        }
        if state == LOOKING && self.current_vote.get() != &Value::Nil {
            for &j in &self.servers {
                if j != self.id {
                    offers.push(ActionInstance::new(
                        "sendNotification",
                        vec![me.clone(), Value::Int(j as i64)],
                    ));
                }
            }
            if let Some(mine) = self.my_vote() {
                let agreeing = self.recv_set.values().filter(|v| **v == mine).count();
                if agreeing >= self.quorum() {
                    offers.push(ActionInstance::new("finishElection", vec![me.clone()]));
                }
            }
        }
        if state == LEADING {
            for &j in &self.servers {
                if j == self.id {
                    continue;
                }
                if !self.synced_set.contains(&j) {
                    offers.push(ActionInstance::new(
                        "proposeNewEpoch",
                        vec![me.clone(), Value::Int(j as i64)],
                    ));
                }
                let outstanding = self.last_zxid() > *self.last_committed.get();
                if self.synced_set.contains(&j) && outstanding {
                    offers.push(ActionInstance::new(
                        "sendProposal",
                        vec![me.clone(), Value::Int(j as i64)],
                    ));
                }
                if self.synced_set.contains(&j) && *self.last_committed.get() > 0 {
                    offers.push(ActionInstance::new(
                        "sendCommitMsg",
                        vec![me.clone(), Value::Int(j as i64)],
                    ));
                }
            }
            if self.last_zxid() > *self.last_committed.get() && self.ack_set.len() >= self.quorum()
            {
                offers.push(ActionInstance::new("commitProposal", vec![me.clone()]));
            }
        }
        for env in self.net.inbox(self.id) {
            let hook = match env.msg {
                ZabMsg::Vote { .. } => "handleNotification",
                ZabMsg::NewEpoch { .. } => "onNewEpoch",
                ZabMsg::EpochAck { .. } => "onEpochAck",
                ZabMsg::NewLeader { .. } => "onNewLeader",
                ZabMsg::AckLd { .. } => "onAckLd",
                ZabMsg::Propose { .. } => "onProposal",
                ZabMsg::Ack { .. } => "onAck",
                ZabMsg::Commit { .. } => "onCommit",
            };
            let offer = ActionInstance::new(hook, vec![env.msg.to_value()]);
            if !offers.contains(&offer) {
                offers.push(offer);
            }
        }
        offers
    }

    fn execute(&mut self, action: &ActionInstance) -> Vec<MsgEvent> {
        match action.name.as_str() {
            "lookForLeader" => self.look_for_leader(),
            "sendNotification" => self.send_notification(action.params[1].expect_int() as NodeId),
            "handleNotification" => self.handle_notification(&action.params[0]),
            "finishElection" => self.finish_election(),
            "proposeNewEpoch" => self.propose_new_epoch(action.params[1].expect_int() as NodeId),
            "onNewEpoch" => self.on_new_epoch(&action.params[0]),
            "onEpochAck" => self.on_epoch_ack(&action.params[0]),
            "onNewLeader" => self.on_new_leader(&action.params[0]),
            "onAckLd" => self.on_ack_ld(&action.params[0]),
            "createZNode" => self.create_znode(action.params[0].expect_int()),
            "sendProposal" => self.send_proposal(action.params[1].expect_int() as NodeId),
            "onProposal" => self.on_proposal(&action.params[0]),
            "onAck" => self.on_ack(&action.params[0]),
            "commitProposal" => self.commit_proposal(),
            "sendCommitMsg" => self.send_commit(action.params[1].expect_int() as NodeId),
            "onCommit" => self.on_commit(&action.params[0]),
            other => panic!("unknown action {other}"),
        }
    }

    fn registry(&self) -> Arc<VarRegistry> {
        self.registry.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_dsnet::ClusterStorage;

    fn cluster(
        n: u64,
        bugs: ZabBugs,
    ) -> (Vec<ZabNode>, Arc<Net<ZabMsg>>, Arc<ClusterStorage<Value>>) {
        let servers: Vec<NodeId> = (1..=n).collect();
        let net = Net::new(servers.iter().copied());
        let storage = ClusterStorage::new();
        let nodes = servers
            .iter()
            .map(|&id| {
                ZabNode::new(
                    id,
                    servers.clone(),
                    bugs.clone(),
                    net.clone(),
                    storage.for_node(id),
                )
            })
            .collect();
        (nodes, net, storage)
    }

    fn exec(n: &mut ZabNode, name: &str, params: Vec<Value>) -> Vec<MsgEvent> {
        n.execute(&ActionInstance::new(name, params))
    }

    /// Elects node 2 leader of a 2-node cluster and syncs node 1.
    fn elect_and_sync(nodes: &mut [ZabNode], net: &Net<ZabMsg>) {
        exec(&mut nodes[0], "lookForLeader", vec![Value::Int(1)]);
        exec(&mut nodes[1], "lookForLeader", vec![Value::Int(2)]);
        exec(
            &mut nodes[1],
            "sendNotification",
            vec![Value::Int(2), Value::Int(1)],
        );
        let m = net.inbox(1)[0].msg.to_value();
        exec(&mut nodes[0], "handleNotification", vec![m]);
        exec(
            &mut nodes[0],
            "sendNotification",
            vec![Value::Int(1), Value::Int(2)],
        );
        let m = net.inbox(2)[0].msg.to_value();
        exec(&mut nodes[1], "handleNotification", vec![m]);
        exec(&mut nodes[0], "finishElection", vec![Value::Int(1)]);
        exec(&mut nodes[1], "finishElection", vec![Value::Int(2)]);
        exec(
            &mut nodes[1],
            "proposeNewEpoch",
            vec![Value::Int(2), Value::Int(1)],
        );
        let m = net.inbox(1)[0].msg.to_value();
        exec(&mut nodes[0], "onNewEpoch", vec![m]);
        let m = net.inbox(2)[0].msg.to_value();
        exec(&mut nodes[1], "onEpochAck", vec![m]);
        let m = net.inbox(1)[0].msg.to_value();
        exec(&mut nodes[0], "onNewLeader", vec![m]);
        let m = net.inbox(2)[0].msg.to_value();
        exec(&mut nodes[1], "onAckLd", vec![m]);
    }

    #[test]
    fn election_and_sync() {
        let (mut nodes, net, _st) = cluster(2, ZabBugs::none());
        elect_and_sync(&mut nodes, &net);
        assert_eq!(nodes[1].state.get(), LEADING);
        assert_eq!(nodes[0].state.get(), FOLLOWING);
        assert_eq!(*nodes[0].accepted_epoch.get(), 1);
        assert_eq!(*nodes[0].current_epoch.get(), 1);
        assert!(nodes[1].synced_set.contains(&1));
    }

    #[test]
    fn broadcast_commits() {
        let (mut nodes, net, _st) = cluster(2, ZabBugs::none());
        elect_and_sync(&mut nodes, &net);
        exec(&mut nodes[1], "createZNode", vec![Value::Int(1)]);
        exec(
            &mut nodes[1],
            "sendProposal",
            vec![Value::Int(2), Value::Int(1)],
        );
        let m = net.inbox(1)[0].msg.to_value();
        exec(&mut nodes[0], "onProposal", vec![m]);
        let m = net.inbox(2)[0].msg.to_value();
        exec(&mut nodes[1], "onAck", vec![m]);
        exec(&mut nodes[1], "commitProposal", vec![Value::Int(2)]);
        exec(
            &mut nodes[1],
            "sendCommitMsg",
            vec![Value::Int(2), Value::Int(1)],
        );
        let m = net.inbox(1)[0].msg.to_value();
        exec(&mut nodes[0], "onCommit", vec![m]);
        assert_eq!(*nodes[0].last_committed.get(), 101);
        assert_eq!(*nodes[1].last_committed.get(), 101);
    }

    #[test]
    fn restart_recovers_durable_state() {
        let (mut nodes, net, storage) = cluster(2, ZabBugs::none());
        elect_and_sync(&mut nodes, &net);
        let node1 = ZabNode::new(
            1,
            vec![1, 2],
            ZabBugs::none(),
            net.clone(),
            storage.for_node(1),
        );
        assert!(!node1.broken);
        assert_eq!(*node1.accepted_epoch.get(), 1);
        assert_eq!(*node1.current_epoch.get(), 1);
        assert_eq!(node1.state.get(), LOOKING);
        // A healthy restarted node offers lookForLeader.
        let mut node1 = node1;
        let offers = node1.enabled();
        assert!(offers.iter().any(|a| a.name == "lookForLeader"));
    }

    #[test]
    fn epoch_marker_race_breaks_startup() {
        let bugs = ZabBugs {
            epoch_marker_race: true,
            ..ZabBugs::none()
        };
        let (mut nodes, net, storage) = cluster(2, bugs.clone());
        elect_and_sync(&mut nodes, &net);
        // Restart follower 1: currentEpoch was written, the marker
        // was not — the sanity check refuses to start.
        let mut node1 = ZabNode::new(1, vec![1, 2], bugs, net.clone(), storage.for_node(1));
        assert!(node1.broken);
        assert!(node1.enabled().is_empty(), "a broken server offers nothing");
        // Its durable state still reads back consistently with the
        // specification's view.
        assert_eq!(*node1.accepted_epoch.get(), 1);
        assert_eq!(*node1.current_epoch.get(), 1);
    }

    #[test]
    fn echo_storm_sends_uninstrumented_votes() {
        let bugs = ZabBugs {
            election_echo_storm: true,
            ..ZabBugs::none()
        };
        let (mut nodes, net, _st) = cluster(2, bugs);
        exec(&mut nodes[0], "lookForLeader", vec![Value::Int(1)]);
        exec(&mut nodes[1], "lookForLeader", vec![Value::Int(2)]);
        // Node 1 adopts node 2's vote; a second agreeing notification
        // then triggers the stale-vote echo.
        for _ in 0..2 {
            exec(
                &mut nodes[1],
                "sendNotification",
                vec![Value::Int(2), Value::Int(1)],
            );
            let m = net.inbox(1)[0].msg.to_value();
            let events = exec(&mut nodes[0], "handleNotification", vec![m]);
            assert_eq!(events.len(), 1, "only the Receive is reported");
        }
        let inbox = net.inbox(2);
        assert_eq!(inbox.len(), 1, "the uninstrumented stale echo is in flight");
        let ZabMsg::Vote { vote, .. } = &inbox[0].msg else {
            panic!("echo must be a vote");
        };
        assert_eq!(vote, &ZVote { leader: 1, zxid: 0 }, "the stale self-vote");
    }

    #[test]
    fn conformant_node_does_not_echo() {
        let (mut nodes, net, _st) = cluster(2, ZabBugs::none());
        exec(&mut nodes[0], "lookForLeader", vec![Value::Int(1)]);
        exec(&mut nodes[1], "lookForLeader", vec![Value::Int(2)]);
        exec(
            &mut nodes[1],
            "sendNotification",
            vec![Value::Int(2), Value::Int(1)],
        );
        let m = net.inbox(1)[0].msg.to_value();
        exec(&mut nodes[0], "handleNotification", vec![m]);
        exec(
            &mut nodes[0],
            "sendNotification",
            vec![Value::Int(1), Value::Int(2)],
        );
        let m = net.inbox(2)[0].msg.to_value();
        exec(&mut nodes[1], "handleNotification", vec![m]);
        assert_eq!(net.inbox_len(1), 0);
    }
}
