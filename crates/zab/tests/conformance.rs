//! End-to-end Mocket runs against ZabKeeper.

use std::sync::Arc;

use mocket_core::{Pipeline, PipelineConfig, RunConfig};
use mocket_specs::zab::{ZabSpec, ZabSpecConfig};
use mocket_zab::{make_sut, mapping, ZabBugs};

fn pipeline(cfg: ZabSpecConfig, por: bool, stop_at_first: bool) -> Pipeline {
    let mut pc = PipelineConfig::default();
    pc.por = por;
    pc.stop_at_first_bug = stop_at_first;
    pc.max_path_len = 60;
    pc.run = RunConfig::fast();
    Pipeline::new(Arc::new(ZabSpec::new(cfg)), mapping(), pc).expect("mapping is valid")
}

#[test]
fn conformant_zabkeeper_passes_every_test_case() {
    // Election + synchronization model (no client requests): small
    // enough to run every generated case.
    let mut cfg = ZabSpecConfig::small(vec![1, 2]);
    cfg.client_request_limit = 0;
    let p = pipeline(cfg, true, false);
    let result = p
        .run(|| Box::new(make_sut(vec![1, 2], ZabBugs::none())));
    assert!(
        result.reports.is_empty(),
        "conformant run must be clean; first report:\n{}",
        result.reports[0]
    );
    assert!(result.passed > 0);
    assert_eq!(result.passed, result.effort.cases_run);
}

#[test]
fn conformant_zabkeeper_broadcast_sample_passes() {
    // The full model including broadcast, sampled: a capped number of
    // POR-reduced cases.
    let cfg = ZabSpecConfig::small(vec![1, 2]);
    let mut pc = PipelineConfig::default();
    pc.por = true;
    pc.stop_at_first_bug = false;
    pc.max_path_len = 60;
    pc.max_test_cases = 800;
    let p = Pipeline::new(Arc::new(ZabSpec::new(cfg)), mapping(), pc).unwrap();
    let result = p
        .run(|| Box::new(make_sut(vec![1, 2], ZabBugs::none())));
    assert!(
        result.reports.is_empty(),
        "conformant run must be clean; first report:\n{}",
        result.reports[0]
    );
    assert_eq!(result.effort.cases_run, 800);
}

#[test]
fn election_echo_storm_is_unexpected_handle_vote() {
    // ZooKeeper bug #1: agreeing votes are echoed through an
    // uninstrumented resend path; the extra notifications surface as
    // unexpected HandleVote offers.
    let cfg = ZabSpecConfig::small(vec![1, 2]);
    let p = pipeline(cfg, false, true);
    let result = p
        .run(|| {
            Box::new(make_sut(
                vec![1, 2],
                ZabBugs {
                    election_echo_storm: true,
                    ..ZabBugs::none()
                },
            ))
        });
    let report = result.reports.first().expect("bug must be detected");
    assert_eq!(report.inconsistency.kind(), "Unexpected action");
    assert_eq!(report.inconsistency.subject(), "HandleVote");
    // Unexpected actions have no per-variable diff, but the explainer
    // still searches for a verified state where the offer is enabled.
    let e = report
        .explanation
        .as_ref()
        .expect("unexpected-action report must carry an explanation");
    assert!(e.action.contains("HandleVote"));
    assert!(
        report.to_string().contains("verified state"),
        "nearest-verified-state verdict missing:\n{report}"
    );
}

#[test]
fn epoch_marker_race_is_missing_start_election() {
    // ZooKeeper bug #2: a restarted follower trips the startup epoch
    // sanity check and never joins the next election.
    let mut cfg = ZabSpecConfig::small(vec![1, 2]);
    cfg.restart_limit = 1;
    cfg.client_request_limit = 0;
    let p = pipeline(cfg, false, true);
    let result = p
        .run(|| {
            Box::new(make_sut(
                vec![1, 2],
                ZabBugs {
                    epoch_marker_race: true,
                    ..ZabBugs::none()
                },
            ))
        });
    let report = result.reports.first().expect("bug must be detected");
    assert_eq!(report.inconsistency.kind(), "Missing action");
    assert_eq!(report.inconsistency.subject(), "StartElection");
}
