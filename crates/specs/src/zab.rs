//! The ZooKeeper atomic broadcast (ZAB) specification.
//!
//! Developed for this reproduction the way the authors developed
//! theirs (§5.3): from the implementation and the ZAB design
//! documents, testing-oriented — actions first, variables second. Two
//! message-related variables model ZooKeeper's two communication
//! mechanisms: `le_msgs` for leader-election notifications and
//! `bc_msgs` for the synchronization/broadcast channel, both plain
//! sets (no drop/duplicate faults; §5.3 notes ZAB's designers never
//! claimed to handle them).
//!
//! The protocol here is a faithful small-model ZAB skeleton: fast
//! leader election on `(lastZxid, id)` votes with quorum agreement,
//! a discovery/synchronization handshake (NEWEPOCH / EPOCHACK /
//! NEWLEADER / ACKLD with the acceptedEpoch-then-currentEpoch durable
//! writes whose ordering ZooKeeper bug #2 violates), and a one-
//! outstanding-proposal broadcast phase (PROPOSE / ACK / COMMIT).

use mocket_tla::{vrec, ActionClass, ActionDef, Spec, State, Value, VarClass, VarDef};

/// Node phase constants.
pub const LOOKING: &str = "LOOKING";
/// Following an elected leader.
pub const FOLLOWING: &str = "FOLLOWING";
/// Leading.
pub const LEADING: &str = "LEADING";

/// Model configuration.
#[derive(Debug, Clone)]
pub struct ZabSpecConfig {
    /// Server ids.
    pub servers: Vec<i64>,
    /// Bound on `ClientRequest` occurrences.
    pub client_request_limit: i64,
    /// Bound on `Restart` occurrences.
    pub restart_limit: i64,
    /// Bound on `Crash` occurrences.
    pub crash_limit: i64,
    /// Servers allowed to start elections (symmetry-style reduction;
    /// `None` = all).
    pub starters: Option<Vec<i64>>,
}

impl ZabSpecConfig {
    /// A small default model.
    pub fn small(servers: Vec<i64>) -> Self {
        ZabSpecConfig {
            servers,
            client_request_limit: 1,
            restart_limit: 0,
            crash_limit: 0,
            starters: None,
        }
    }

    fn quorum(&self) -> usize {
        self.servers.len() / 2 + 1
    }
}

/// The ZAB specification.
#[derive(Debug, Clone)]
pub struct ZabSpec {
    /// Model configuration.
    pub config: ZabSpecConfig,
}

impl ZabSpec {
    /// Creates the spec.
    pub fn new(config: ZabSpecConfig) -> Self {
        ZabSpec { config }
    }
}

// ----------------------------------------------------------------------
// Helpers.
// ----------------------------------------------------------------------

fn node(i: i64) -> Value {
    Value::Int(i)
}

fn pn(s: &State, var: &str, i: i64) -> Value {
    s.expect(var).expect_apply(&node(i)).clone()
}

fn set_pn(s: &State, var: &str, i: i64, v: Value) -> State {
    s.with(var, s.expect(var).except(&node(i), v))
}

fn is_alive(s: &State, i: i64) -> bool {
    pn(s, "alive", i) == Value::Bool(true)
}

fn counter(s: &State, name: &str) -> i64 {
    s.expect(name).expect_int()
}

fn bump(s: &State, name: &str) -> State {
    s.with(name, Value::Int(counter(s, name) + 1))
}

fn set_add(s: &State, var: &str, m: Value) -> State {
    s.with(var, s.expect(var).with_elem(m))
}

fn set_remove(s: &State, var: &str, m: &Value) -> State {
    s.with(var, s.expect(var).without_elem(m))
}

fn set_msgs(s: &State, var: &str) -> Vec<Value> {
    match s.expect(var) {
        Value::Set(set) => set.iter().cloned().collect(),
        _ => Vec::new(),
    }
}

fn fld(m: &Value, f: &str) -> i64 {
    m.expect_field(f).expect_int()
}

fn mtype(m: &Value) -> &str {
    m.expect_field("mtype").expect_str()
}

/// Last zxid in a history sequence (0 when empty).
fn last_zxid(history: &Value) -> i64 {
    history
        .last()
        .map(|e| e.expect_field("zxid").expect_int())
        .unwrap_or(0)
}

/// Vote ordering: `(zxid, id)` lexicographic.
fn vote_gt(a_zxid: i64, a_id: i64, b_zxid: i64, b_id: i64) -> bool {
    a_zxid > b_zxid || (a_zxid == b_zxid && a_id > b_id)
}

/// Builds a vote record.
fn vote(leader: i64, zxid: i64) -> Value {
    vrec! { vleader => leader, vzxid => zxid }
}

impl Spec for ZabSpec {
    fn name(&self) -> &str {
        "Zab"
    }

    fn variables(&self) -> Vec<VarDef> {
        vec![
            VarDef::new("le_msgs", VarClass::MessageRelated),
            VarDef::new("bc_msgs", VarClass::MessageRelated),
            VarDef::new("zbState", VarClass::StateRelated),
            VarDef::new("vote", VarClass::StateRelated),
            VarDef::new("voteTable", VarClass::StateRelated),
            VarDef::new("leaderOf", VarClass::StateRelated),
            VarDef::new("acceptedEpoch", VarClass::StateRelated),
            VarDef::new("currentEpoch", VarClass::StateRelated),
            VarDef::new("history", VarClass::StateRelated),
            VarDef::new("lastCommitted", VarClass::StateRelated),
            VarDef::new("synced", VarClass::StateRelated),
            VarDef::new("epochAcks", VarClass::StateRelated),
            VarDef::new("acks", VarClass::StateRelated),
            VarDef::new("alive", VarClass::Auxiliary),
            VarDef::new("clientRequests", VarClass::ActionCounter),
            VarDef::new("restartCount", VarClass::ActionCounter),
            VarDef::new("crashCount", VarClass::ActionCounter),
        ]
    }

    fn constants(&self) -> Vec<(String, Value)> {
        vec![
            (
                "Server".into(),
                Value::set(self.config.servers.iter().map(|&i| Value::Int(i))),
            ),
            ("Looking".into(), Value::str(LOOKING)),
            ("Following".into(), Value::str(FOLLOWING)),
            ("Leading".into(), Value::str(LEADING)),
            ("Nil".into(), Value::Nil),
        ]
    }

    fn init_states(&self) -> Vec<State> {
        let servers: Vec<Value> = self.config.servers.iter().map(|&i| Value::Int(i)).collect();
        vec![State::from_pairs([
            ("le_msgs", Value::empty_set()),
            ("bc_msgs", Value::empty_set()),
            (
                "zbState",
                Value::const_fun(servers.clone(), Value::str(LOOKING)),
            ),
            ("vote", Value::const_fun(servers.clone(), Value::Nil)),
            (
                "voteTable",
                Value::const_fun(servers.clone(), Value::fun([])),
            ),
            ("leaderOf", Value::const_fun(servers.clone(), Value::Nil)),
            (
                "acceptedEpoch",
                Value::const_fun(servers.clone(), Value::Int(0)),
            ),
            (
                "currentEpoch",
                Value::const_fun(servers.clone(), Value::Int(0)),
            ),
            (
                "history",
                Value::const_fun(servers.clone(), Value::empty_seq()),
            ),
            (
                "lastCommitted",
                Value::const_fun(servers.clone(), Value::Int(0)),
            ),
            (
                "synced",
                Value::const_fun(servers.clone(), Value::empty_set()),
            ),
            (
                "epochAcks",
                Value::const_fun(servers.clone(), Value::empty_set()),
            ),
            ("acks", Value::const_fun(servers, Value::empty_set())),
            (
                "alive",
                Value::const_fun(
                    self.config.servers.iter().map(|&i| Value::Int(i)),
                    Value::Bool(true),
                ),
            ),
            ("clientRequests", Value::Int(0)),
            ("restartCount", Value::Int(0)),
            ("crashCount", Value::Int(0)),
        ])]
    }

    fn actions(&self) -> Vec<ActionDef> {
        let cfg = self.config.clone();
        let mut actions = Vec::new();

        // ---------------- StartElection(i) ----------------
        {
            let starters = cfg.starters.clone().unwrap_or_else(|| cfg.servers.clone());
            actions.push(ActionDef::with_params(
                "StartElection",
                ActionClass::SingleNode,
                move |_s| starters.iter().map(|&i| vec![Value::Int(i)]).collect(),
                move |s, ps| {
                    let i = ps[0].expect_int();
                    let enabled = is_alive(s, i)
                        && pn(s, "zbState", i) == Value::str(LOOKING)
                        && pn(s, "vote", i) == Value::Nil;
                    enabled.then(|| {
                        let zxid = last_zxid(&pn(s, "history", i));
                        let v = vote(i, zxid);
                        let s = set_pn(s, "vote", i, v.clone());
                        set_pn(&s, "voteTable", i, Value::fun([(node(i), v)]))
                    })
                },
            ));
        }

        // ---------------- SendVote(i, j) ----------------
        {
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "SendVote",
                ActionClass::MessageSend,
                move |_s| {
                    let mut out = Vec::new();
                    for &i in &servers {
                        for &j in &servers {
                            if i != j {
                                out.push(vec![Value::Int(i), Value::Int(j)]);
                            }
                        }
                    }
                    out
                },
                move |s, ps| {
                    let (i, j) = (ps[0].expect_int(), ps[1].expect_int());
                    if !is_alive(s, i)
                        || pn(s, "zbState", i) != Value::str(LOOKING)
                        || pn(s, "vote", i) == Value::Nil
                    {
                        return None;
                    }
                    let v = pn(s, "vote", i);
                    let m = vrec! {
                        mtype => "Vote",
                        mvote => v,
                        msource => i,
                        mdest => j,
                    };
                    (!s.expect("le_msgs").contains(&m)).then(|| set_add(s, "le_msgs", m))
                },
            ));
        }

        // ---------------- HandleVote(m) ----------------
        {
            actions.push(ActionDef::with_params(
                "HandleVote",
                ActionClass::MessageReceive,
                |s| {
                    set_msgs(s, "le_msgs")
                        .into_iter()
                        .map(|m| vec![m])
                        .collect()
                },
                move |s, ps| {
                    let m = &ps[0];
                    let i = fld(m, "mdest");
                    let j = fld(m, "msource");
                    if !is_alive(s, i) {
                        return None;
                    }
                    let s2 = set_remove(s, "le_msgs", m);
                    let incoming = m.expect_field("mvote").clone();
                    if pn(&s2, "zbState", i) != Value::str(LOOKING) {
                        // An established node answers with its own
                        // (decided) vote so late joiners can find the
                        // leader.
                        let reply = vrec! {
                            mtype => "Vote",
                            mvote => pn(&s2, "vote", i),
                            msource => i,
                            mdest => j,
                        };
                        return Some(if s2.expect("le_msgs").contains(&reply) {
                            s2
                        } else {
                            set_add(&s2, "le_msgs", reply)
                        });
                    }
                    if pn(&s2, "vote", i) == Value::Nil {
                        // Not yet in an election round: record only.
                        let table = pn(&s2, "voteTable", i).except(&node(j), incoming);
                        return Some(set_pn(&s2, "voteTable", i, table));
                    }
                    let mine = pn(&s2, "vote", i);
                    let in_zxid = fld(&incoming, "vzxid");
                    let in_leader = fld(&incoming, "vleader");
                    let my_zxid = fld(&mine, "vzxid");
                    let my_leader = fld(&mine, "vleader");
                    let table = pn(&s2, "voteTable", i).except(&node(j), incoming.clone());
                    let s3 = set_pn(&s2, "voteTable", i, table);
                    Some(if vote_gt(in_zxid, in_leader, my_zxid, my_leader) {
                        // Adopt the better vote (and count it as ours).
                        let s4 = set_pn(&s3, "vote", i, incoming.clone());
                        let table = pn(&s4, "voteTable", i).except(&node(i), incoming);
                        set_pn(&s4, "voteTable", i, table)
                    } else {
                        s3
                    })
                },
            ));
        }

        // ---------------- DecideLeader(i) ----------------
        {
            let cfg2 = cfg.clone();
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "DecideLeader",
                ActionClass::SingleNode,
                move |_s| servers.iter().map(|&i| vec![Value::Int(i)]).collect(),
                move |s, ps| {
                    let i = ps[0].expect_int();
                    if !is_alive(s, i)
                        || pn(s, "zbState", i) != Value::str(LOOKING)
                        || pn(s, "vote", i) == Value::Nil
                    {
                        return None;
                    }
                    let mine = pn(s, "vote", i);
                    let table = pn(s, "voteTable", i);
                    let agreeing = match &table {
                        Value::Fun(f) => f.values().filter(|v| **v == mine).count(),
                        _ => 0,
                    };
                    if agreeing < cfg2.quorum() {
                        return None;
                    }
                    let leader = fld(&mine, "vleader");
                    let s = set_pn(s, "leaderOf", i, Value::Int(leader));
                    Some(if leader == i {
                        set_pn(&s, "zbState", i, Value::str(LEADING))
                    } else {
                        set_pn(&s, "zbState", i, Value::str(FOLLOWING))
                    })
                },
            ));
        }

        // ---------------- SendNewEpoch(l, j) ----------------
        {
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "SendNewEpoch",
                ActionClass::MessageSend,
                move |_s| {
                    let mut out = Vec::new();
                    for &l in &servers {
                        for &j in &servers {
                            if l != j {
                                out.push(vec![Value::Int(l), Value::Int(j)]);
                            }
                        }
                    }
                    out
                },
                move |s, ps| {
                    let (l, j) = (ps[0].expect_int(), ps[1].expect_int());
                    if !is_alive(s, l) || pn(s, "zbState", l) != Value::str(LEADING) {
                        return None;
                    }
                    // Only court nodes that follow this leader.
                    if pn(s, "leaderOf", j) != Value::Int(l) {
                        return None;
                    }
                    if pn(s, "synced", l).contains(&node(j)) {
                        return None;
                    }
                    let epoch = pn(s, "currentEpoch", l).expect_int() + 1;
                    let m = vrec! {
                        mtype => "NewEpoch",
                        mepoch => epoch,
                        msource => l,
                        mdest => j,
                    };
                    (!s.expect("bc_msgs").contains(&m)).then(|| set_add(s, "bc_msgs", m))
                },
            ));
        }

        // ---------------- HandleNewEpoch(m) ----------------
        {
            actions.push(ActionDef::with_params(
                "HandleNewEpoch",
                ActionClass::MessageReceive,
                |s| {
                    set_msgs(s, "bc_msgs")
                        .into_iter()
                        .filter(|m| mtype(m) == "NewEpoch")
                        .map(|m| vec![m])
                        .collect()
                },
                move |s, ps| {
                    let m = &ps[0];
                    let i = fld(m, "mdest");
                    let l = fld(m, "msource");
                    if !is_alive(s, i) || pn(s, "zbState", i) != Value::str(FOLLOWING) {
                        return None;
                    }
                    let epoch = fld(m, "mepoch");
                    if epoch < pn(s, "acceptedEpoch", i).expect_int() {
                        return Some(set_remove(s, "bc_msgs", m));
                    }
                    // Durably accept the epoch, then acknowledge.
                    let s2 = set_pn(s, "acceptedEpoch", i, Value::Int(epoch));
                    let s2 = set_remove(&s2, "bc_msgs", m);
                    let ack = vrec! {
                        mtype => "EpochAck",
                        mepoch => epoch,
                        mzxid => last_zxid(&pn(&s2, "history", i)),
                        msource => i,
                        mdest => l,
                    };
                    Some(set_add(&s2, "bc_msgs", ack))
                },
            ));
        }

        // ---------------- HandleEpochAck(m) ----------------
        {
            actions.push(ActionDef::with_params(
                "HandleEpochAck",
                ActionClass::MessageReceive,
                |s| {
                    set_msgs(s, "bc_msgs")
                        .into_iter()
                        .filter(|m| mtype(m) == "EpochAck")
                        .map(|m| vec![m])
                        .collect()
                },
                move |s, ps| {
                    let m = &ps[0];
                    let l = fld(m, "mdest");
                    let j = fld(m, "msource");
                    if !is_alive(s, l) || pn(s, "zbState", l) != Value::str(LEADING) {
                        return None;
                    }
                    let s2 = set_remove(s, "bc_msgs", m);
                    let s2 = set_pn(
                        &s2,
                        "epochAcks",
                        l,
                        pn(&s2, "epochAcks", l).with_elem(node(j)),
                    );
                    // Ship NEWLEADER with the leader's history.
                    let epoch = fld(m, "mepoch");
                    let nl = vrec! {
                        mtype => "NewLeader",
                        mepoch => epoch,
                        mhistory => pn(&s2, "history", l),
                        msource => l,
                        mdest => j,
                    };
                    Some(set_add(&s2, "bc_msgs", nl))
                },
            ));
        }

        // ---------------- HandleNewLeader(m) ----------------
        {
            actions.push(ActionDef::with_params(
                "HandleNewLeader",
                ActionClass::MessageReceive,
                |s| {
                    set_msgs(s, "bc_msgs")
                        .into_iter()
                        .filter(|m| mtype(m) == "NewLeader")
                        .map(|m| vec![m])
                        .collect()
                },
                move |s, ps| {
                    let m = &ps[0];
                    let i = fld(m, "mdest");
                    let l = fld(m, "msource");
                    if !is_alive(s, i) || pn(s, "zbState", i) != Value::str(FOLLOWING) {
                        return None;
                    }
                    let epoch = fld(m, "mepoch");
                    // Adopt the epoch durably and the leader's history.
                    let s2 = set_pn(s, "currentEpoch", i, Value::Int(epoch));
                    let s2 = set_pn(&s2, "history", i, m.expect_field("mhistory").clone());
                    let s2 = set_remove(&s2, "bc_msgs", m);
                    let ack = vrec! {
                        mtype => "AckLd",
                        mepoch => epoch,
                        msource => i,
                        mdest => l,
                    };
                    Some(set_add(&s2, "bc_msgs", ack))
                },
            ));
        }

        // ---------------- HandleAckLd(m) ----------------
        {
            actions.push(ActionDef::with_params(
                "HandleAckLd",
                ActionClass::MessageReceive,
                |s| {
                    set_msgs(s, "bc_msgs")
                        .into_iter()
                        .filter(|m| mtype(m) == "AckLd")
                        .map(|m| vec![m])
                        .collect()
                },
                move |s, ps| {
                    let m = &ps[0];
                    let l = fld(m, "mdest");
                    let j = fld(m, "msource");
                    if !is_alive(s, l) || pn(s, "zbState", l) != Value::str(LEADING) {
                        return None;
                    }
                    let s2 = set_remove(s, "bc_msgs", m);
                    let s2 = set_pn(&s2, "synced", l, pn(&s2, "synced", l).with_elem(node(j)));
                    // The leader adopts the new epoch durably when the
                    // first follower completes synchronization.
                    let epoch = fld(m, "mepoch");
                    Some(set_pn(&s2, "currentEpoch", l, Value::Int(epoch)))
                },
            ));
        }

        // ---------------- ClientRequest(l) ----------------
        {
            let cfg2 = cfg.clone();
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "ClientRequest",
                ActionClass::UserRequest,
                move |_s| servers.iter().map(|&i| vec![Value::Int(i)]).collect(),
                move |s, ps| {
                    let l = ps[0].expect_int();
                    let synced = pn(s, "synced", l);
                    let enabled = is_alive(s, l)
                        && pn(s, "zbState", l) == Value::str(LEADING)
                        && synced.cardinality() + 1 >= cfg2.quorum()
                        && counter(s, "clientRequests") < cfg2.client_request_limit
                        // One outstanding proposal at a time.
                        && last_zxid(&pn(s, "history", l))
                            <= pn(s, "lastCommitted", l).expect_int();
                    enabled.then(|| {
                        let datum = counter(s, "clientRequests") + 1;
                        let epoch = pn(s, "currentEpoch", l).expect_int();
                        let zxid = epoch * 100 + datum;
                        let entry = vrec! { zxid => zxid, value => datum };
                        let s2 = set_pn(s, "history", l, pn(s, "history", l).append(entry));
                        let s2 = set_pn(&s2, "acks", l, Value::set([node(l)]));
                        bump(&s2, "clientRequests")
                    })
                },
            ));
        }

        // ---------------- SendProposal(l, j) ----------------
        {
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "SendProposal",
                ActionClass::MessageSend,
                move |_s| {
                    let mut out = Vec::new();
                    for &l in &servers {
                        for &j in &servers {
                            if l != j {
                                out.push(vec![Value::Int(l), Value::Int(j)]);
                            }
                        }
                    }
                    out
                },
                move |s, ps| {
                    let (l, j) = (ps[0].expect_int(), ps[1].expect_int());
                    if !is_alive(s, l) || pn(s, "zbState", l) != Value::str(LEADING) {
                        return None;
                    }
                    if !pn(s, "synced", l).contains(&node(j)) {
                        return None;
                    }
                    let history = pn(s, "history", l);
                    let zxid = last_zxid(&history);
                    if zxid <= pn(s, "lastCommitted", l).expect_int() {
                        return None; // Nothing outstanding.
                    }
                    let entry = history.last().unwrap().clone();
                    let m = vrec! {
                        mtype => "Propose",
                        mentry => entry,
                        msource => l,
                        mdest => j,
                    };
                    (!s.expect("bc_msgs").contains(&m)).then(|| set_add(s, "bc_msgs", m))
                },
            ));
        }

        // ---------------- HandlePropose(m) ----------------
        {
            actions.push(ActionDef::with_params(
                "HandlePropose",
                ActionClass::MessageReceive,
                |s| {
                    set_msgs(s, "bc_msgs")
                        .into_iter()
                        .filter(|m| mtype(m) == "Propose")
                        .map(|m| vec![m])
                        .collect()
                },
                move |s, ps| {
                    let m = &ps[0];
                    let i = fld(m, "mdest");
                    let l = fld(m, "msource");
                    if !is_alive(s, i) || pn(s, "zbState", i) != Value::str(FOLLOWING) {
                        return None;
                    }
                    let entry = m.expect_field("mentry").clone();
                    let zxid = fld(&entry, "zxid");
                    let s2 = set_remove(s, "bc_msgs", m);
                    let s2 = if last_zxid(&pn(&s2, "history", i)) < zxid {
                        set_pn(&s2, "history", i, pn(&s2, "history", i).append(entry))
                    } else {
                        s2
                    };
                    let ack = vrec! {
                        mtype => "Ack",
                        mzxid => zxid,
                        msource => i,
                        mdest => l,
                    };
                    Some(set_add(&s2, "bc_msgs", ack))
                },
            ));
        }

        // ---------------- HandleAck(m) ----------------
        {
            actions.push(ActionDef::with_params(
                "HandleAck",
                ActionClass::MessageReceive,
                |s| {
                    set_msgs(s, "bc_msgs")
                        .into_iter()
                        .filter(|m| mtype(m) == "Ack")
                        .map(|m| vec![m])
                        .collect()
                },
                move |s, ps| {
                    let m = &ps[0];
                    let l = fld(m, "mdest");
                    let j = fld(m, "msource");
                    if !is_alive(s, l) || pn(s, "zbState", l) != Value::str(LEADING) {
                        return None;
                    }
                    let s2 = set_remove(s, "bc_msgs", m);
                    Some(set_pn(
                        &s2,
                        "acks",
                        l,
                        pn(&s2, "acks", l).with_elem(node(j)),
                    ))
                },
            ));
        }

        // ---------------- CommitProposal(l) ----------------
        {
            let cfg2 = cfg.clone();
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "CommitProposal",
                ActionClass::SingleNode,
                move |_s| servers.iter().map(|&i| vec![Value::Int(i)]).collect(),
                move |s, ps| {
                    let l = ps[0].expect_int();
                    if !is_alive(s, l) || pn(s, "zbState", l) != Value::str(LEADING) {
                        return None;
                    }
                    let zxid = last_zxid(&pn(s, "history", l));
                    if zxid <= pn(s, "lastCommitted", l).expect_int() {
                        return None;
                    }
                    if pn(s, "acks", l).cardinality() < cfg2.quorum() {
                        return None;
                    }
                    Some(set_pn(s, "lastCommitted", l, Value::Int(zxid)))
                },
            ));
        }

        // ---------------- SendCommit(l, j) / HandleCommit(m) --------
        {
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "SendCommit",
                ActionClass::MessageSend,
                move |_s| {
                    let mut out = Vec::new();
                    for &l in &servers {
                        for &j in &servers {
                            if l != j {
                                out.push(vec![Value::Int(l), Value::Int(j)]);
                            }
                        }
                    }
                    out
                },
                move |s, ps| {
                    let (l, j) = (ps[0].expect_int(), ps[1].expect_int());
                    if !is_alive(s, l) || pn(s, "zbState", l) != Value::str(LEADING) {
                        return None;
                    }
                    if !pn(s, "synced", l).contains(&node(j)) {
                        return None;
                    }
                    let committed = pn(s, "lastCommitted", l).expect_int();
                    if committed == 0 || pn(s, "lastCommitted", j).expect_int() >= committed {
                        return None;
                    }
                    let m = vrec! {
                        mtype => "Commit",
                        mzxid => committed,
                        msource => l,
                        mdest => j,
                    };
                    (!s.expect("bc_msgs").contains(&m)).then(|| set_add(s, "bc_msgs", m))
                },
            ));
            actions.push(ActionDef::with_params(
                "HandleCommit",
                ActionClass::MessageReceive,
                |s| {
                    set_msgs(s, "bc_msgs")
                        .into_iter()
                        .filter(|m| mtype(m) == "Commit")
                        .map(|m| vec![m])
                        .collect()
                },
                move |s, ps| {
                    let m = &ps[0];
                    let i = fld(m, "mdest");
                    if !is_alive(s, i) || pn(s, "zbState", i) != Value::str(FOLLOWING) {
                        return None;
                    }
                    let zxid = fld(m, "mzxid");
                    let s2 = set_remove(s, "bc_msgs", m);
                    let cur = pn(&s2, "lastCommitted", i).expect_int();
                    Some(set_pn(&s2, "lastCommitted", i, Value::Int(cur.max(zxid))))
                },
            ));
        }

        // ---------------- Restart(i) / Crash(i) ----------------
        {
            let cfg2 = cfg.clone();
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "Restart",
                ActionClass::ExternalFault,
                move |_s| servers.iter().map(|&i| vec![Value::Int(i)]).collect(),
                move |s, ps| {
                    let i = ps[0].expect_int();
                    let enabled = is_alive(s, i) && counter(s, "restartCount") < cfg2.restart_limit;
                    enabled.then(|| {
                        // acceptedEpoch, currentEpoch and history are
                        // durable; everything else resets.
                        let s = set_pn(s, "zbState", i, Value::str(LOOKING));
                        let s = set_pn(&s, "vote", i, Value::Nil);
                        let s = set_pn(&s, "voteTable", i, Value::fun([]));
                        let s = set_pn(&s, "leaderOf", i, Value::Nil);
                        let s = set_pn(&s, "synced", i, Value::empty_set());
                        let s = set_pn(&s, "epochAcks", i, Value::empty_set());
                        let s = set_pn(&s, "acks", i, Value::empty_set());
                        bump(&s, "restartCount")
                    })
                },
            ));
            let cfg3 = cfg.clone();
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "Crash",
                ActionClass::ExternalFault,
                move |_s| servers.iter().map(|&i| vec![Value::Int(i)]).collect(),
                move |s, ps| {
                    let i = ps[0].expect_int();
                    let enabled = is_alive(s, i) && counter(s, "crashCount") < cfg3.crash_limit;
                    enabled.then(|| {
                        let s = set_pn(s, "alive", i, Value::Bool(false));
                        bump(&s, "crashCount")
                    })
                },
            ));
        }

        actions
    }
}

/// ZAB's agreement invariant: committed prefixes agree pairwise.
pub fn commit_agreement() -> mocket_checker::Invariant {
    mocket_checker::Invariant::new("CommitAgreement", |s: &State| {
        let histories = s.expect("history");
        let commits = s.expect("lastCommitted");
        let (Value::Fun(histories), Value::Fun(commits)) = (histories, commits) else {
            return true;
        };
        let nodes: Vec<&Value> = histories.keys().collect();
        for (x, i) in nodes.iter().enumerate() {
            for j in nodes.iter().skip(x + 1) {
                let c = commits[*i].expect_int().min(commits[*j].expect_int());
                let hi = &histories[*i];
                let hj = &histories[*j];
                let n = hi.len().min(hj.len());
                for k in 1..=n {
                    let ei = hi.index(k).unwrap();
                    let ej = hj.index(k).unwrap();
                    if ei.expect_field("zxid").expect_int() <= c
                        && ej.expect_field("zxid").expect_int() <= c
                        && ei != ej
                    {
                        return false;
                    }
                }
            }
        }
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::successors;

    fn spec2() -> ZabSpec {
        ZabSpec::new(ZabSpecConfig::small(vec![1, 2]))
    }

    fn find<'a>(
        succ: &'a [(mocket_tla::ActionInstance, State)],
        name: &str,
    ) -> Vec<&'a (mocket_tla::ActionInstance, State)> {
        succ.iter().filter(|(a, _)| a.name == name).collect()
    }

    /// Drives the 2-node model to an elected, synced leader 2.
    fn elect_and_sync(spec: &ZabSpec) -> State {
        let mut s = spec.init_states().remove(0);
        for _ in 0..2 {
            let succ = successors(spec, &s);
            s = find(&succ, "StartElection")[0].1.clone();
        }
        // Node 2 sends its vote to node 1; node 1 adopts it and
        // rebroadcasts; node 2 collects the agreement.
        let succ = successors(spec, &s);
        s = find(&succ, "SendVote")
            .iter()
            .find(|(a, _)| a.params == vec![Value::Int(2), Value::Int(1)])
            .unwrap()
            .1
            .clone();
        let succ = successors(spec, &s);
        s = find(&succ, "HandleVote")[0].1.clone();
        assert_eq!(
            pn(&s, "vote", 1),
            vote(2, 0),
            "node 1 adopted node 2's vote"
        );
        let succ = successors(spec, &s);
        s = find(&succ, "SendVote")
            .iter()
            .find(|(a, _)| a.params == vec![Value::Int(1), Value::Int(2)])
            .unwrap()
            .1
            .clone();
        let succ = successors(spec, &s);
        s = find(&succ, "HandleVote")[0].1.clone();
        // Both decide.
        let succ = successors(spec, &s);
        s = find(&succ, "DecideLeader")
            .iter()
            .find(|(a, _)| a.params[0] == Value::Int(1))
            .unwrap()
            .1
            .clone();
        let succ = successors(spec, &s);
        s = find(&succ, "DecideLeader")[0].1.clone();
        assert_eq!(pn(&s, "zbState", 2), Value::str(LEADING));
        assert_eq!(pn(&s, "zbState", 1), Value::str(FOLLOWING));
        // Sync: NEWEPOCH -> EPOCHACK -> NEWLEADER -> ACKLD.
        for action in [
            "SendNewEpoch",
            "HandleNewEpoch",
            "HandleEpochAck",
            "HandleNewLeader",
            "HandleAckLd",
        ] {
            let succ = successors(spec, &s);
            let found = find(&succ, action);
            assert!(!found.is_empty(), "{action} should be enabled");
            s = found[0].1.clone();
        }
        s
    }

    #[test]
    fn election_and_sync_complete() {
        let spec = spec2();
        let s = elect_and_sync(&spec);
        assert_eq!(pn(&s, "acceptedEpoch", 1), Value::Int(1));
        assert_eq!(pn(&s, "currentEpoch", 1), Value::Int(1));
        assert_eq!(pn(&s, "currentEpoch", 2), Value::Int(1));
        assert!(pn(&s, "synced", 2).contains(&node(1)));
    }

    #[test]
    fn broadcast_commits_a_request() {
        let spec = spec2();
        let mut s = elect_and_sync(&spec);
        for action in [
            "ClientRequest",
            "SendProposal",
            "HandlePropose",
            "HandleAck",
            "CommitProposal",
            "SendCommit",
            "HandleCommit",
        ] {
            let succ = successors(&spec, &s);
            let found = find(&succ, action);
            assert!(!found.is_empty(), "{action} should be enabled");
            s = found[0].1.clone();
        }
        assert_eq!(pn(&s, "lastCommitted", 2), Value::Int(101));
        assert_eq!(pn(&s, "lastCommitted", 1), Value::Int(101));
        assert_eq!(pn(&s, "history", 1).len(), 1);
    }

    #[test]
    fn restart_keeps_durable_epochs() {
        let mut cfg = ZabSpecConfig::small(vec![1, 2]);
        cfg.restart_limit = 1;
        let spec = ZabSpec::new(cfg);
        let s = elect_and_sync(&spec);
        let succ = successors(&spec, &s);
        let restarted = find(&succ, "Restart")
            .iter()
            .find(|(a, _)| a.params[0] == Value::Int(1))
            .unwrap()
            .1
            .clone();
        assert_eq!(pn(&restarted, "zbState", 1), Value::str(LOOKING));
        assert_eq!(pn(&restarted, "vote", 1), Value::Nil);
        assert_eq!(pn(&restarted, "acceptedEpoch", 1), Value::Int(1));
        assert_eq!(pn(&restarted, "currentEpoch", 1), Value::Int(1));
        // A restarted node can start a new election.
        let succ = successors(&spec, &restarted);
        assert!(find(&succ, "StartElection")
            .iter()
            .any(|(a, _)| a.params[0] == Value::Int(1)));
    }

    #[test]
    fn model_checks_clean_with_agreement_invariant() {
        use mocket_checker::ModelChecker;
        use std::sync::Arc;
        let r = ModelChecker::new(Arc::new(spec2()))
            .invariant(commit_agreement())
            .max_states(100_000)
            .run();
        assert!(r.ok(), "{:?}", r.violation.map(|v| v.to_string()));
        assert!(!r.stats.truncated, "2-node model must be finite");
        assert!(r.stats.distinct_states > 100);
    }

    #[test]
    fn table1_scale() {
        let spec = spec2();
        assert_eq!(spec.variables().len(), 17);
        assert_eq!(spec.actions().len(), 18);
        let msg_vars = spec
            .variables()
            .iter()
            .filter(|v| v.class == VarClass::MessageRelated)
            .count();
        assert_eq!(msg_vars, 2, "le_msgs and bc_msgs (§4.1.1)");
    }
}
