//! The Raft consensus specification.
//!
//! Modeled after the official `raft.tla` the paper tests against,
//! adapted — as the authors did (§5.2) — to the implementation choices
//! of the two target systems:
//!
//! * the **Xraft-like** (asynchronous) variant keeps the
//!   `DropMessage`/`DuplicateMessage` fault actions and appends a NoOp
//!   entry on `BecomeLeader`;
//! * the **Raft-java-like** (synchronous) variant removes the two
//!   message faults and the NoOp.
//!
//! The two official-specification bugs of Figures 10 and 11 are
//! reproducible behind flags: [`RaftSpecConfig::bug_update_term_independent`]
//! makes `UpdateTerm` an independent action that does not consume its
//! message, and [`RaftSpecConfig::bug_missing_reply`] removes the
//! `Reply` from `HandleAppendEntriesRequest`'s return-to-follower
//! branch.
//!
//! Messages live in a *bag* (`Fun(message → count)`), like the
//! official spec's multiset — duplication needs multiplicity.

use mocket_tla::{vrec, ActionClass, ActionDef, Spec, State, Value, VarClass, VarDef};

/// Role constants.
pub const FOLLOWER: &str = "Follower";
/// Candidate role.
pub const CANDIDATE: &str = "Candidate";
/// Leader role.
pub const LEADER: &str = "Leader";
/// The NoOp log entry payload written by an Xraft leader on election.
pub const NOOP: &str = "NoOp";

/// Model configuration for [`RaftSpec`].
#[derive(Debug, Clone)]
pub struct RaftSpecConfig {
    /// Server ids (the `Server` constant).
    pub servers: Vec<i64>,
    /// Bound on `currentTerm` (state-space constraint baked into the
    /// `Timeout` guard).
    pub max_term: i64,
    /// `ClientRequestLimit` (action counter bound).
    pub client_request_limit: i64,
    /// Bound on `Restart` occurrences.
    pub restart_limit: i64,
    /// Bound on `Crash` occurrences.
    pub crash_limit: i64,
    /// Bound on `DropMessage` occurrences (async variant only).
    pub drop_limit: i64,
    /// Bound on `DuplicateMessage` occurrences (async variant only).
    pub dup_limit: i64,
    /// Bound on the total number of in-flight messages (multiplicity
    /// counted) — the standard TLC state-space constraint.
    pub max_in_flight: i64,
    /// Servers allowed to time out and run for election; `None` means
    /// all. Restricting candidates is a symmetry-style reduction used
    /// to keep targeted models small.
    pub candidates: Option<Vec<i64>>,
    /// Synchronous communication: removes `DropMessage` and
    /// `DuplicateMessage` exactly as §5.2 does for Raft-java.
    pub sync_comm: bool,
    /// The leader appends a NoOp entry on election (Xraft behavior).
    pub leader_noop: bool,
    /// Specification bug #1 (Figure 10): `UpdateTerm` is an
    /// independent action that does not consume its message.
    pub bug_update_term_independent: bool,
    /// Specification bug #2 (Figure 11): the return-to-follower branch
    /// of `HandleAppendEntriesRequest` neither replies nor consumes.
    pub bug_missing_reply: bool,
}

impl RaftSpecConfig {
    /// The Xraft-like (asynchronous) model.
    pub fn xraft(servers: Vec<i64>) -> Self {
        RaftSpecConfig {
            servers,
            max_term: 2,
            client_request_limit: 1,
            restart_limit: 1,
            crash_limit: 0,
            drop_limit: 0,
            dup_limit: 1,
            max_in_flight: 2,
            candidates: None,
            sync_comm: false,
            leader_noop: true,
            bug_update_term_independent: false,
            bug_missing_reply: false,
        }
    }

    /// The Raft-java-like (synchronous) model.
    pub fn raft_java(servers: Vec<i64>) -> Self {
        RaftSpecConfig {
            servers,
            max_term: 3,
            client_request_limit: 1,
            restart_limit: 0,
            crash_limit: 0,
            drop_limit: 0,
            dup_limit: 0,
            max_in_flight: 2,
            candidates: None,
            sync_comm: true,
            leader_noop: false,
            bug_update_term_independent: false,
            bug_missing_reply: false,
        }
    }

    /// The official specification with its two bugs (what §6.1's
    /// spec-bug rows test against Raft-java).
    pub fn official_buggy(servers: Vec<i64>) -> Self {
        let mut cfg = Self::raft_java(servers);
        cfg.bug_update_term_independent = true;
        cfg.bug_missing_reply = true;
        cfg
    }

    fn quorum(&self) -> usize {
        self.servers.len() / 2 + 1
    }
}

/// The Raft specification.
#[derive(Debug, Clone)]
pub struct RaftSpec {
    /// Model configuration.
    pub config: RaftSpecConfig,
}

impl RaftSpec {
    /// Creates the spec for a configuration.
    pub fn new(config: RaftSpecConfig) -> Self {
        RaftSpec { config }
    }
}

// ----------------------------------------------------------------------
// State helpers.
// ----------------------------------------------------------------------

fn node(i: i64) -> Value {
    Value::Int(i)
}

fn per_node(s: &State, var: &str, i: i64) -> Value {
    s.expect(var).expect_apply(&node(i)).clone()
}

fn set_per_node(s: &State, var: &str, i: i64, v: Value) -> State {
    s.with(var, s.expect(var).except(&node(i), v))
}

fn last_term(log: &Value) -> i64 {
    log.last()
        .map(|e| e.expect_field("term").expect_int())
        .unwrap_or(0)
}

fn is_alive(s: &State, i: i64) -> bool {
    per_node(s, "alive", i) == Value::Bool(true)
}

fn counter(s: &State, name: &str) -> i64 {
    s.expect(name).expect_int()
}

fn bump(s: &State, name: &str) -> State {
    s.with(name, Value::Int(counter(s, name) + 1))
}

// ----------------------------------------------------------------------
// Message bag helpers.
// ----------------------------------------------------------------------

fn bag_count(s: &State, m: &Value) -> i64 {
    s.expect("messages")
        .apply(m)
        .map(|c| c.expect_int())
        .unwrap_or(0)
}

fn bag_add(s: &State, m: Value) -> State {
    let n = bag_count(s, &m);
    s.with(
        "messages",
        s.expect("messages").except(&m, Value::Int(n + 1)),
    )
}

fn bag_remove(s: &State, m: &Value) -> State {
    let n = bag_count(s, m);
    let messages = s.expect("messages");
    let next = if n <= 1 {
        match messages {
            Value::Fun(f) => {
                let mut f = f.clone();
                f.remove(m);
                Value::Fun(f)
            }
            _ => unreachable!("messages is a bag"),
        }
    } else {
        messages.except(m, Value::Int(n - 1))
    };
    s.with("messages", next)
}

/// Every distinct message in the bag.
fn bag_messages(s: &State) -> Vec<Value> {
    match s.expect("messages") {
        Value::Fun(f) => f.keys().cloned().collect(),
        _ => Vec::new(),
    }
}

/// Total multiplicity across the bag.
fn bag_total(s: &State) -> i64 {
    match s.expect("messages") {
        Value::Fun(f) => f.values().map(|c| c.expect_int()).sum(),
        _ => 0,
    }
}

fn msg_field_int(m: &Value, f: &str) -> i64 {
    m.expect_field(f).expect_int()
}

fn msg_type(m: &Value) -> &str {
    m.expect_field("mtype").expect_str()
}

// ----------------------------------------------------------------------
// The specification.
// ----------------------------------------------------------------------

impl Spec for RaftSpec {
    fn name(&self) -> &str {
        if self.config.sync_comm {
            "RaftSync"
        } else {
            "RaftAsync"
        }
    }

    fn variables(&self) -> Vec<VarDef> {
        vec![
            VarDef::new("messages", VarClass::MessageRelated),
            VarDef::new("state", VarClass::StateRelated),
            VarDef::new("currentTerm", VarClass::StateRelated),
            VarDef::new("votedFor", VarClass::StateRelated),
            VarDef::new("votesGranted", VarClass::StateRelated),
            VarDef::new("log", VarClass::StateRelated),
            VarDef::new("commitIndex", VarClass::StateRelated),
            VarDef::new("nextIndex", VarClass::StateRelated),
            VarDef::new("matchIndex", VarClass::StateRelated),
            // `alive` only guards actions of crashed nodes.
            VarDef::new("alive", VarClass::Auxiliary),
            VarDef::new("clientRequests", VarClass::ActionCounter),
            VarDef::new("restartCount", VarClass::ActionCounter),
            VarDef::new("crashCount", VarClass::ActionCounter),
            VarDef::new("dropCount", VarClass::ActionCounter),
            VarDef::new("dupCount", VarClass::ActionCounter),
        ]
    }

    fn constants(&self) -> Vec<(String, Value)> {
        vec![
            (
                "Server".into(),
                Value::set(self.config.servers.iter().map(|&i| Value::Int(i))),
            ),
            ("Follower".into(), Value::str(FOLLOWER)),
            ("Candidate".into(), Value::str(CANDIDATE)),
            ("Leader".into(), Value::str(LEADER)),
            ("Nil".into(), Value::Nil),
            ("MaxTerm".into(), Value::Int(self.config.max_term)),
            (
                "ClientRequestLimit".into(),
                Value::Int(self.config.client_request_limit),
            ),
        ]
    }

    fn init_states(&self) -> Vec<State> {
        let servers: Vec<Value> = self.config.servers.iter().map(|&i| Value::Int(i)).collect();
        let one_per_peer = Value::const_fun(servers.clone(), Value::Int(1));
        let zero_per_peer = Value::const_fun(servers.clone(), Value::Int(0));
        vec![State::from_pairs([
            ("messages", Value::fun([])),
            (
                "state",
                Value::const_fun(servers.clone(), Value::str(FOLLOWER)),
            ),
            (
                "currentTerm",
                Value::const_fun(servers.clone(), Value::Int(1)),
            ),
            ("votedFor", Value::const_fun(servers.clone(), Value::Nil)),
            (
                "votesGranted",
                Value::const_fun(servers.clone(), Value::empty_set()),
            ),
            ("log", Value::const_fun(servers.clone(), Value::empty_seq())),
            (
                "commitIndex",
                Value::const_fun(servers.clone(), Value::Int(0)),
            ),
            ("nextIndex", Value::const_fun(servers.clone(), one_per_peer)),
            (
                "matchIndex",
                Value::const_fun(servers.clone(), zero_per_peer),
            ),
            ("alive", Value::const_fun(servers, Value::Bool(true))),
            ("clientRequests", Value::Int(0)),
            ("restartCount", Value::Int(0)),
            ("crashCount", Value::Int(0)),
            ("dropCount", Value::Int(0)),
            ("dupCount", Value::Int(0)),
        ])]
    }

    fn actions(&self) -> Vec<ActionDef> {
        let mut actions = Vec::new();
        let cfg = self.config.clone();

        // ---------------- Timeout(i) ----------------
        {
            let cfg = cfg.clone();
            let servers = cfg
                .candidates
                .clone()
                .unwrap_or_else(|| cfg.servers.clone());
            actions.push(ActionDef::with_params(
                "Timeout",
                ActionClass::SingleNode,
                move |_s| servers.iter().map(|&i| vec![Value::Int(i)]).collect(),
                move |s, ps| {
                    let i = ps[0].expect_int();
                    let role = per_node(s, "state", i);
                    let enabled = is_alive(s, i)
                        && (role == Value::str(FOLLOWER) || role == Value::str(CANDIDATE))
                        && per_node(s, "currentTerm", i).expect_int() < cfg.max_term;
                    enabled.then(|| {
                        let term = per_node(s, "currentTerm", i).expect_int();
                        let s = set_per_node(s, "state", i, Value::str(CANDIDATE));
                        let s = set_per_node(&s, "currentTerm", i, Value::Int(term + 1));
                        let s = set_per_node(&s, "votedFor", i, Value::Int(i));
                        set_per_node(&s, "votesGranted", i, Value::set([Value::Int(i)]))
                    })
                },
            ));
        }

        // ---------------- RequestVote(i, j) ----------------
        {
            let servers = cfg.servers.clone();
            let max_in_flight = cfg.max_in_flight;
            actions.push(ActionDef::with_params(
                "RequestVote",
                ActionClass::MessageSend,
                move |_s| {
                    let mut out = Vec::new();
                    for &i in &servers {
                        for &j in &servers {
                            if i != j {
                                out.push(vec![Value::Int(i), Value::Int(j)]);
                            }
                        }
                    }
                    out
                },
                move |s, ps| {
                    let (i, j) = (ps[0].expect_int(), ps[1].expect_int());
                    if !is_alive(s, i) || per_node(s, "state", i) != Value::str(CANDIDATE) {
                        return None;
                    }
                    if per_node(s, "votesGranted", i).contains(&node(j)) {
                        return None;
                    }
                    let log = per_node(s, "log", i);
                    let m = vrec! {
                        mtype => "RequestVoteRequest",
                        mterm => per_node(s, "currentTerm", i).expect_int(),
                        mlastLogTerm => last_term(&log),
                        mlastLogIndex => log.len() as i64,
                        msource => i,
                        mdest => j,
                    };
                    // Do not refill an identical in-flight request,
                    // and respect the in-flight bound.
                    (bag_count(s, &m) == 0 && bag_total(s) < max_in_flight).then(|| bag_add(s, m))
                },
            ));
        }

        // ---------------- UpdateTerm(m) — only under spec bug #1 ----
        if cfg.bug_update_term_independent {
            actions.push(ActionDef::with_params(
                "UpdateTerm",
                ActionClass::MessageReceive,
                |s| bag_messages(s).into_iter().map(|m| vec![m]).collect(),
                move |s, ps| {
                    let m = &ps[0];
                    let i = msg_field_int(m, "mdest");
                    let enabled = is_alive(s, i)
                        && msg_field_int(m, "mterm") > per_node(s, "currentTerm", i).expect_int();
                    enabled.then(|| {
                        // The buggy official spec: update the term,
                        // leave the message in flight (Figure 10).
                        let s = set_per_node(
                            s,
                            "currentTerm",
                            i,
                            Value::Int(msg_field_int(m, "mterm")),
                        );
                        let s = set_per_node(&s, "state", i, Value::str(FOLLOWER));
                        set_per_node(&s, "votedFor", i, Value::Nil)
                    })
                },
            ));
        }

        // ---------------- HandleRequestVoteRequest(m) ----------------
        {
            let cfg = cfg.clone();
            actions.push(ActionDef::with_params(
                "HandleRequestVoteRequest",
                ActionClass::MessageReceive,
                |s| {
                    bag_messages(s)
                        .into_iter()
                        .filter(|m| msg_type(m) == "RequestVoteRequest")
                        .map(|m| vec![m])
                        .collect()
                },
                move |s, ps| {
                    let m = &ps[0];
                    let i = msg_field_int(m, "mdest");
                    let j = msg_field_int(m, "msource");
                    if !is_alive(s, i) {
                        return None;
                    }
                    let mterm = msg_field_int(m, "mterm");
                    let my_term = per_node(s, "currentTerm", i).expect_int();
                    if cfg.bug_update_term_independent && mterm > my_term {
                        // Under the buggy spec the independent
                        // UpdateTerm must run first.
                        return None;
                    }
                    // Fold UpdateTerm into the handler (the fix for
                    // spec bug #1).
                    let (s, my_term) = if mterm > my_term {
                        let s = set_per_node(s, "currentTerm", i, Value::Int(mterm));
                        let s = set_per_node(&s, "state", i, Value::str(FOLLOWER));
                        let s = set_per_node(&s, "votedFor", i, Value::Nil);
                        (s, mterm)
                    } else {
                        (s.clone(), my_term)
                    };
                    let log = per_node(&s, "log", i);
                    let log_ok = msg_field_int(m, "mlastLogTerm") > last_term(&log)
                        || (msg_field_int(m, "mlastLogTerm") == last_term(&log)
                            && msg_field_int(m, "mlastLogIndex") >= log.len() as i64);
                    let voted_for = per_node(&s, "votedFor", i);
                    let grant = mterm == my_term
                        && log_ok
                        && (voted_for == Value::Nil || voted_for == node(j));
                    let s = bag_remove(&s, m);
                    Some(if grant {
                        let s = set_per_node(&s, "votedFor", i, node(j));
                        bag_add(
                            &s,
                            vrec! {
                                mtype => "RequestVoteResponse",
                                mterm => my_term,
                                mvoteGranted => true,
                                msource => i,
                                mdest => j,
                            },
                        )
                    } else {
                        // Implementation choice shared by both
                        // targets: no negative reply.
                        s
                    })
                },
            ));
        }

        // ---------------- HandleRequestVoteResponse(m) ----------------
        {
            actions.push(ActionDef::with_params(
                "HandleRequestVoteResponse",
                ActionClass::MessageReceive,
                |s| {
                    bag_messages(s)
                        .into_iter()
                        .filter(|m| msg_type(m) == "RequestVoteResponse")
                        .map(|m| vec![m])
                        .collect()
                },
                move |s, ps| {
                    let m = &ps[0];
                    let i = msg_field_int(m, "mdest");
                    let j = msg_field_int(m, "msource");
                    if !is_alive(s, i) {
                        return None;
                    }
                    let s2 = bag_remove(s, m);
                    let granted = m.expect_field("mvoteGranted") == &Value::Bool(true);
                    let relevant = per_node(s, "state", i) == Value::str(CANDIDATE)
                        && msg_field_int(m, "mterm") == per_node(s, "currentTerm", i).expect_int();
                    Some(if granted && relevant {
                        let votes = per_node(&s2, "votesGranted", i).with_elem(node(j));
                        set_per_node(&s2, "votesGranted", i, votes)
                    } else {
                        s2
                    })
                },
            ));
        }

        // ---------------- BecomeLeader(i) ----------------
        {
            let cfg = cfg.clone();
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "BecomeLeader",
                ActionClass::SingleNode,
                move |_s| servers.iter().map(|&i| vec![Value::Int(i)]).collect(),
                move |s, ps| {
                    let i = ps[0].expect_int();
                    let enabled = is_alive(s, i)
                        && per_node(s, "state", i) == Value::str(CANDIDATE)
                        && per_node(s, "votesGranted", i).cardinality() >= cfg.quorum();
                    enabled.then(|| {
                        let s2 = set_per_node(s, "state", i, Value::str(LEADER));
                        let log = per_node(&s2, "log", i);
                        // nextIndex points at the first entry the
                        // followers may be missing: past the log as it
                        // was *before* the NoOp, so the NoOp itself is
                        // replicated.
                        let next_val = log.len() as i64 + 1;
                        let s2 = if cfg.leader_noop {
                            let entry = vrec! {
                                term => per_node(&s2, "currentTerm", i).expect_int(),
                                value => NOOP,
                            };
                            set_per_node(&s2, "log", i, log.append(entry))
                        } else {
                            s2
                        };
                        let next = Value::const_fun(
                            cfg.servers.iter().map(|&j| Value::Int(j)),
                            Value::Int(next_val),
                        );
                        let zero = Value::const_fun(
                            cfg.servers.iter().map(|&j| Value::Int(j)),
                            Value::Int(0),
                        );
                        let s2 = set_per_node(&s2, "nextIndex", i, next);
                        set_per_node(&s2, "matchIndex", i, zero)
                    })
                },
            ));
        }

        // ---------------- ClientRequest(i) ----------------
        {
            let cfg = cfg.clone();
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "ClientRequest",
                ActionClass::UserRequest,
                move |_s| servers.iter().map(|&i| vec![Value::Int(i)]).collect(),
                move |s, ps| {
                    let i = ps[0].expect_int();
                    let enabled = is_alive(s, i)
                        && per_node(s, "state", i) == Value::str(LEADER)
                        && counter(s, "clientRequests") < cfg.client_request_limit;
                    enabled.then(|| {
                        let datum = counter(s, "clientRequests") + 1;
                        let entry = vrec! {
                            term => per_node(s, "currentTerm", i).expect_int(),
                            value => datum,
                        };
                        let log = per_node(s, "log", i).append(entry);
                        let s = set_per_node(s, "log", i, log);
                        bump(&s, "clientRequests")
                    })
                },
            ));
        }

        // ---------------- AppendEntries(i, j) ----------------
        {
            let servers = cfg.servers.clone();
            let max_in_flight = cfg.max_in_flight;
            actions.push(ActionDef::with_params(
                "AppendEntries",
                ActionClass::MessageSend,
                move |_s| {
                    let mut out = Vec::new();
                    for &i in &servers {
                        for &j in &servers {
                            if i != j {
                                out.push(vec![Value::Int(i), Value::Int(j)]);
                            }
                        }
                    }
                    out
                },
                move |s, ps| {
                    let (i, j) = (ps[0].expect_int(), ps[1].expect_int());
                    if !is_alive(s, i) || per_node(s, "state", i) != Value::str(LEADER) {
                        return None;
                    }
                    let log = per_node(s, "log", i);
                    let next_index = per_node(s, "nextIndex", i)
                        .expect_apply(&node(j))
                        .expect_int();
                    let match_index = per_node(s, "matchIndex", i)
                        .expect_apply(&node(j))
                        .expect_int();
                    let commit = per_node(s, "commitIndex", i).expect_int();
                    let has_entries = log.len() as i64 >= next_index;
                    // Send only when there is something new to say:
                    // fresh entries or a commit index to propagate.
                    if !has_entries && commit <= match_index {
                        return None;
                    }
                    let prev_index = next_index - 1;
                    let prev_term = if prev_index >= 1 {
                        log.index(prev_index as usize)
                            .map(|e| e.expect_field("term").expect_int())
                            .unwrap_or(0)
                    } else {
                        0
                    };
                    let entries: Vec<Value> = if has_entries {
                        vec![log.index(next_index as usize).unwrap().clone()]
                    } else {
                        Vec::new()
                    };
                    let m = vrec! {
                        mtype => "AppendEntriesRequest",
                        mterm => per_node(s, "currentTerm", i).expect_int(),
                        mprevLogIndex => prev_index,
                        mprevLogTerm => prev_term,
                        mentries => Value::seq(entries.clone()),
                        mcommitIndex => commit.min(prev_index + entries.len() as i64),
                        msource => i,
                        mdest => j,
                    };
                    (bag_count(s, &m) == 0 && bag_total(s) < max_in_flight).then(|| bag_add(s, m))
                },
            ));
        }

        // ---------------- HandleAppendEntriesRequest(m) ----------------
        {
            let cfg = cfg.clone();
            actions.push(ActionDef::with_params(
                "HandleAppendEntriesRequest",
                ActionClass::MessageReceive,
                |s| {
                    bag_messages(s)
                        .into_iter()
                        .filter(|m| msg_type(m) == "AppendEntriesRequest")
                        .map(|m| vec![m])
                        .collect()
                },
                move |s, ps| {
                    let m = &ps[0];
                    let i = msg_field_int(m, "mdest");
                    let j = msg_field_int(m, "msource");
                    if !is_alive(s, i) {
                        return None;
                    }
                    let mterm = msg_field_int(m, "mterm");
                    let my_term = per_node(s, "currentTerm", i).expect_int();
                    if cfg.bug_update_term_independent && mterm > my_term {
                        return None;
                    }
                    // Fold UpdateTerm (fixed-spec behavior).
                    let (s, my_term) = if mterm > my_term {
                        let s = set_per_node(s, "currentTerm", i, Value::Int(mterm));
                        let s = set_per_node(&s, "state", i, Value::str(FOLLOWER));
                        let s = set_per_node(&s, "votedFor", i, Value::Nil);
                        (s, mterm)
                    } else {
                        (s.clone(), my_term)
                    };

                    let role = per_node(&s, "state", i);
                    if mterm == my_term && role == Value::str(CANDIDATE) {
                        // Return to follower. Correct spec: fall
                        // through and handle the request in the same
                        // step. Buggy spec (Figure 11): only the state
                        // change — no reply, message left in flight.
                        let s = set_per_node(&s, "state", i, Value::str(FOLLOWER));
                        if cfg.bug_missing_reply {
                            return Some(s);
                        }
                        return Some(accept_or_reject(&s, m, i, j, mterm, my_term));
                    }
                    if role == Value::str(LEADER) && mterm == my_term {
                        // Two leaders in one term cannot happen in a
                        // correct spec; treat as no-op consume.
                        return Some(bag_remove(&s, m));
                    }
                    Some(accept_or_reject(&s, m, i, j, mterm, my_term))
                },
            ));
        }

        // ---------------- HandleAppendEntriesResponse(m) ----------------
        {
            actions.push(ActionDef::with_params(
                "HandleAppendEntriesResponse",
                ActionClass::MessageReceive,
                |s| {
                    bag_messages(s)
                        .into_iter()
                        .filter(|m| msg_type(m) == "AppendEntriesResponse")
                        .map(|m| vec![m])
                        .collect()
                },
                move |s, ps| {
                    let m = &ps[0];
                    let i = msg_field_int(m, "mdest");
                    let j = msg_field_int(m, "msource");
                    if !is_alive(s, i) {
                        return None;
                    }
                    let s2 = bag_remove(s, m);
                    let relevant = per_node(s, "state", i) == Value::str(LEADER)
                        && msg_field_int(m, "mterm") == per_node(s, "currentTerm", i).expect_int();
                    if !relevant {
                        return Some(s2);
                    }
                    let success = m.expect_field("msuccess") == &Value::Bool(true);
                    Some(if success {
                        let mmatch = msg_field_int(m, "mmatchIndex");
                        let ni =
                            per_node(&s2, "nextIndex", i).except(&node(j), Value::Int(mmatch + 1));
                        let mi =
                            per_node(&s2, "matchIndex", i).except(&node(j), Value::Int(mmatch));
                        let s2 = set_per_node(&s2, "nextIndex", i, ni);
                        set_per_node(&s2, "matchIndex", i, mi)
                    } else {
                        let cur = per_node(&s2, "nextIndex", i)
                            .expect_apply(&node(j))
                            .expect_int();
                        let ni = per_node(&s2, "nextIndex", i)
                            .except(&node(j), Value::Int((cur - 1).max(1)));
                        set_per_node(&s2, "nextIndex", i, ni)
                    })
                },
            ));
        }

        // ---------------- AdvanceCommitIndex(i) ----------------
        {
            let cfg = cfg.clone();
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "AdvanceCommitIndex",
                ActionClass::SingleNode,
                move |_s| servers.iter().map(|&i| vec![Value::Int(i)]).collect(),
                move |s, ps| {
                    let i = ps[0].expect_int();
                    if !is_alive(s, i) || per_node(s, "state", i) != Value::str(LEADER) {
                        return None;
                    }
                    let log = per_node(s, "log", i);
                    let my_term = per_node(s, "currentTerm", i).expect_int();
                    let commit = per_node(s, "commitIndex", i).expect_int();
                    let match_index = per_node(s, "matchIndex", i);
                    let mut best = commit;
                    for n in (commit + 1)..=(log.len() as i64) {
                        let entry_term = log
                            .index(n as usize)
                            .unwrap()
                            .expect_field("term")
                            .expect_int();
                        if entry_term != my_term {
                            continue;
                        }
                        let acks = 1 + cfg
                            .servers
                            .iter()
                            .filter(|&&j| {
                                j != i && match_index.expect_apply(&node(j)).expect_int() >= n
                            })
                            .count();
                        if acks >= cfg.quorum() {
                            best = n;
                        }
                    }
                    (best > commit).then(|| set_per_node(s, "commitIndex", i, Value::Int(best)))
                },
            ));
        }

        // ---------------- Restart(i) ----------------
        {
            let cfg = cfg.clone();
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "Restart",
                ActionClass::ExternalFault,
                move |_s| servers.iter().map(|&i| vec![Value::Int(i)]).collect(),
                move |s, ps| {
                    let i = ps[0].expect_int();
                    let enabled = is_alive(s, i) && counter(s, "restartCount") < cfg.restart_limit;
                    enabled.then(|| {
                        // currentTerm, votedFor and log are persisted;
                        // everything else is volatile.
                        let s = set_per_node(s, "state", i, Value::str(FOLLOWER));
                        let s = set_per_node(&s, "votesGranted", i, Value::empty_set());
                        let s = set_per_node(&s, "commitIndex", i, Value::Int(0));
                        let s = set_per_node(
                            &s,
                            "nextIndex",
                            i,
                            Value::const_fun(
                                cfg.servers.iter().map(|&j| Value::Int(j)),
                                Value::Int(1),
                            ),
                        );
                        let s = set_per_node(
                            &s,
                            "matchIndex",
                            i,
                            Value::const_fun(
                                cfg.servers.iter().map(|&j| Value::Int(j)),
                                Value::Int(0),
                            ),
                        );
                        bump(&s, "restartCount")
                    })
                },
            ));
        }

        // ---------------- Crash(i) ----------------
        {
            let cfg = cfg.clone();
            let servers = cfg.servers.clone();
            actions.push(ActionDef::with_params(
                "Crash",
                ActionClass::ExternalFault,
                move |_s| servers.iter().map(|&i| vec![Value::Int(i)]).collect(),
                move |s, ps| {
                    let i = ps[0].expect_int();
                    let enabled = is_alive(s, i) && counter(s, "crashCount") < cfg.crash_limit;
                    enabled.then(|| {
                        let s = set_per_node(s, "alive", i, Value::Bool(false));
                        bump(&s, "crashCount")
                    })
                },
            ));
        }

        // ---------------- DropMessage(m) / DuplicateMessage(m) --------
        if !cfg.sync_comm {
            let drop_limit = cfg.drop_limit;
            actions.push(ActionDef::with_params(
                "DropMessage",
                ActionClass::ExternalFault,
                |s| bag_messages(s).into_iter().map(|m| vec![m]).collect(),
                move |s, ps| {
                    (counter(s, "dropCount") < drop_limit).then(|| {
                        let s = bag_remove(s, &ps[0]);
                        bump(&s, "dropCount")
                    })
                },
            ));
            let dup_limit = cfg.dup_limit;
            actions.push(ActionDef::with_params(
                "DuplicateMessage",
                ActionClass::ExternalFault,
                |s| bag_messages(s).into_iter().map(|m| vec![m]).collect(),
                move |s, ps| {
                    let m = &ps[0];
                    let enabled = counter(s, "dupCount") < dup_limit && bag_count(s, m) == 1;
                    enabled.then(|| {
                        let s = bag_add(s, m.clone());
                        bump(&s, "dupCount")
                    })
                },
            ));
        }

        actions
    }
}

/// The reject/accept tail of `HandleAppendEntriesRequest`, shared by
/// the follower path and the (fixed) return-to-follower path.
fn accept_or_reject(s: &State, m: &Value, i: i64, j: i64, mterm: i64, my_term: i64) -> State {
    let s2 = bag_remove(s, m);
    if mterm < my_term {
        // Reject stale request.
        return bag_add(
            &s2,
            vrec! {
                mtype => "AppendEntriesResponse",
                mterm => my_term,
                msuccess => false,
                mmatchIndex => 0i64,
                msource => i,
                mdest => j,
            },
        );
    }
    let log = per_node(&s2, "log", i);
    let prev_index = msg_field_int(m, "mprevLogIndex");
    let prev_term = msg_field_int(m, "mprevLogTerm");
    let log_ok = prev_index == 0
        || (prev_index <= log.len() as i64
            && log
                .index(prev_index as usize)
                .map(|e| e.expect_field("term").expect_int())
                == Some(prev_term));
    if !log_ok {
        return bag_add(
            &s2,
            vrec! {
                mtype => "AppendEntriesResponse",
                mterm => my_term,
                msuccess => false,
                mmatchIndex => 0i64,
                msource => i,
                mdest => j,
            },
        );
    }
    // Accept: truncate any conflicting suffix, then append.
    let entries = m.expect_field("mentries").clone();
    let new_log = if entries.is_empty() {
        log.clone()
    } else {
        let first_new = entries.index(1).unwrap();
        let existing = log.index(prev_index as usize + 1);
        if existing.map(|e| e.expect_field("term")) == Some(first_new.expect_field("term")) {
            // Already have it: idempotent.
            log.clone()
        } else {
            let mut v: Vec<Value> = log.as_seq().unwrap()[..prev_index as usize].to_vec();
            v.extend(entries.as_seq().unwrap().iter().cloned());
            Value::seq(v)
        }
    };
    let match_len = prev_index + entries.len() as i64;
    let mcommit = msg_field_int(m, "mcommitIndex");
    let commit = per_node(&s2, "commitIndex", i)
        .expect_int()
        .max(mcommit.min(new_log.len() as i64));
    let s2 = set_per_node(&s2, "log", i, new_log);
    let s2 = set_per_node(&s2, "commitIndex", i, Value::Int(commit));
    bag_add(
        &s2,
        vrec! {
            mtype => "AppendEntriesResponse",
            mterm => my_term,
            msuccess => true,
            mmatchIndex => match_len,
            msource => i,
            mdest => j,
        },
    )
}

/// Raft's election-safety invariant: at most one leader per term
/// (observed over the nodes' *current* terms).
pub fn election_safety() -> mocket_checker::Invariant {
    mocket_checker::Invariant::new("ElectionSafety", |s: &State| {
        let state = s.expect("state");
        let term = s.expect("currentTerm");
        let leaders: Vec<i64> = match state {
            Value::Fun(f) => f
                .iter()
                .filter(|(_, v)| *v == &Value::str(LEADER))
                .map(|(k, _)| term.expect_apply(k).expect_int())
                .collect(),
            _ => Vec::new(),
        };
        for (a, ta) in leaders.iter().enumerate() {
            for tb in leaders.iter().skip(a + 1) {
                if ta == tb {
                    return false;
                }
            }
        }
        true
    })
}

/// Log-matching invariant: committed prefixes agree pairwise.
pub fn log_matching() -> mocket_checker::Invariant {
    mocket_checker::Invariant::new("LogMatching", |s: &State| {
        let logs = s.expect("log");
        let commits = s.expect("commitIndex");
        let (Value::Fun(logs), Value::Fun(commits)) = (logs, commits) else {
            return true;
        };
        let nodes: Vec<&Value> = logs.keys().collect();
        for (x, i) in nodes.iter().enumerate() {
            for j in nodes.iter().skip(x + 1) {
                let ci = commits[*i].expect_int().min(commits[*j].expect_int());
                for n in 1..=ci {
                    if logs[*i].index(n as usize) != logs[*j].index(n as usize) {
                        return false;
                    }
                }
            }
        }
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::{enabled_actions, successors};

    fn spec2() -> RaftSpec {
        RaftSpec::new(RaftSpecConfig {
            dup_limit: 0,
            restart_limit: 0,
            ..RaftSpecConfig::xraft(vec![1, 2])
        })
    }

    fn find<'a>(
        succ: &'a [(mocket_tla::ActionInstance, State)],
        name: &str,
    ) -> Vec<&'a (mocket_tla::ActionInstance, State)> {
        succ.iter().filter(|(a, _)| a.name == name).collect()
    }

    /// Walks: Timeout(1); RequestVote(1,2); Handle both sides; leader.
    fn elect_node1(spec: &RaftSpec) -> State {
        let init = spec.init_states().remove(0);
        let succ = successors(spec, &init);
        let s = find(&succ, "Timeout")
            .iter()
            .find(|(a, _)| a.params[0] == Value::Int(1))
            .unwrap()
            .1
            .clone();
        let succ = successors(spec, &s);
        let s = find(&succ, "RequestVote")
            .iter()
            .find(|(a, _)| a.params == vec![Value::Int(1), Value::Int(2)])
            .unwrap()
            .1
            .clone();
        let succ = successors(spec, &s);
        let s = find(&succ, "HandleRequestVoteRequest")[0].1.clone();
        let succ = successors(spec, &s);
        let s = find(&succ, "HandleRequestVoteResponse")[0].1.clone();
        let succ = successors(spec, &s);
        find(&succ, "BecomeLeader")[0].1.clone()
    }

    #[test]
    fn initial_state_is_all_followers() {
        let spec = spec2();
        let init = &spec.init_states()[0];
        assert_eq!(per_node(init, "state", 1), Value::str(FOLLOWER));
        assert_eq!(per_node(init, "currentTerm", 2), Value::Int(1));
        assert_eq!(init.expect("messages"), &Value::fun([]));
        assert_eq!(init.len(), 15, "Table 1: 15 variables");
    }

    #[test]
    fn timeout_starts_election() {
        let spec = spec2();
        let init = spec.init_states().remove(0);
        let succ = successors(&spec, &init);
        let timeouts = find(&succ, "Timeout");
        assert_eq!(timeouts.len(), 2, "both followers can time out");
        let s = &timeouts[0].1;
        assert_eq!(per_node(s, "state", 1), Value::str(CANDIDATE));
        assert_eq!(per_node(s, "currentTerm", 1), Value::Int(2));
        assert_eq!(per_node(s, "votedFor", 1), Value::Int(1));
        assert_eq!(per_node(s, "votesGranted", 1), Value::set([Value::Int(1)]));
    }

    #[test]
    fn election_completes_and_appends_noop() {
        let spec = spec2();
        let s = elect_node1(&spec);
        assert_eq!(per_node(&s, "state", 1), Value::str(LEADER));
        let log = per_node(&s, "log", 1);
        assert_eq!(log.len(), 1, "Xraft leader appends a NoOp entry");
        assert_eq!(
            log.index(1).unwrap().expect_field("value"),
            &Value::str(NOOP)
        );
    }

    #[test]
    fn no_noop_in_raft_java_variant() {
        let spec = RaftSpec::new(RaftSpecConfig::raft_java(vec![1, 2]));
        let s = elect_node1(&spec);
        assert_eq!(per_node(&s, "state", 1), Value::str(LEADER));
        assert!(per_node(&s, "log", 1).is_empty());
    }

    #[test]
    fn voted_node_records_its_vote() {
        let spec = spec2();
        let s = elect_node1(&spec);
        assert_eq!(per_node(&s, "votedFor", 2), Value::Int(1));
    }

    #[test]
    fn client_request_appends_to_leader_log() {
        let spec = spec2();
        let s = elect_node1(&spec);
        let succ = successors(&spec, &s);
        let reqs = find(&succ, "ClientRequest");
        assert_eq!(reqs.len(), 1, "only the leader accepts requests");
        let s2 = &reqs[0].1;
        let log = per_node(s2, "log", 1);
        assert_eq!(log.len(), 2);
        assert_eq!(
            log.index(2).unwrap().expect_field("value"),
            &Value::Int(1),
            "first request writes datum 1"
        );
        assert_eq!(s2.expect("clientRequests"), &Value::Int(1));
    }

    #[test]
    fn replication_roundtrip_commits() {
        let spec = spec2();
        let mut s = elect_node1(&spec);
        for expected in [
            "AppendEntries",
            "HandleAppendEntriesRequest",
            "HandleAppendEntriesResponse",
            "AdvanceCommitIndex",
        ] {
            let succ = successors(&spec, &s);
            let found = find(&succ, expected);
            assert!(!found.is_empty(), "{expected} should be enabled");
            s = found[0].1.clone();
        }
        assert_eq!(per_node(&s, "commitIndex", 1), Value::Int(1));
        assert_eq!(per_node(&s, "log", 2).len(), 1);
    }

    #[test]
    fn drop_and_duplicate_only_in_async_variant() {
        let spec_async = RaftSpec::new(RaftSpecConfig::xraft(vec![1, 2]));
        let names: Vec<String> = spec_async
            .actions()
            .iter()
            .map(|a| a.name.clone())
            .collect();
        assert!(names.contains(&"DuplicateMessage".to_string()));
        assert!(names.contains(&"DropMessage".to_string()));

        let spec_sync = RaftSpec::new(RaftSpecConfig::raft_java(vec![1, 2]));
        let names: Vec<String> = spec_sync.actions().iter().map(|a| a.name.clone()).collect();
        assert!(!names.contains(&"DuplicateMessage".to_string()));
        assert!(!names.contains(&"DropMessage".to_string()));
    }

    #[test]
    fn duplicate_message_doubles_bag_count() {
        let mut cfg = RaftSpecConfig::xraft(vec![1, 2]);
        cfg.dup_limit = 1;
        let spec = RaftSpec::new(cfg);
        let init = spec.init_states().remove(0);
        let succ = successors(&spec, &init);
        let (_, s) = find(&succ, "Timeout")[0];
        let succ = successors(&spec, s);
        let (_, s) = find(&succ, "RequestVote")[0];
        let succ = successors(&spec, s);
        let dups = find(&succ, "DuplicateMessage");
        assert_eq!(dups.len(), 1);
        let s2 = &dups[0].1;
        let m = bag_messages(s2).remove(0);
        assert_eq!(bag_count(s2, &m), 2);
        let succ = successors(&spec, s2);
        assert!(!find(&succ, "HandleRequestVoteRequest").is_empty());
    }

    #[test]
    fn restart_resets_volatile_keeps_persistent() {
        let mut cfg = RaftSpecConfig::xraft(vec![1, 2]);
        cfg.restart_limit = 1;
        cfg.dup_limit = 0;
        let spec = RaftSpec::new(cfg);
        let s = elect_node1(&spec);
        let succ = successors(&spec, &s);
        let restarts = find(&succ, "Restart");
        assert_eq!(restarts.len(), 2);
        let (a, s2) = restarts
            .iter()
            .find(|(a, _)| a.params[0] == Value::Int(1))
            .unwrap();
        assert_eq!(a.name, "Restart");
        assert_eq!(per_node(s2, "state", 1), Value::str(FOLLOWER));
        assert_eq!(per_node(s2, "votesGranted", 1), Value::empty_set());
        // Persisted: term, vote, log.
        assert_eq!(per_node(s2, "currentTerm", 1), Value::Int(2));
        assert_eq!(per_node(s2, "votedFor", 1), Value::Int(1));
        assert_eq!(per_node(s2, "log", 1).len(), 1);
    }

    #[test]
    fn crashed_node_enables_nothing() {
        let mut cfg = RaftSpecConfig::xraft(vec![1, 2]);
        cfg.crash_limit = 1;
        cfg.dup_limit = 0;
        cfg.restart_limit = 0;
        let spec = RaftSpec::new(cfg);
        let init = spec.init_states().remove(0);
        let succ = successors(&spec, &init);
        let s = find(&succ, "Crash")
            .iter()
            .find(|(a, _)| a.params[0] == Value::Int(1))
            .unwrap()
            .1
            .clone();
        assert_eq!(per_node(&s, "alive", 1), Value::Bool(false));
        let names: Vec<String> = enabled_actions(&spec, &s)
            .into_iter()
            .filter(|a| !a.params.is_empty() && a.params[0] == Value::Int(1))
            .map(|a| a.name)
            .collect();
        assert!(
            names.is_empty(),
            "crashed node 1 must enable nothing, got {names:?}"
        );
    }

    #[test]
    fn spec_bug1_exposes_independent_update_term() {
        let mut cfg = RaftSpecConfig::raft_java(vec![1, 2]);
        cfg.bug_update_term_independent = true;
        let spec = RaftSpec::new(cfg);
        let init = spec.init_states().remove(0);
        let succ = successors(&spec, &init);
        let (_, s) = find(&succ, "Timeout")[0];
        let succ = successors(&spec, s);
        let (_, s) = find(&succ, "RequestVote")[0];
        // Node 2 is at term 1, the request carries term 2: only
        // UpdateTerm is enabled, and it leaves the message in flight.
        let succ = successors(&spec, s);
        assert!(find(&succ, "HandleRequestVoteRequest").is_empty());
        let updates = find(&succ, "UpdateTerm");
        assert_eq!(updates.len(), 1);
        let s2 = &updates[0].1;
        assert_eq!(per_node(s2, "currentTerm", 2), Value::Int(2));
        assert_eq!(bag_messages(s2).len(), 1, "message not consumed");
    }

    #[test]
    fn spec_bug2_leaves_candidate_request_unanswered() {
        let mut cfg = RaftSpecConfig::raft_java(vec![1, 2, 3]);
        cfg.bug_missing_reply = true;
        let spec = RaftSpec::new(cfg);
        // Elect node 1 (vote from 2) while node 3 is also a candidate
        // at the same term.
        let init = spec.init_states().remove(0);
        let succ = successors(&spec, &init);
        let s = find(&succ, "Timeout")
            .iter()
            .find(|(a, _)| a.params[0] == Value::Int(1))
            .unwrap()
            .1
            .clone();
        let succ = successors(&spec, &s);
        let s = find(&succ, "Timeout")
            .iter()
            .find(|(a, _)| a.params[0] == Value::Int(3))
            .unwrap()
            .1
            .clone();
        let succ = successors(&spec, &s);
        let s = find(&succ, "RequestVote")
            .iter()
            .find(|(a, _)| a.params == vec![Value::Int(1), Value::Int(2)])
            .unwrap()
            .1
            .clone();
        let succ = successors(&spec, &s);
        let s = find(&succ, "HandleRequestVoteRequest")[0].1.clone();
        let succ = successors(&spec, &s);
        let s = find(&succ, "HandleRequestVoteResponse")[0].1.clone();
        let succ = successors(&spec, &s);
        let s = find(&succ, "BecomeLeader")[0].1.clone();
        // Give the leader something to send, then target candidate 3.
        let succ = successors(&spec, &s);
        let s = find(&succ, "ClientRequest")[0].1.clone();
        let succ = successors(&spec, &s);
        let s = find(&succ, "AppendEntries")
            .iter()
            .find(|(a, _)| a.params == vec![Value::Int(1), Value::Int(3)])
            .unwrap()
            .1
            .clone();
        let before_msgs = bag_messages(&s).len();
        let succ = successors(&spec, &s);
        let handled: Vec<_> = succ
            .iter()
            .filter(|(a, _)| {
                a.name == "HandleAppendEntriesRequest" && msg_field_int(&a.params[0], "mdest") == 3
            })
            .collect();
        assert!(!handled.is_empty());
        let s2 = &handled[0].1;
        assert_eq!(per_node(s2, "state", 3), Value::str(FOLLOWER));
        assert_eq!(
            bag_messages(s2).len(),
            before_msgs,
            "buggy branch leaves the request in flight"
        );
        // The fixed spec consumes and replies in one step.
        let mut fixed_cfg = RaftSpecConfig::raft_java(vec![1, 2, 3]);
        fixed_cfg.bug_missing_reply = false;
        let fixed = RaftSpec::new(fixed_cfg);
        let succ = successors(&fixed, &s);
        let s3 = succ
            .iter()
            .find(|(a, _)| {
                a.name == "HandleAppendEntriesRequest" && msg_field_int(&a.params[0], "mdest") == 3
            })
            .map(|(_, st)| st)
            .unwrap();
        assert!(
            bag_messages(s3)
                .iter()
                .any(|m| msg_type(m) == "AppendEntriesResponse"),
            "fixed branch replies"
        );
    }

    #[test]
    fn simulation_covers_the_large_model() {
        // The 3-server async model is too big to enumerate in a unit
        // test; random simulation (TLC's -simulate analog) still
        // checks the safety invariants on sampled behaviors.
        use mocket_checker::{simulate, SimulateConfig};
        use std::sync::Arc;
        let spec = RaftSpec::new(RaftSpecConfig::xraft(vec![1, 2, 3]));
        let r = simulate(
            Arc::new(spec),
            &[election_safety(), log_matching()],
            &SimulateConfig {
                behaviors: 60,
                max_depth: 40,
                seed: 7,
            },
        );
        assert!(r.ok(), "{:?}", r.violation.map(|v| v.to_string()));
        assert!(r.stats.distinct_states_seen > 500);
    }

    #[test]
    fn election_safety_invariant_holds_on_model() {
        use mocket_checker::ModelChecker;
        use std::sync::Arc;
        let result = ModelChecker::new(Arc::new(spec2()))
            .invariant(election_safety())
            .invariant(log_matching())
            .max_states(50_000)
            .run();
        assert!(result.ok(), "{:?}", result.violation.map(|v| v.to_string()));
        assert!(result.stats.distinct_states > 50);
    }
}
