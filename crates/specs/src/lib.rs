//! TLA+-style specifications for the Mocket reproduction.
//!
//! Three specifications, matching the paper:
//!
//! * [`cachemax`] — the running example of Figures 1 and 2.
//! * [`raft`] — the Raft consensus specification, configurable for the
//!   asynchronous (Xraft-like) and synchronous (Raft-java-like)
//!   communication styles, with the two official-specification bugs
//!   of Figures 10 and 11 reproducible behind flags.
//! * [`zab`] — the ZooKeeper atomic broadcast (ZAB) specification with
//!   separate leader-election and broadcast message variables.

pub mod cachemax;
pub mod raft;
pub mod zab;

pub use cachemax::CacheMax;
pub use raft::{RaftSpec, RaftSpecConfig};
pub use zab::{ZabSpec, ZabSpecConfig};
