//! The Figure 1 example specification.
//!
//! A server stores client data in a set `cache` and answers each
//! request with `Max` if the requested datum is the largest cached so
//! far, `NotMax` otherwise. With `Data = {1, 2}` the state space is
//! the 13-state graph of the paper's Figure 2.

use mocket_tla::{ActionClass, ActionDef, Spec, State, Value, VarClass, VarDef};

/// Model constants for [`CacheMax`]: the set `Data` of values a client
/// may request.
#[derive(Debug, Clone)]
pub struct CacheMax {
    /// The `Data` constant.
    pub data: Vec<i64>,
}

impl CacheMax {
    /// The paper's model: `Data = {1, 2}`.
    pub fn paper_model() -> Self {
        CacheMax { data: vec![1, 2] }
    }

    /// A model with `Data = 1..=n`.
    pub fn with_data_size(n: i64) -> Self {
        CacheMax {
            data: (1..=n).collect(),
        }
    }
}

/// `getMax(S) == CHOOSE t \in S : \A s \in S : t >= s` (Figure 1).
fn get_max(s: &Value) -> Option<&Value> {
    s.choose_max()
}

impl Spec for CacheMax {
    fn name(&self) -> &str {
        "CacheMax"
    }

    fn variables(&self) -> Vec<VarDef> {
        vec![
            VarDef::new("msg", VarClass::StateRelated),
            VarDef::new("cache", VarClass::StateRelated),
            // `stage` controls the Request/Respond alternation only.
            VarDef::new("stage", VarClass::Auxiliary),
        ]
    }

    fn constants(&self) -> Vec<(String, Value)> {
        vec![
            ("Max".into(), Value::str("Max")),
            ("NotMax".into(), Value::str("NotMax")),
            ("Nil".into(), Value::Nil),
            (
                "Data".into(),
                Value::set(self.data.iter().map(|&d| Value::Int(d))),
            ),
        ]
    }

    fn init_states(&self) -> Vec<State> {
        vec![State::from_pairs([
            ("msg", Value::Nil),
            ("stage", Value::str("request")),
            ("cache", Value::empty_set()),
        ])]
    }

    fn actions(&self) -> Vec<ActionDef> {
        let data = self.data.clone();
        vec![
            // Request(d): the client sends datum d to the server.
            ActionDef::with_params(
                "Request",
                ActionClass::UserRequest,
                move |_s| data.iter().map(|&d| vec![Value::Int(d)]).collect(),
                |s, ps| {
                    (s.expect("stage").as_str() == Some("request")).then(|| {
                        s.with("stage", Value::str("respond"))
                            .with("msg", ps[0].clone())
                    })
                },
            ),
            // Respond: the server caches the datum and answers.
            ActionDef::nullary("Respond", ActionClass::SingleNode, |s| {
                (s.expect("stage").as_str() == Some("respond")).then(|| {
                    let cache2 = s.expect("cache").with_elem(s.expect("msg").clone());
                    let answer = if get_max(&cache2) == Some(s.expect("msg")) {
                        Value::str("Max")
                    } else {
                        Value::str("NotMax")
                    };
                    s.with("stage", Value::str("request"))
                        .with("cache", cache2)
                        .with("msg", answer)
                })
            }),
        ]
    }
}

/// The invariant of Figure 1, line 22:
/// `Cardinality(cache) <= Cardinality(Data)`.
pub fn cache_bounded_invariant(data_size: usize) -> mocket_checker::Invariant {
    mocket_checker::Invariant::new("CacheBounded", move |s: &State| {
        s.expect("cache").cardinality() <= data_size
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocket_tla::{enabled_actions, successors};

    #[test]
    fn init_matches_figure1() {
        let spec = CacheMax::paper_model();
        let init = spec.init_states();
        assert_eq!(init.len(), 1);
        assert_eq!(init[0].expect("msg"), &Value::Nil);
        assert_eq!(init[0].expect("cache"), &Value::empty_set());
        assert_eq!(init[0].expect("stage"), &Value::str("request"));
    }

    #[test]
    fn request_and_respond_alternate() {
        let spec = CacheMax::paper_model();
        let init = &spec.init_states()[0];
        let names: Vec<_> = enabled_actions(&spec, init)
            .into_iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(names, ["Request(1)", "Request(2)"]);

        let (_, after_request) = successors(&spec, init).remove(0);
        let names: Vec<_> = enabled_actions(&spec, &after_request)
            .into_iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(names, ["Respond"]);
    }

    #[test]
    fn respond_answers_max_vs_notmax() {
        let spec = CacheMax::paper_model();
        // Cache {2} and request 1: 1 is not the max of {1, 2}.
        let s = State::from_pairs([
            ("msg", Value::Int(1)),
            ("stage", Value::str("respond")),
            ("cache", Value::set([Value::Int(2)])),
        ]);
        let succ = successors(&spec, &s);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].1.expect("msg"), &Value::str("NotMax"));

        // Request 2 on cache {1}: 2 is the max.
        let s = State::from_pairs([
            ("msg", Value::Int(2)),
            ("stage", Value::str("respond")),
            ("cache", Value::set([Value::Int(1)])),
        ]);
        let succ = successors(&spec, &s);
        assert_eq!(succ[0].1.expect("msg"), &Value::str("Max"));
    }

    #[test]
    fn variable_classes_match_section_4_1_1() {
        let spec = CacheMax::paper_model();
        let vars = spec.variables();
        let stage = vars.iter().find(|v| v.name == "stage").unwrap();
        assert_eq!(stage.class, VarClass::Auxiliary);
    }
}
