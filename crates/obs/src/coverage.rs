//! Campaign coverage analytics.
//!
//! A [`CoverageMap`] accumulates per-edge and per-action hit counts
//! over the test cases a campaign actually executed (fed from the
//! pipeline's case events). It is graph-shape-agnostic — edges are
//! plain indices — so the dependency-free obs crate can host it; the
//! checker layers the state-graph-aware DOT overlay on top.
//!
//! Two artifacts come out of it:
//! - `coverage.json`: the full hit counts, deterministic key order;
//! - an uncovered-edge listing ([`CoverageMap::uncovered_listing`])
//!   that the traversal generator consumes next run to steer path
//!   selection toward unexecuted edges
//!   ([`parse_uncovered_listing`]).

use std::collections::BTreeMap;

use crate::json::push_escaped;

/// File name of the coverage dump inside a campaign directory.
pub const COVERAGE_FILE_NAME: &str = "coverage.json";

/// File name of the uncovered-edge listing inside a campaign
/// directory.
pub const UNCOVERED_FILE_NAME: &str = "uncovered-edges.txt";

/// Per-edge and per-action hit counts for one campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageMap {
    edge_hits: Vec<u64>,
    action_hits: BTreeMap<String, u64>,
    cases: u64,
}

impl CoverageMap {
    /// An empty map over a graph with `edge_count` edges.
    pub fn new(edge_count: usize) -> Self {
        CoverageMap {
            edge_hits: vec![0; edge_count],
            action_hits: BTreeMap::new(),
            cases: 0,
        }
    }

    /// Records one executed test case: the edge indices it walked and
    /// the action name of each step.
    pub fn record_case<'a>(
        &mut self,
        edges: impl IntoIterator<Item = usize>,
        actions: impl IntoIterator<Item = &'a str>,
    ) {
        self.cases += 1;
        for e in edges {
            if let Some(h) = self.edge_hits.get_mut(e) {
                *h += 1;
            }
        }
        for a in actions {
            *self.action_hits.entry(a.to_string()).or_insert(0) += 1;
        }
    }

    /// Number of cases recorded.
    pub fn cases(&self) -> u64 {
        self.cases
    }

    /// Number of edges the map tracks.
    pub fn edge_count(&self) -> usize {
        self.edge_hits.len()
    }

    /// Hit count of edge `e` (0 for out-of-range indices).
    pub fn hit(&self, e: usize) -> u64 {
        self.edge_hits.get(e).copied().unwrap_or(0)
    }

    /// The raw per-edge hit counts, indexed by edge id.
    pub fn edge_hits(&self) -> &[u64] {
        &self.edge_hits
    }

    /// Number of edges with at least one hit.
    pub fn edges_covered(&self) -> usize {
        self.edge_hits.iter().filter(|&&h| h > 0).count()
    }

    /// Covered fraction in `[0, 1]` (1 for an edgeless graph).
    pub fn edge_coverage(&self) -> f64 {
        if self.edge_hits.is_empty() {
            1.0
        } else {
            self.edges_covered() as f64 / self.edge_hits.len() as f64
        }
    }

    /// Edge indices never hit, ascending.
    pub fn uncovered_edges(&self) -> Vec<usize> {
        self.edge_hits
            .iter()
            .enumerate()
            .filter(|(_, &h)| h == 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-action hit counts, in action-name order.
    pub fn action_hits(&self) -> &BTreeMap<String, u64> {
        &self.action_hits
    }

    /// Renders `coverage.json`: a deterministic JSON document with the
    /// full hit counts. Purely logical data — no wall-clock anywhere.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema_version\": 1,\n");
        out.push_str(&format!("  \"cases\": {},\n", self.cases));
        out.push_str(&format!("  \"edges\": {},\n", self.edge_hits.len()));
        out.push_str(&format!("  \"edges_covered\": {},\n", self.edges_covered()));
        out.push_str("  \"edge_hits\": [");
        for (i, h) in self.edge_hits.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&h.to_string());
        }
        out.push_str("],\n");
        out.push_str("  \"action_hits\": {");
        for (i, (name, hits)) in self.action_hits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_escaped(&mut out, name);
            out.push_str(&format!(": {hits}"));
        }
        if !self.action_hits.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Renders the uncovered-edge listing: `#`-prefixed header, then
    /// one edge index per line. Feed it back to the traversal
    /// generator (as priority edges) on the next run.
    pub fn uncovered_listing(&self) -> String {
        let uncovered = self.uncovered_edges();
        let mut out = format!(
            "# uncovered edges: {} of {} ({} covered by {} cases)\n",
            uncovered.len(),
            self.edge_hits.len(),
            self.edges_covered(),
            self.cases
        );
        for e in uncovered {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

/// Parses an uncovered-edge listing back into edge indices. Blank
/// lines and `#` comments are skipped; anything else must be a
/// non-negative integer.
pub fn parse_uncovered_listing(text: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(
            line.parse::<usize>()
                .map_err(|_| format!("line {}: not an edge index: {line:?}", i + 1))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_hits_across_cases() {
        let mut cov = CoverageMap::new(4);
        cov.record_case([0, 1], ["A", "B"]);
        cov.record_case([1, 3], ["B", "C"]);
        assert_eq!(cov.cases(), 2);
        assert_eq!(cov.edge_hits(), &[1, 2, 0, 1]);
        assert_eq!(cov.edges_covered(), 3);
        assert_eq!(cov.uncovered_edges(), vec![2]);
        assert_eq!(cov.edge_coverage(), 0.75);
        assert_eq!(cov.action_hits().get("B"), Some(&2));
        assert_eq!(cov.action_hits().get("C"), Some(&1));
    }

    #[test]
    fn empty_graph_is_fully_covered() {
        let cov = CoverageMap::new(0);
        assert_eq!(cov.edge_coverage(), 1.0);
        assert!(cov.uncovered_edges().is_empty());
    }

    #[test]
    fn json_dump_is_deterministic_and_complete() {
        let mut cov = CoverageMap::new(3);
        cov.record_case([2, 0], ["Z(1)", "A \"q\""]);
        let json = cov.to_json();
        assert_eq!(json, cov.to_json());
        assert!(json.contains("\"edge_hits\": [1, 0, 1]"));
        assert!(json.contains("\"edges_covered\": 2"));
        assert!(json.contains("\"A \\\"q\\\"\": 1"));
    }

    #[test]
    fn uncovered_listing_round_trips() {
        let mut cov = CoverageMap::new(5);
        cov.record_case([0, 3], ["A", "B"]);
        let listing = cov.uncovered_listing();
        assert!(listing.starts_with("# uncovered edges: 3 of 5"));
        assert_eq!(parse_uncovered_listing(&listing).unwrap(), vec![1, 2, 4]);
        assert!(parse_uncovered_listing("nope\n").is_err());
        assert_eq!(parse_uncovered_listing("# all covered\n").unwrap(), vec![]);
    }

    #[test]
    fn out_of_range_edges_are_ignored() {
        let mut cov = CoverageMap::new(2);
        cov.record_case([0, 9], ["A"]);
        assert_eq!(cov.edge_hits(), &[1, 0]);
    }
}
