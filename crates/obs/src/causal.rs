//! Causal message-level tracing.
//!
//! A [`Tracer`] records one test case's execution as a flat list of
//! [`CausalEvent`]s: scheduler releases, per-node execution spans,
//! and every network-level message fate (send / recv / drop /
//! duplicate / delay). Message events are linked into causal edges by
//! a per-trace message id — a `recv` carries the `msg` id of the
//! `send` that produced it — and every event carries the scheduler
//! context active when it happened: the step index, the released
//! action, and the spec edge that step exercised. The result is the
//! happens-before DAG of the case, annotated with its
//! `(action, spec-edge)` mapping.
//!
//! # Determinism contract
//!
//! Events are recorded only from schedule-driven points (a scheduler
//! release, a node step executing under it, the network calls made
//! inside that step) — never from timing-dependent points such as
//! offer polls. Sequence numbers, message ids and Lamport clocks are
//! assigned in recording order, which the sequential runner makes
//! deterministic. The only timing-dependent field is `vt`, the
//! virtual timestamp: under the simulation backend it is the shared
//! `SimClock` reading (deterministic per seed, so sim traces are
//! byte-identical per seed); under the threaded backend it is always
//! `0` (wall clock never leaks into a trace). Comparing a threaded
//! trace against a sim trace therefore means comparing the events
//! with `vt` zeroed — see [`strip_virtual_time`].
//!
//! A disabled tracer (the default) is a `None` behind a cheap clone:
//! every recording call is a branch on a discriminant and returns
//! immediately, and the [`MsgTag`] stamped on wire messages is a
//! `Copy` default — the fast no-op path campaigns run unless
//! `--trace` is given.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::json::{parse_flat_object, push_escaped};

/// The per-case trace file name.
pub const TRACE_FILE_NAME: &str = "trace.jsonl";

/// Fault-point name for `trace.jsonl` appends. Mirrored in the
/// `mocket-core` fsio catalog (`points::TRACE_APPEND`).
pub const TRACE_APPEND_POINT: &str = "trace.append";

/// The tag a traced run stamps on every wire message.
///
/// `trace == 0` means untraced (the disabled-tracer default): the tag
/// rides along as a few dead bytes of envelope metadata and nothing
/// is ever recorded about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MsgTag {
    /// Trace identity (case index + 1 so it is nonzero when live).
    pub trace: u64,
    /// The sender's Lamport clock at send time.
    pub lamport: u64,
    /// Per-trace message id: links a recv back to its send.
    pub seq: u64,
}

impl MsgTag {
    /// Whether this message was sent under a live tracer.
    pub fn is_traced(&self) -> bool {
        self.trace != 0
    }
}

/// What a [`CausalEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalKind {
    /// Case started (note = case hash).
    CaseBegin,
    /// Case finished (note = outcome label).
    CaseEnd,
    /// The scheduler released a matched offer to a node.
    Release,
    /// The scheduler triggered an external fault / user request.
    External,
    /// A node began executing one step.
    StepBegin,
    /// The node step finished.
    StepEnd,
    /// A message entered the network.
    Send,
    /// A receive action consumed a message.
    Recv,
    /// A fault (or partition) discarded a message.
    Drop,
    /// A fault added another copy of a message.
    Duplicate,
    /// A fault held a message back.
    Delay,
    /// A node crashed (scheduled fault or teardown).
    Crash,
    /// A node restarted.
    Restart,
}

impl CausalKind {
    /// The stable label written to `trace.jsonl`.
    pub fn label(&self) -> &'static str {
        match self {
            CausalKind::CaseBegin => "case",
            CausalKind::CaseEnd => "case.end",
            CausalKind::Release => "release",
            CausalKind::External => "external",
            CausalKind::StepBegin => "step",
            CausalKind::StepEnd => "step.end",
            CausalKind::Send => "send",
            CausalKind::Recv => "recv",
            CausalKind::Drop => "drop",
            CausalKind::Duplicate => "dup",
            CausalKind::Delay => "delay",
            CausalKind::Crash => "crash",
            CausalKind::Restart => "restart",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<CausalKind> {
        Some(match label {
            "case" => CausalKind::CaseBegin,
            "case.end" => CausalKind::CaseEnd,
            "release" => CausalKind::Release,
            "external" => CausalKind::External,
            "step" => CausalKind::StepBegin,
            "step.end" => CausalKind::StepEnd,
            "send" => CausalKind::Send,
            "recv" => CausalKind::Recv,
            "drop" => CausalKind::Drop,
            "dup" => CausalKind::Duplicate,
            "delay" => CausalKind::Delay,
            "crash" => CausalKind::Crash,
            "restart" => CausalKind::Restart,
            _ => return None,
        })
    }

    /// Whether this kind is a message-fate event (carries a `msg` id).
    pub fn is_message(&self) -> bool {
        matches!(
            self,
            CausalKind::Send
                | CausalKind::Recv
                | CausalKind::Drop
                | CausalKind::Duplicate
                | CausalKind::Delay
        )
    }
}

/// One recorded trace event. Optional fields are omitted from the
/// JSON line when absent, so lines stay compact and deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalEvent {
    /// Position in the trace (per-case, dense from 0).
    pub seq: u64,
    /// What happened.
    pub kind: CausalKind,
    /// The case index the trace belongs to.
    pub case: u64,
    /// Virtual timestamp in nanoseconds: the shared sim clock under
    /// the simulation backend, always `0` under the threaded backend.
    pub vt: u64,
    /// The node the event happened on (sender for message events).
    pub node: Option<u64>,
    /// The other endpoint of a message event.
    pub peer: Option<u64>,
    /// Per-trace message id (send and its recv/drop/dup share it).
    pub msg: Option<u64>,
    /// Lamport clock after the event, for message events.
    pub lamport: Option<u64>,
    /// Scheduler step index active when the event was recorded.
    pub step: Option<u64>,
    /// Spec-level action name of that step.
    pub action: Option<String>,
    /// Spec edge id that step exercised (the `(action, spec-edge)`
    /// mapping required of every trace edge).
    pub edge: Option<u64>,
    /// Free-form annotation (case hash, outcome, fault detail).
    pub note: Option<String>,
}

impl CausalEvent {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"seq\":{},\"case\":{},\"kind\":",
            self.seq, self.case
        ));
        push_escaped(&mut out, self.kind.label());
        out.push_str(&format!(",\"vt\":{}", self.vt));
        if let Some(n) = self.node {
            out.push_str(&format!(",\"node\":{n}"));
        }
        if let Some(p) = self.peer {
            out.push_str(&format!(",\"peer\":{p}"));
        }
        if let Some(m) = self.msg {
            out.push_str(&format!(",\"msg\":{m}"));
        }
        if let Some(l) = self.lamport {
            out.push_str(&format!(",\"lamport\":{l}"));
        }
        if let Some(s) = self.step {
            out.push_str(&format!(",\"step\":{s}"));
        }
        if let Some(a) = &self.action {
            out.push_str(",\"action\":");
            push_escaped(&mut out, a);
        }
        if let Some(e) = self.edge {
            out.push_str(&format!(",\"edge\":{e}"));
        }
        if let Some(n) = &self.note {
            out.push_str(",\"note\":");
            push_escaped(&mut out, n);
        }
        out.push('}');
        out
    }

    /// Parses one `trace.jsonl` line.
    pub fn parse_line(line: &str) -> Result<CausalEvent, String> {
        let pairs = parse_flat_object(line)?;
        let mut ev = CausalEvent {
            seq: 0,
            kind: CausalKind::CaseBegin,
            case: 0,
            vt: 0,
            node: None,
            peer: None,
            msg: None,
            lamport: None,
            step: None,
            action: None,
            edge: None,
            note: None,
        };
        let mut saw_kind = false;
        for (key, value) in pairs {
            let num = || {
                value
                    .as_u64()
                    .ok_or_else(|| format!("field {key:?} is not a u64"))
            };
            match key.as_str() {
                "seq" => ev.seq = num()?,
                "case" => ev.case = num()?,
                "vt" => ev.vt = num()?,
                "node" => ev.node = Some(num()?),
                "peer" => ev.peer = Some(num()?),
                "msg" => ev.msg = Some(num()?),
                "lamport" => ev.lamport = Some(num()?),
                "step" => ev.step = Some(num()?),
                "edge" => ev.edge = Some(num()?),
                "kind" => {
                    let label = value
                        .as_str()
                        .ok_or_else(|| "kind is not a string".to_string())?;
                    ev.kind = CausalKind::from_label(label)
                        .ok_or_else(|| format!("unknown kind {label:?}"))?;
                    saw_kind = true;
                }
                "action" => {
                    ev.action = Some(
                        value
                            .as_str()
                            .ok_or_else(|| "action is not a string".to_string())?
                            .to_string(),
                    )
                }
                "note" => {
                    ev.note = Some(
                        value
                            .as_str()
                            .ok_or_else(|| "note is not a string".to_string())?
                            .to_string(),
                    )
                }
                other => return Err(format!("unknown trace key {other:?}")),
            }
        }
        if !saw_kind {
            return Err("missing kind".into());
        }
        Ok(ev)
    }
}

/// The scheduler context active while a step executes: everything a
/// network event recorded inside the step inherits.
#[derive(Debug, Clone, Default)]
struct StepContext {
    step: Option<u64>,
    action: Option<String>,
    edge: Option<u64>,
}

#[derive(Debug, Default)]
struct TracerState {
    case: u64,
    next_seq: u64,
    next_msg: u64,
    /// Per-node Lamport clocks.
    clocks: BTreeMap<u64, u64>,
    /// Spec edge per step index, preloaded from the case's edge path
    /// so releases can stamp the `(action, spec-edge)` mapping.
    edge_path: Vec<u64>,
    ctx: StepContext,
    events: Vec<CausalEvent>,
}

impl TracerState {
    fn record(&mut self, kind: CausalKind, vt: u64) -> &mut CausalEvent {
        let ev = CausalEvent {
            seq: self.next_seq,
            kind,
            case: self.case,
            vt,
            node: None,
            peer: None,
            msg: None,
            lamport: None,
            step: self.ctx.step,
            action: self.ctx.action.clone(),
            edge: self.ctx.edge,
            note: None,
        };
        self.next_seq += 1;
        self.events.push(ev);
        self.events.last_mut().expect("just pushed")
    }
}

/// A cheap-clone handle recording one case's causal trace.
///
/// The default ([`Tracer::disabled`]) is inert: every method is a
/// single branch and the handle clones as a `None`. A live tracer
/// ([`Tracer::for_case`]) shares one state behind a mutex; the
/// sequential harness only ever records from one thread at a time
/// (the node thread currently executing a step, or the runner
/// thread), so recording order is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TracerState>>>,
}

impl Tracer {
    /// The inert tracer: records nothing, costs a branch per call.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A live tracer for case `case` (trace id `case + 1`).
    pub fn for_case(case: u64) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TracerState {
                case,
                ..TracerState::default()
            }))),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut TracerState) -> R) -> Option<R> {
        let inner = self.inner.as_ref()?;
        let mut state = inner.lock().unwrap_or_else(|e| e.into_inner());
        Some(f(&mut state))
    }

    /// Preloads the spec edge exercised by each step, index-aligned
    /// with the case's action sequence.
    pub fn set_edge_path(&self, edges: Vec<u64>) {
        self.with(|s| s.edge_path = edges);
    }

    /// Records the case-begin marker (note = the case's stable hash).
    pub fn begin_case(&self, hash: &str, vt: u64) {
        self.with(|s| {
            s.record(CausalKind::CaseBegin, vt).note = Some(hash.to_string());
        });
    }

    /// Records the case-end marker (note = outcome label).
    pub fn end_case(&self, outcome: &str, vt: u64) {
        self.with(|s| {
            s.ctx = StepContext::default();
            s.record(CausalKind::CaseEnd, vt).note = Some(outcome.to_string());
        });
    }

    /// Records a scheduler release: step `step` released `action` on
    /// `node`. Sets the step context every later event inherits.
    pub fn release(&self, step: u64, node: u64, action: &str, vt: u64) {
        self.with(|s| {
            s.ctx = StepContext {
                step: Some(step),
                action: Some(action.to_string()),
                edge: s.edge_path.get(step as usize).copied(),
            };
            s.record(CausalKind::Release, vt).node = Some(node);
        });
    }

    /// Records an external fault / user-request trigger at `step`.
    pub fn external(&self, step: u64, action: &str, vt: u64) {
        self.with(|s| {
            s.ctx = StepContext {
                step: Some(step),
                action: Some(action.to_string()),
                edge: s.edge_path.get(step as usize).copied(),
            };
            s.record(CausalKind::External, vt);
        });
    }

    /// Records the start of one node step (cluster execution span).
    pub fn step_begin(&self, node: u64, vt: u64) {
        self.with(|s| {
            s.record(CausalKind::StepBegin, vt).node = Some(node);
        });
    }

    /// Records the end of the node step started last.
    pub fn step_end(&self, node: u64, vt: u64) {
        self.with(|s| {
            s.record(CausalKind::StepEnd, vt).node = Some(node);
        });
    }

    /// Records a send from `from` to `to` and returns the tag to
    /// stamp on the wire message. The disabled tracer returns the
    /// zero tag without recording.
    pub fn on_send(&self, from: u64, to: u64, vt: u64) -> MsgTag {
        self.with(|s| {
            let clock = s.clocks.entry(from).or_insert(0);
            *clock += 1;
            let lamport = *clock;
            let msg = s.next_msg;
            s.next_msg += 1;
            let trace = s.case + 1;
            let ev = s.record(CausalKind::Send, vt);
            ev.node = Some(from);
            ev.peer = Some(to);
            ev.msg = Some(msg);
            ev.lamport = Some(lamport);
            MsgTag {
                trace,
                lamport,
                seq: msg,
            }
        })
        .unwrap_or_default()
    }

    /// Records `node` consuming a message sent by `from` under `tag`
    /// (the causal edge: this event's `msg` id is the send's).
    pub fn on_recv(&self, node: u64, from: u64, tag: MsgTag, vt: u64) {
        self.record_message(CausalKind::Recv, node, from, tag, vt, None);
    }

    /// Records a message addressed to `node` being discarded.
    pub fn on_drop(&self, node: u64, from: u64, tag: MsgTag, vt: u64, why: &str) {
        self.record_message(CausalKind::Drop, node, from, tag, vt, Some(why));
    }

    /// Records a duplicate copy appearing in `node`'s inbox. The copy
    /// keeps the original tag, so both eventual recvs share the
    /// send's `msg` id.
    pub fn on_duplicate(&self, node: u64, from: u64, tag: MsgTag, vt: u64) {
        self.record_message(CausalKind::Duplicate, node, from, tag, vt, None);
    }

    /// Records a message to `node` being held back by a delay fault.
    pub fn on_delay(&self, node: u64, from: u64, tag: MsgTag, vt: u64) {
        self.record_message(CausalKind::Delay, node, from, tag, vt, None);
    }

    fn record_message(
        &self,
        kind: CausalKind,
        node: u64,
        from: u64,
        tag: MsgTag,
        vt: u64,
        note: Option<&str>,
    ) {
        self.with(|s| {
            let lamport = if kind == CausalKind::Recv {
                let clock = s.clocks.entry(node).or_insert(0);
                *clock = (*clock).max(tag.lamport) + 1;
                Some(*clock)
            } else {
                tag.is_traced().then_some(tag.lamport)
            };
            let ev = s.record(kind, vt);
            ev.node = Some(node);
            ev.peer = Some(from);
            ev.msg = tag.is_traced().then_some(tag.seq);
            ev.lamport = lamport;
            ev.note = note.map(str::to_string);
        });
    }

    /// Records a node crash.
    pub fn crash(&self, node: u64, vt: u64) {
        self.with(|s| {
            s.record(CausalKind::Crash, vt).node = Some(node);
        });
    }

    /// Records a node restart.
    pub fn restart(&self, node: u64, vt: u64) {
        self.with(|s| {
            s.record(CausalKind::Restart, vt).node = Some(node);
        });
    }

    /// Drains and returns everything recorded so far.
    pub fn take_events(&self) -> Vec<CausalEvent> {
        self.with(std::mem::take)
            .map(|s: TracerState| s.events)
            .unwrap_or_default()
    }
}

/// Renders events as `trace.jsonl` content (one JSON object per
/// line, trailing newline after each).
pub fn to_jsonl(events: &[CausalEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json_line());
        out.push('\n');
    }
    out
}

/// Parses `trace.jsonl` content. Malformed lines and a truncated
/// final line (no trailing newline — an interrupted append) are
/// collected as issues and skipped, mirroring the journal's
/// torn-line salvage contract.
pub fn parse_trace(text: &str) -> (Vec<CausalEvent>, Vec<String>) {
    let mut events = Vec::new();
    let mut issues = Vec::new();
    let truncated = !text.is_empty() && !text.ends_with('\n');
    let line_count = text.lines().count();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if truncated && i + 1 == line_count {
            issues.push(format!(
                "line {}: truncated final line (interrupted append)",
                i + 1
            ));
            continue;
        }
        match CausalEvent::parse_line(line) {
            Ok(ev) => events.push(ev),
            Err(e) => issues.push(format!("line {}: {e}", i + 1)),
        }
    }
    (events, issues)
}

/// Appends rendered events to `path` through the fault-injectable
/// append path (torn appends roll back, a torn trailing line is
/// repaired before the new batch lands).
pub fn append_trace(path: &Path, events: &[CausalEvent]) -> io::Result<()> {
    if events.is_empty() {
        return Ok(());
    }
    crate::fsio::append_bytes(
        path,
        to_jsonl(events).as_bytes(),
        TRACE_APPEND_POINT,
        &crate::fsio::RetryPolicy::io(),
    )
}

/// Copies `events` with `vt` zeroed: the shape threaded-backend
/// traces already have, used to compare causal edge sets across
/// backends (timestamps may differ; the happens-before DAG may not).
pub fn strip_virtual_time(events: &[CausalEvent]) -> Vec<CausalEvent> {
    events
        .iter()
        .cloned()
        .map(|mut ev| {
            ev.vt = 0;
            ev
        })
        .collect()
}

/// Chrome `trace_event` ticks: virtual nanoseconds become
/// microseconds when present; otherwise the event sequence number
/// keeps lanes ordered.
fn chrome_ts(ev: &CausalEvent) -> u64 {
    if ev.vt > 0 {
        ev.vt / 1_000
    } else {
        ev.seq
    }
}

fn chrome_name(ev: &CausalEvent) -> String {
    match &ev.action {
        Some(a) => format!("{} {a}", ev.kind.label()),
        None => ev.kind.label().to_string(),
    }
}

/// Renders a trace as Chrome `trace_event` JSON (load in
/// `chrome://tracing` or Perfetto): one process per case, one lane
/// (`tid`) per node, `B`/`E` spans for node steps, flow arrows from
/// each send to its recvs — the space-time diagram of the case.
pub fn chrome_trace(events: &[CausalEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |entry: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&entry);
    };
    for ev in events {
        let pid = ev.case;
        // The scheduler itself gets lane 0; nodes are 1-based ids.
        let tid = ev.node.unwrap_or(0);
        let ts = chrome_ts(ev);
        let name = chrome_name(ev);
        let mut esc_name = String::new();
        push_escaped(&mut esc_name, &name);
        let common = format!("\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"name\":{esc_name}");
        match ev.kind {
            CausalKind::StepBegin => emit(format!("{{\"ph\":\"B\",\"cat\":\"step\",{common}}}")),
            CausalKind::StepEnd => emit(format!("{{\"ph\":\"E\",\"cat\":\"step\",{common}}}")),
            CausalKind::Send => {
                emit(format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"msg\",{common}}}"
                ));
                if let Some(msg) = ev.msg {
                    emit(format!(
                        "{{\"ph\":\"s\",\"cat\":\"msg\",\"id\":{msg},{common}}}"
                    ));
                }
            }
            CausalKind::Recv => {
                emit(format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"msg\",{common}}}"
                ));
                if let Some(msg) = ev.msg {
                    emit(format!(
                        "{{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"msg\",\"id\":{msg},{common}}}"
                    ));
                }
            }
            _ => emit(format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"trace\",{common}}}"
            )),
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_tags_zero() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let tag = t.on_send(1, 2, 0);
        assert_eq!(tag, MsgTag::default());
        assert!(!tag.is_traced());
        t.on_recv(2, 1, tag, 0);
        t.release(0, 1, "A", 0);
        t.crash(1, 0);
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn send_recv_link_through_msg_id_and_lamport_advances() {
        let t = Tracer::for_case(3);
        t.release(0, 1, "Vote", 10);
        let tag = t.on_send(1, 2, 20);
        assert!(tag.is_traced());
        assert_eq!(tag.trace, 4);
        t.on_recv(2, 1, tag, 30);
        let events = t.take_events();
        assert_eq!(events.len(), 3);
        let send = &events[1];
        let recv = &events[2];
        assert_eq!(send.kind, CausalKind::Send);
        assert_eq!(recv.kind, CausalKind::Recv);
        assert_eq!(send.msg, recv.msg, "causal edge: shared msg id");
        assert_eq!(send.lamport, Some(1));
        assert_eq!(recv.lamport, Some(2), "recv = max(local, sender)+1");
        // Both inherit the release's step context.
        for ev in [send, recv] {
            assert_eq!(ev.step, Some(0));
            assert_eq!(ev.action.as_deref(), Some("Vote"));
        }
    }

    #[test]
    fn edge_path_stamps_the_spec_edge_mapping() {
        let t = Tracer::for_case(0);
        t.set_edge_path(vec![7, 9]);
        t.release(0, 1, "A", 0);
        t.on_send(1, 2, 0);
        t.external(1, "Crash", 0);
        let events = t.take_events();
        assert_eq!(events[0].edge, Some(7));
        assert_eq!(events[1].edge, Some(7), "net event inherits step edge");
        assert_eq!(events[2].edge, Some(9));
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let t = Tracer::for_case(1);
        t.begin_case("abcd", 0);
        t.release(0, 2, "Append \"x\"", 100);
        let tag = t.on_send(2, 3, 150);
        t.on_duplicate(3, 2, tag, 160);
        t.on_drop(3, 2, tag, 170, "partition");
        t.step_begin(2, 180);
        t.step_end(2, 200);
        t.crash(3, 210);
        t.end_case("passed", 300);
        let events = t.take_events();
        let text = to_jsonl(&events);
        let (back, issues) = parse_trace(&text);
        assert!(issues.is_empty(), "{issues:?}");
        assert_eq!(back, events);
    }

    #[test]
    fn parse_trace_salvages_torn_lines() {
        let good = Tracer::for_case(0);
        good.release(0, 1, "A", 0);
        let text = to_jsonl(&good.take_events());
        // A garbage middle line and a truncated final line are both
        // reported and skipped; intact lines load.
        let dirty = format!("{text}not json\n{}", &text[..text.len() - 3]);
        let (events, issues) = parse_trace(&dirty);
        assert_eq!(events.len(), 1);
        assert_eq!(issues.len(), 2, "{issues:?}");
        assert!(issues[1].contains("truncated final line"));
    }

    #[test]
    fn same_call_sequence_is_byte_identical() {
        let run = || {
            let t = Tracer::for_case(5);
            t.set_edge_path(vec![1, 2, 3]);
            t.begin_case("ffff", 0);
            for step in 0..3u64 {
                t.release(step, 1 + step % 2, "Act", step * 100);
                let tag = t.on_send(1, 2, step * 100 + 10);
                t.on_recv(2, 1, tag, step * 100 + 20);
            }
            t.end_case("passed", 400);
            to_jsonl(&t.take_events())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn strip_virtual_time_zeroes_only_vt() {
        let t = Tracer::for_case(0);
        t.release(0, 1, "A", 999);
        let events = t.take_events();
        let stripped = strip_virtual_time(&events);
        assert_eq!(stripped[0].vt, 0);
        assert_eq!(stripped[0].action, events[0].action);
    }

    #[test]
    fn chrome_trace_is_flat_json_with_flow_arrows() {
        let t = Tracer::for_case(0);
        t.release(0, 1, "A", 1000);
        t.step_begin(1, 1000);
        let tag = t.on_send(1, 2, 2000);
        t.step_end(1, 3000);
        t.step_begin(2, 3000);
        t.on_recv(2, 1, tag, 4000);
        t.step_end(2, 5000);
        let json = chrome_trace(&t.take_events());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"s\""), "flow start: {json}");
        assert!(json.contains("\"ph\":\"f\""), "flow end");
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
        // Every event names pid/tid/ts — the strict-parser contract
        // the CI smoke validates.
        assert!(!json.contains("\"pid\":,"));
    }

    #[test]
    fn append_trace_writes_parseable_lines() {
        let dir = std::env::temp_dir().join(format!("mocket-causal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(TRACE_FILE_NAME);
        let t = Tracer::for_case(0);
        t.begin_case("aaaa", 0);
        let first = t.take_events();
        append_trace(&path, &first).unwrap();
        let t2 = Tracer::for_case(1);
        t2.begin_case("bbbb", 0);
        append_trace(&path, &t2.take_events()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let (events, issues) = parse_trace(&text);
        assert!(issues.is_empty(), "{issues:?}");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].case, 0);
        assert_eq!(events[1].case, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
