//! The end-of-run summary (`run-summary.json`).
//!
//! One flat JSON object, one key per line, keys emitted in a fixed
//! order. Every wall-clock-derived key is prefixed `wall_`; everything
//! else is byte-identical across same-seed runs, so two summaries can
//! be compared with [`strip_wall_clock`].

use std::collections::BTreeMap;

use std::io;
use std::path::{Path, PathBuf};

use crate::json::{push_escaped, push_f64};
use crate::metrics::{MetricsSnapshot, TIMING_PREFIX};

/// File name of the summary inside a campaign directory.
pub const RUN_SUMMARY_FILE_NAME: &str = "run-summary.json";

/// Everything a campaign reports when it finishes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Spec name (module name of the checked spec).
    pub spec: String,
    /// Serialized fault plan (seed and knobs), when faults were on.
    pub fault_plan: Option<String>,
    /// Distinct states in the state-space graph.
    pub states: u64,
    /// Edges in the state-space graph.
    pub edges: u64,
    /// Coverage-target edges actually visited by the traversal.
    pub coverage_edges_visited: u64,
    /// Total coverage-target edges (after POR exclusion).
    pub coverage_edge_targets: u64,
    /// `visited / targets` exactly as the traversal reports it
    /// (1.0 when there are no targets).
    pub coverage: f64,
    /// Edges POR removed from the coverage target set.
    pub por_excluded_edges: u64,
    /// Test cases selected for execution.
    pub cases_selected: u64,
    /// Test cases actually executed this run.
    pub cases_run: u64,
    /// Cases that passed.
    pub cases_passed: u64,
    /// Cases with a confirmed failure.
    pub cases_failed: u64,
    /// Cases quarantined as flaky.
    pub cases_quarantined: u64,
    /// Cases skipped because the campaign journal had them completed.
    pub cases_skipped_from_journal: u64,
    /// Journal anomalies detected on resume (truncated lines etc.).
    pub journal_issues: u64,
    /// Confirmed bugs by failure kind (`Divergence`, `Missing action`…).
    pub bugs_by_kind: BTreeMap<String, u64>,
    /// Confirmed bugs by determinism verdict (`deterministic`/`flaky`).
    pub bugs_by_determinism: BTreeMap<String, u64>,
    /// Full metrics snapshot; timing metrics are segregated on export.
    pub metrics: MetricsSnapshot,
    /// Wall-clock seconds in the model-checking stage.
    pub wall_check_seconds: f64,
    /// Wall-clock seconds executing test cases.
    pub wall_test_seconds: f64,
    /// Wall-clock seconds for the whole run.
    pub wall_total_seconds: f64,
}

impl RunSummary {
    /// Renders the summary: a flat JSON object, one key per line.
    /// Deterministic keys come first, then every `wall_`-prefixed key
    /// (plain wall-clock fields followed by flattened
    /// [`TIMING_PREFIX`] metrics).
    pub fn to_json(&self) -> String {
        let mut det: Vec<(String, String)> = vec![
            ("schema_version".into(), "1".into()),
            ("spec".into(), json_str(&self.spec)),
            (
                "fault_plan".into(),
                match &self.fault_plan {
                    Some(p) => json_str(p),
                    None => "null".into(),
                },
            ),
            ("states".into(), self.states.to_string()),
            ("edges".into(), self.edges.to_string()),
            (
                "coverage_edges_visited".into(),
                self.coverage_edges_visited.to_string(),
            ),
            (
                "coverage_edge_targets".into(),
                self.coverage_edge_targets.to_string(),
            ),
            ("coverage".into(), json_f64(self.coverage)),
            (
                "por_excluded_edges".into(),
                self.por_excluded_edges.to_string(),
            ),
            ("cases_selected".into(), self.cases_selected.to_string()),
            ("cases_run".into(), self.cases_run.to_string()),
            ("cases_passed".into(), self.cases_passed.to_string()),
            ("cases_failed".into(), self.cases_failed.to_string()),
            (
                "cases_quarantined".into(),
                self.cases_quarantined.to_string(),
            ),
            (
                "cases_skipped_from_journal".into(),
                self.cases_skipped_from_journal.to_string(),
            ),
            ("journal_issues".into(), self.journal_issues.to_string()),
        ];
        for (kind, n) in &self.bugs_by_kind {
            det.push((format!("bugs_by_kind.{kind}"), n.to_string()));
        }
        for (kind, n) in &self.bugs_by_determinism {
            det.push((format!("bugs_by_determinism.{kind}"), n.to_string()));
        }
        // Deterministic metrics, flattened and name-sorted.
        let mut metric_entries = self.metrics.deterministic().flat_json_entries();
        metric_entries.sort();
        det.extend(metric_entries);

        // Wall-clock section: plain fields, then timing metrics. Every
        // key gets the `wall_` prefix so strip_wall_clock can filter
        // on the key alone.
        let mut wall: Vec<(String, String)> = vec![
            (
                "wall_check_seconds".into(),
                json_f64(self.wall_check_seconds),
            ),
            ("wall_test_seconds".into(), json_f64(self.wall_test_seconds)),
            (
                "wall_total_seconds".into(),
                json_f64(self.wall_total_seconds),
            ),
        ];
        let timing_only = MetricsSnapshot {
            counters: filter_timing(&self.metrics.counters),
            gauges: filter_timing(&self.metrics.gauges),
            histograms: filter_timing(&self.metrics.histograms),
        };
        let mut timing_entries = timing_only.flat_json_entries();
        timing_entries.sort();
        wall.extend(
            timing_entries
                .into_iter()
                .map(|(k, v)| (format!("wall_{k}"), v)),
        );

        let mut out = String::from("{\n");
        let total = det.len() + wall.len();
        for (i, (k, v)) in det.into_iter().chain(wall).enumerate() {
            out.push_str("  ");
            push_escaped(&mut out, &k);
            out.push_str(": ");
            out.push_str(&v);
            if i + 1 < total {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }

    /// Writes `run-summary.json` under `dir` (atomic temp + rename
    /// with size verification via [`crate::fsio`], so a crash or an
    /// injected fault never leaves a torn summary). Returns the final
    /// path.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        crate::fsio::write_atomic(
            dir,
            RUN_SUMMARY_FILE_NAME,
            self.to_json().as_bytes(),
            "summary.write",
            &crate::fsio::RetryPolicy::io(),
        )
    }
}

fn filter_timing<V: Clone>(map: &BTreeMap<String, V>) -> BTreeMap<String, V> {
    map.iter()
        .filter(|(k, _)| k.starts_with(TIMING_PREFIX))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

fn json_str(s: &str) -> String {
    let mut out = String::new();
    push_escaped(&mut out, s);
    out
}

fn json_f64(v: f64) -> String {
    let mut out = String::new();
    push_f64(&mut out, v);
    out
}

/// Drops every `wall_`-prefixed line from a rendered summary (or any
/// one-key-per-line JSON). The result is for byte comparison between
/// same-seed runs, not for parsing — a trailing comma may remain where
/// wall-clock lines were removed.
pub fn strip_wall_clock(json: &str) -> String {
    json.lines()
        .filter(|line| !line.trim_start().starts_with("\"wall_"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use std::fs;

    fn sample(wall: f64) -> RunSummary {
        let m = MetricsRegistry::default();
        m.add("checker.distinct_states", 12);
        m.observe("timing.runner.release_latency_ms", wall);
        let mut s = RunSummary {
            spec: "Counter".into(),
            states: 12,
            edges: 30,
            coverage_edges_visited: 28,
            coverage_edge_targets: 28,
            coverage: 1.0,
            cases_selected: 4,
            cases_run: 4,
            cases_passed: 3,
            cases_failed: 1,
            metrics: m.snapshot(),
            wall_total_seconds: wall,
            ..RunSummary::default()
        };
        s.bugs_by_kind.insert("Divergence".into(), 1);
        s.bugs_by_determinism.insert("deterministic".into(), 1);
        s
    }

    #[test]
    fn one_key_per_line_and_wall_prefixed() {
        let json = sample(0.25).to_json();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.first(), Some(&"{"));
        assert_eq!(lines.last(), Some(&"}"));
        // Every body line holds exactly one key.
        for line in &lines[1..lines.len() - 1] {
            assert_eq!(line.matches("\": ").count(), 1, "line {line:?}");
        }
        assert!(json.contains("\"bugs_by_kind.Divergence\": 1"));
        assert!(json.contains("\"metric.checker.distinct_states\": 12"));
        // Timing metrics appear only under wall_.
        assert!(json.contains("\"wall_metric.timing.runner.release_latency_ms.count\": 1"));
        assert!(!json.contains("\n  \"metric.timing."));
    }

    #[test]
    fn strip_wall_clock_makes_summaries_comparable() {
        let a = sample(0.111).to_json();
        let b = sample(9.999).to_json();
        assert_ne!(a, b);
        assert_eq!(strip_wall_clock(&a), strip_wall_clock(&b));
        // The deterministic portion still carries real content.
        assert!(strip_wall_clock(&a).contains("\"coverage\": 1"));
    }

    #[test]
    fn write_to_is_atomic_and_idempotent() {
        let dir = std::env::temp_dir().join(format!("mocket-obs-sum-{}", std::process::id()));
        let s = sample(1.0);
        let p1 = s.write_to(&dir).unwrap();
        let first = fs::read_to_string(&p1).unwrap();
        let p2 = s.write_to(&dir).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(fs::read_to_string(&p2).unwrap(), first);
        assert!(!dir.join(format!("{RUN_SUMMARY_FILE_NAME}.tmp")).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
