//! Minimal hand-rolled JSON emission.
//!
//! The observability layer writes JSON but must not pull in a serde
//! stack, so the tiny subset needed (escaped strings, numbers, flat
//! objects) lives here. Floats use Rust's shortest-roundtrip `Display`,
//! which is deterministic across platforms.

/// Appends `s` to `out` as a quoted JSON string with full escaping.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float so the output is valid JSON (`NaN`/`inf` have no
/// JSON spelling; they become `null`).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_hostile_strings() {
        let mut out = String::new();
        push_escaped(&mut out, "a\"b\\c\nd\re\tf\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\re\\tf\\u0001\"");
    }

    #[test]
    fn floats_are_json_safe() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        out.push(' ');
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "1.5 null null");
    }
}
