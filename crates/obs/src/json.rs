//! Minimal hand-rolled JSON emission and parsing.
//!
//! The observability layer writes JSON but must not pull in a serde
//! stack, so the tiny subset needed (escaped strings, numbers, flat
//! objects) lives here. Floats use Rust's shortest-roundtrip `Display`,
//! which is deterministic across platforms. The parser side handles
//! exactly the flat scalar objects this crate emits — one JSON object
//! per line, string keys, scalar values — which is what
//! `campaign-history.jsonl` round-trips through.

/// Appends `s` to `out` as a quoted JSON string with full escaping.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float so the output is valid JSON (`NaN`/`inf` have no
/// JSON spelling; they become `null`).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// A scalar JSON value as parsed from a flat object. Numbers keep
/// their raw text so `u64` counters survive beyond the `f64` mantissa.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    /// A number, stored as its raw JSON text.
    Num(String),
    /// An unescaped string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonScalar {
    /// The value as an unsigned integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonScalar::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a float (`null` maps back to NaN, the emission
    /// direction of [`push_f64`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonScalar::Num(raw) => raw.parse().ok(),
            JsonScalar::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"key": scalar, ...}`) into its
/// key/value pairs in document order. Nested objects and arrays are
/// rejected — the obs layer never emits them in line-oriented files.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonScalar)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_scalar()?;
            out.push((key, value));
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", p.pos)),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<JsonScalar, String> {
        match self.peek().ok_or("missing value")? {
            b'"' => Ok(JsonScalar::Str(self.parse_string()?)),
            b't' => self.parse_lit("true", JsonScalar::Bool(true)),
            b'f' => self.parse_lit("false", JsonScalar::Bool(false)),
            b'n' => self.parse_lit("null", JsonScalar::Null),
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                // Validate now so `as_u64`/`as_f64` failures can only
                // mean a type mismatch, not a malformed number.
                raw.parse::<f64>()
                    .map_err(|_| format!("bad number {raw:?}"))?;
                Ok(JsonScalar::Num(raw.to_string()))
            }
            b'{' | b'[' => Err("nested values are not supported".into()),
            other => Err(format!("unexpected byte '{}'", other as char)),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: JsonScalar) -> Result<JsonScalar, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected literal {lit:?} at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_hostile_strings() {
        let mut out = String::new();
        push_escaped(&mut out, "a\"b\\c\nd\re\tf\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\re\\tf\\u0001\"");
    }

    #[test]
    fn floats_are_json_safe() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        out.push(' ');
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "1.5 null null");
    }

    #[test]
    fn parses_flat_objects() {
        let pairs =
            parse_flat_object(r#"{"a":1,"b":"x\ty","c":true,"d":null,"e":-2.5,"f":18446744073709551615}"#)
                .unwrap();
        assert_eq!(pairs[0], ("a".into(), JsonScalar::Num("1".into())));
        assert_eq!(pairs[1], ("b".into(), JsonScalar::Str("x\ty".into())));
        assert_eq!(pairs[2], ("c".into(), JsonScalar::Bool(true)));
        assert_eq!(pairs[3], ("d".into(), JsonScalar::Null));
        assert_eq!(pairs[4].1.as_f64(), Some(-2.5));
        // u64 beyond the f64 mantissa survives untouched.
        assert_eq!(pairs[5].1.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_empty_and_spaced_objects() {
        assert!(parse_flat_object("{}").unwrap().is_empty());
        let pairs = parse_flat_object("{ \"k\" : 7 }").unwrap();
        assert_eq!(pairs, vec![("k".into(), JsonScalar::Num("7".into()))]);
    }

    #[test]
    fn round_trips_emitted_escapes() {
        let mut out = String::new();
        out.push('{');
        push_escaped(&mut out, "k");
        out.push(':');
        push_escaped(&mut out, "a\"b\\c\nd\re\tf\u{1}");
        out.push('}');
        let pairs = parse_flat_object(&out).unwrap();
        assert_eq!(pairs[0].1.as_str(), Some("a\"b\\c\nd\re\tf\u{1}"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_flat_object("{\"a\":1").is_err());
        assert!(parse_flat_object("{\"a\":[1]}").is_err());
        assert!(parse_flat_object("{\"a\":{}}").is_err());
        assert!(parse_flat_object("{\"a\":1} extra").is_err());
        assert!(parse_flat_object("{\"a\":1e}").is_err());
    }
}
