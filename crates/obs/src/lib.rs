//! Campaign observability for Mocket.
//!
//! Three layers, all dependency-free:
//!
//! - **Events** ([`Event`], [`Recorder`], [`Obs`]): structured,
//!   append-only trace of what a campaign did — model-checking waves,
//!   pipeline stages, per-case verdicts. Sinks are pluggable; the
//!   standard one writes one JSON object per line to `events.jsonl`
//!   inside the campaign directory.
//! - **Metrics** ([`MetricsRegistry`]): named counters, gauges and
//!   histograms updated from anywhere (worker threads included —
//!   updates are commutative, so thread interleaving cannot change the
//!   final values).
//! - **Summary** ([`RunSummary`]): a single `run-summary.json` written
//!   next to the replay artifacts at the end of a run: coverage, bug
//!   counts by kind and determinism, effort counters, and wall-clock
//!   timings.
//!
//! # Determinism contract
//!
//! Mocket's replay guarantees are byte-exact, and observability must
//! not weaken them. The rules:
//!
//! - Events carry **logical timestamps** (wave numbers, step counters,
//!   case indices) — never wall-clock time.
//! - Events are recorded only from sequential control points (the
//!   pipeline thread, the checker's merge loop). Worker threads touch
//!   metrics only.
//! - Wall-clock time is confined to metric names under the
//!   [`TIMING_PREFIX`] and to `RunSummary` keys prefixed `wall_`.
//!   Everything else in `events.jsonl` and `run-summary.json` is
//!   byte-identical across same-seed runs; see
//!   [`strip_wall_clock`](summary::strip_wall_clock) for comparing
//!   summaries.

mod event;
mod json;
mod metrics;
pub mod summary;

pub use event::{
    Event, FieldValue, JsonlRecorder, MemoryRecorder, NullRecorder, Obs, Recorder, Span,
    EVENTS_FILE_NAME,
};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot, TIMING_PREFIX};
pub use summary::{strip_wall_clock, RunSummary, RUN_SUMMARY_FILE_NAME};
