//! Campaign observability for Mocket.
//!
//! Three layers, all dependency-free:
//!
//! - **Events** ([`Event`], [`Recorder`], [`Obs`]): structured,
//!   append-only trace of what a campaign did — model-checking waves,
//!   pipeline stages, per-case verdicts. Sinks are pluggable; the
//!   standard one writes one JSON object per line to `events.jsonl`
//!   inside the campaign directory.
//! - **Metrics** ([`MetricsRegistry`]): named counters, gauges and
//!   histograms updated from anywhere (worker threads included —
//!   updates are commutative, so thread interleaving cannot change the
//!   final values).
//! - **Summary** ([`RunSummary`]): a single `run-summary.json` written
//!   next to the replay artifacts at the end of a run: coverage, bug
//!   counts by kind and determinism, effort counters, and wall-clock
//!   timings.
//!
//! On top sits the **insight layer**, which turns the recorded
//! telemetry into explanations:
//!
//! - **Divergence explanations** ([`DivergenceExplanation`]): where a
//!   failing case departed from the verified path, the per-variable
//!   structured diff, and the nearest-verified-state verdict. Computed
//!   by `mocket-core` (which can see the state graph), carried here as
//!   a pure-string model so it can ride in replay artifacts.
//! - **Coverage analytics** ([`CoverageMap`]): per-edge/per-action hit
//!   counts accumulated over executed cases, plus the uncovered-edge
//!   listing the traversal generator consumes next run.
//! - **Cross-run reports** ([`CampaignHistory`], [`render_text`],
//!   [`render_html`]): an append-only `campaign-history.jsonl` of
//!   per-run records and deterministic text/HTML trend renderers
//!   (`mocket-cli report`).
//!
//! # Determinism contract
//!
//! Mocket's replay guarantees are byte-exact, and observability must
//! not weaken them. The rules:
//!
//! - Events carry **logical timestamps** (wave numbers, step counters,
//!   case indices) — never wall-clock time.
//! - Events are recorded only from sequential control points (the
//!   pipeline thread, the checker's merge loop). Worker threads touch
//!   metrics only.
//! - Wall-clock time is confined to metric names under the
//!   [`TIMING_PREFIX`] and to `RunSummary` keys prefixed `wall_`.
//!   Everything else in `events.jsonl` and `run-summary.json` is
//!   byte-identical across same-seed runs; see
//!   [`strip_wall_clock`](summary::strip_wall_clock) for comparing
//!   summaries.

pub mod causal;
pub mod coverage;
mod event;
pub mod fsio;
mod json;
mod metrics;
pub mod report;
pub mod summary;
pub mod trace;

pub use causal::{CausalEvent, CausalKind, MsgTag, Tracer, TRACE_FILE_NAME};
pub use coverage::{
    parse_uncovered_listing, CoverageMap, COVERAGE_FILE_NAME, UNCOVERED_FILE_NAME,
};
pub use event::{
    Event, FieldValue, JsonlRecorder, MemoryRecorder, NullRecorder, Obs, ObsDirError, Recorder,
    Span, EVENTS_FILE_NAME,
};
pub use fsio::{
    FaultInjector, FaultKind, RetryPolicy, MOCKET_FSIO_FAULTS_ENV, MOCKET_FSIO_FAULT_LOG_ENV,
};
pub use json::{parse_flat_object, JsonScalar};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot, TIMING_PREFIX};
pub use report::{
    render_html, render_text, CampaignHistory, CampaignRecord, HistoryIssue,
    CAMPAIGN_HISTORY_FILE_NAME,
};
pub use summary::{strip_wall_clock, RunSummary, RUN_SUMMARY_FILE_NAME};
pub use trace::{sanitize, DivergenceExplanation, NearestVerdict, VarDiff};
