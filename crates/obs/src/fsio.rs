//! Fault-injecting filesystem layer shared by every mocket file
//! protocol.
//!
//! Every durable write in the campaign harness — leases, plans,
//! journals, quarantine logs, merged canonical outputs, obs sinks —
//! flows through the helpers in this module instead of calling
//! `std::fs` directly. That buys two things:
//!
//! 1. **One crash-consistency discipline.** [`write_atomic`] is
//!    temp-file + size-verify + fsync + rename; [`append_line`] is
//!    append-only with rollback of partial appends and newline repair.
//!    Callers pick a policy, not an implementation.
//! 2. **Deterministic chaos.** A seeded [`FaultInjector`] can be armed
//!    (via [`MOCKET_FSIO_FAULTS_ENV`] or in-process) to inject torn
//!    writes, short writes, ENOSPC, EIO, rename failures and dropped
//!    fsyncs at *named fault points*. Each point keeps its own
//!    operation counter, and the decision for operation `n` at point
//!    `p` is a pure function of `(seed, p, n)` — so a given seed
//!    replays the same fault schedule, and every chaos failure is
//!    reproducible.
//!
//! Transient failures (injected or real) are absorbed by the unified
//! [`RetryPolicy`]: bounded attempts with exponential backoff, and a
//! longer pause-and-backoff for ENOSPC so a briefly full disk degrades
//! a campaign instead of aborting it.

use std::collections::HashMap;
use std::fs;
use std::fs::OpenOptions;
use std::io;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Environment variable that arms the global fault injector.
///
/// Format: `seed=<u64> rate=<per-1024> [kinds=torn,short,enospc,eio,rename,fsync]
/// [points=merge.write,plan.write]` — whitespace-separated `key=value`
/// pairs. `rate` is the per-operation fault probability in 1/1024
/// units; `kinds`/`points` restrict which faults fire and where
/// (defaults: all kinds, all points).
pub const MOCKET_FSIO_FAULTS_ENV: &str = "MOCKET_FSIO_FAULTS";

/// Environment variable naming a file that receives one line per
/// injected fault (`chaos: point=<p> op=<n> kind=<k>`), appended
/// best-effort and never through the fault layer itself. Tests use it
/// to assert which fault kinds actually fired.
pub const MOCKET_FSIO_FAULT_LOG_ENV: &str = "MOCKET_FSIO_FAULT_LOG";

/// The injectable filesystem fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A prefix of the payload reaches the file, then the write errors
    /// (a crash mid-write as the caller sees it).
    TornWrite,
    /// A prefix of the payload reaches the file and the write reports
    /// success — only self-verification (size check) can catch it.
    ShortWrite,
    /// The write fails with `ENOSPC` after a partial payload.
    Enospc,
    /// The write fails with `EIO` after a partial payload.
    Eio,
    /// The payload is written intact but the final rename fails.
    RenameFail,
    /// The fsync is silently skipped (only observable as a logged
    /// fault — it weakens durability, not the bytes).
    DropFsync,
}

impl FaultKind {
    /// Every kind, in a stable order (used for seed → kind selection).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::TornWrite,
        FaultKind::ShortWrite,
        FaultKind::Enospc,
        FaultKind::Eio,
        FaultKind::RenameFail,
        FaultKind::DropFsync,
    ];

    /// Stable name, as used in config strings and the fault log.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::TornWrite => "torn",
            FaultKind::ShortWrite => "short",
            FaultKind::Enospc => "enospc",
            FaultKind::Eio => "eio",
            FaultKind::RenameFail => "rename",
            FaultKind::DropFsync => "fsync",
        }
    }

    /// Inverse of [`FaultKind::as_str`].
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.as_str() == s)
    }
}

/// One fault decision: which kind fired and the raw roll that chose
/// it (used to derive deterministic partial-write lengths).
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// The fault kind to apply.
    pub kind: FaultKind,
    /// Decision hash; pure function of `(seed, point, op index)`.
    pub roll: u64,
}

impl Fault {
    /// Deterministic cut point in `[0, len)` for partial writes
    /// (never the full length — a "partial" write of every byte would
    /// be indistinguishable from success).
    fn cut(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        ((self.roll >> 20) % len as u64) as usize
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, per-fault-point deterministic fault source.
///
/// Each named point has its own operation counter; the decision for a
/// point's `n`-th operation depends only on `(seed, point, n)`. Two
/// injectors built from the same config produce identical decision
/// sequences for identical per-point query sequences, regardless of
/// how operations at *different* points interleave — that is the
/// replay contract chaos tests rely on.
pub struct FaultInjector {
    seed: u64,
    /// Fault probability per operation, in 1/1024 units.
    rate: u32,
    kinds: Vec<FaultKind>,
    /// `None` = all points eligible.
    points: Option<Vec<String>>,
    counters: Mutex<HashMap<String, u64>>,
    log_path: Option<PathBuf>,
}

impl FaultInjector {
    /// An injector firing every enabled kind at `rate`/1024 per
    /// operation at every point.
    pub fn new(seed: u64, rate: u32) -> FaultInjector {
        FaultInjector {
            seed,
            rate: rate.min(1024),
            kinds: FaultKind::ALL.to_vec(),
            points: None,
            counters: Mutex::new(HashMap::new()),
            log_path: None,
        }
    }

    /// Restricts which fault kinds may fire.
    pub fn with_kinds(mut self, kinds: Vec<FaultKind>) -> FaultInjector {
        self.kinds = kinds;
        self
    }

    /// Restricts which fault points are eligible.
    pub fn with_points(mut self, points: Vec<String>) -> FaultInjector {
        self.points = Some(points);
        self
    }

    /// Appends each injected fault to `path` (one line per fault).
    pub fn with_log(mut self, path: PathBuf) -> FaultInjector {
        self.log_path = Some(path);
        self
    }

    /// Parses a [`MOCKET_FSIO_FAULTS_ENV`]-style config string.
    pub fn from_config(config: &str) -> Result<FaultInjector, String> {
        let mut seed = None;
        let mut rate = None;
        let mut kinds = None;
        let mut points = None;
        for part in config.split_whitespace() {
            let Some((key, value)) = part.split_once('=') else {
                return Err(format!("fsio fault config: not key=value: `{part}`"));
            };
            match key {
                "seed" => {
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("fsio fault config: bad seed `{value}`"))?,
                    )
                }
                "rate" => {
                    rate = Some(
                        value
                            .parse::<u32>()
                            .map_err(|_| format!("fsio fault config: bad rate `{value}`"))?,
                    )
                }
                "kinds" => {
                    let parsed: Option<Vec<FaultKind>> =
                        value.split(',').map(FaultKind::parse).collect();
                    kinds = Some(
                        parsed.ok_or_else(|| format!("fsio fault config: bad kinds `{value}`"))?,
                    );
                }
                "points" => {
                    points = Some(value.split(',').map(str::to_string).collect::<Vec<_>>())
                }
                other => return Err(format!("fsio fault config: unknown key `{other}`")),
            }
        }
        let mut inj = FaultInjector::new(
            seed.ok_or("fsio fault config: missing seed")?,
            rate.ok_or("fsio fault config: missing rate")?,
        );
        if let Some(kinds) = kinds {
            if kinds.is_empty() {
                return Err("fsio fault config: empty kinds list".into());
            }
            inj = inj.with_kinds(kinds);
        }
        if let Some(points) = points {
            inj = inj.with_points(points);
        }
        Ok(inj)
    }

    /// Decides whether this point's next operation faults, advancing
    /// the point's counter. `None` = the operation proceeds cleanly.
    pub fn decide(&self, point: &str) -> Option<Fault> {
        let op = {
            let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            let n = counters.entry(point.to_string()).or_insert(0);
            let op = *n;
            *n += 1;
            op
        };
        if let Some(points) = &self.points {
            if !points.iter().any(|p| p == point) {
                return None;
            }
        }
        if self.kinds.is_empty() {
            return None;
        }
        let roll = splitmix64(self.seed ^ fnv1a64(point.as_bytes()).wrapping_add(op));
        if (roll % 1024) as u32 >= self.rate {
            return None;
        }
        let kind = self.kinds[((roll >> 10) as usize) % self.kinds.len()];
        let fault = Fault { kind, roll };
        self.log(point, op, kind);
        Some(fault)
    }

    fn log(&self, point: &str, op: u64, kind: FaultKind) {
        let Some(path) = &self.log_path else { return };
        // Never route the fault log through the fault layer: plain
        // O_APPEND, errors dropped.
        if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(f, "chaos: point={point} op={op} kind={}", kind.as_str());
        }
    }
}

/// The process-global injector, armed once from the environment.
/// `None` when [`MOCKET_FSIO_FAULTS_ENV`] is unset or unparseable
/// (a bad config disarms rather than poisons every write).
pub fn armed() -> Option<&'static FaultInjector> {
    static GLOBAL: OnceLock<Option<FaultInjector>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let config = std::env::var(MOCKET_FSIO_FAULTS_ENV).ok()?;
            let mut inj = FaultInjector::from_config(&config)
                .map_err(|e| eprintln!("warning: {MOCKET_FSIO_FAULTS_ENV} ignored: {e}"))
                .ok()?;
            if let Ok(log) = std::env::var(MOCKET_FSIO_FAULT_LOG_ENV) {
                inj = inj.with_log(PathBuf::from(log));
            }
            Some(inj)
        })
        .as_ref()
}

fn decide(point: &str) -> Option<Fault> {
    armed().and_then(|inj| inj.decide(point))
}

/// True when `err` is an out-of-space condition (real or injected) —
/// the one I/O failure that deserves a longer pause before retrying.
pub fn is_enospc(err: &io::Error) -> bool {
    err.raw_os_error() == Some(28)
}

fn injected_errno(kind: FaultKind) -> io::Error {
    match kind {
        FaultKind::Enospc => io::Error::from_raw_os_error(28),
        _ => io::Error::from_raw_os_error(5),
    }
}

/// The unified retry policy for transient failures: per-case SUT
/// retries (pipeline), supervisor worker restarts, lease steals, and
/// every fault-injectable filesystem operation share this shape.
///
/// `attempts` is the *total* number of tries; retry `n` sleeps
/// `backoff * 2^n`, capped at `max_backoff`. ENOSPC failures sleep
/// 8× longer (pause-and-backoff: a full disk needs an operator or a
/// reaper, not a hot loop — but it also should not kill a campaign
/// that a cleanup would save).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (>= 1).
    pub attempts: usize,
    /// Base delay between attempts.
    pub backoff: Duration,
    /// Upper bound on any single delay (pre-ENOSPC-multiplier).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 2,
            backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// Single attempt, no backoff.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The standard policy for local filesystem operations: enough
    /// attempts to ride out an injected fault burst or a transient
    /// kernel error, short enough not to mask a dead disk.
    pub fn io() -> RetryPolicy {
        RetryPolicy {
            attempts: 6,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(400),
        }
    }

    /// Delay before retry number `retry` (0-based), `enospc`-aware.
    pub fn delay(&self, retry: usize, enospc: bool) -> Duration {
        let shift = retry.min(16) as u32;
        let base = self.backoff.saturating_mul(1u32 << shift.min(10));
        let capped = base.min(self.max_backoff).max(self.backoff);
        if enospc {
            capped.saturating_mul(8).max(Duration::from_millis(40))
        } else {
            capped
        }
    }

    /// Runs `op` until it succeeds or the attempt budget is spent,
    /// sleeping [`RetryPolicy::delay`] between tries.
    pub fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let attempts = self.attempts.max(1);
        let mut last_err = None;
        for retry in 0..attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if retry + 1 < attempts {
                        std::thread::sleep(self.delay(retry, is_enospc(&e)));
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("retry budget of 0 attempts")))
    }
}

/// Writes `contents` through the fault point, honoring an injected
/// fault's kind. Returns the number of bytes that actually reached
/// the file (callers verify).
fn faulty_write(f: &mut fs::File, contents: &[u8], fault: Option<Fault>) -> io::Result<usize> {
    match fault {
        None | Some(Fault { kind: FaultKind::DropFsync | FaultKind::RenameFail, .. }) => {
            f.write_all(contents)?;
            f.flush()?;
            Ok(contents.len())
        }
        Some(fault @ Fault { kind: FaultKind::ShortWrite, .. }) => {
            let cut = fault.cut(contents.len());
            f.write_all(&contents[..cut])?;
            f.flush()?;
            // A short write *reports success*; only size verification
            // downstream can notice.
            Ok(cut)
        }
        Some(fault) => {
            let cut = fault.cut(contents.len());
            f.write_all(&contents[..cut])?;
            f.flush()?;
            Err(injected_errno(fault.kind))
        }
    }
}

fn fsync(f: &fs::File, fault: Option<Fault>) -> io::Result<()> {
    if matches!(fault, Some(Fault { kind: FaultKind::DropFsync, .. })) {
        return Ok(()); // silently weakened durability — logged, not fatal
    }
    f.sync_all()
}

/// Atomic whole-file write: temp file (pid-suffixed, so concurrent
/// writers cannot collide), payload, **size verification** (catches
/// short writes the OS reported as success), fsync, rename. On any
/// failure the temp file is removed and the operation retried under
/// `retry`; the destination is never observable half-written.
pub fn write_atomic(
    dir: &Path,
    name: &str,
    contents: &[u8],
    point: &str,
    retry: &RetryPolicy,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let tmp = dir.join(format!("{name}.tmp-{}", std::process::id()));
    let result = retry.run(|| {
        let fault = decide(point);
        let outcome = (|| {
            let mut f = fs::File::create(&tmp)?;
            let wrote = faulty_write(&mut f, contents, fault)?;
            if wrote != contents.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("short write: {wrote} of {} bytes", contents.len()),
                ));
            }
            fsync(&f, fault)?;
            drop(f);
            if matches!(fault, Some(Fault { kind: FaultKind::RenameFail, .. })) {
                return Err(injected_errno(FaultKind::RenameFail));
            }
            fs::rename(&tmp, &path)?;
            Ok(())
        })();
        if outcome.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        outcome
    });
    result.map(|()| path)
}

/// True when the file's last byte is not `\n` (a torn append left a
/// partial line). Empty or absent files need no repair.
fn ends_mid_line(f: &mut fs::File, len: u64) -> io::Result<bool> {
    if len == 0 {
        return Ok(false);
    }
    let mut last = [0u8; 1];
    f.seek(SeekFrom::Start(len - 1))?;
    f.read_exact(&mut last)?;
    Ok(last[0] != b'\n')
}

/// Appends `line` (newline added) to an append-only log through the
/// fault point. Partial appends are **rolled back** (`ftruncate` to
/// the pre-append length) before the retry; if even the rollback is
/// impossible, the next attempt repairs by prefixing a newline so the
/// partial line is isolated for parse-time salvage rather than merged
/// into the new record.
pub fn append_line(path: &Path, line: &str, point: &str, retry: &RetryPolicy) -> io::Result<()> {
    let mut payload = String::with_capacity(line.len() + 1);
    payload.push_str(line);
    payload.push('\n');
    append_bytes(path, payload.as_bytes(), point, retry)
}

/// Appends pre-rendered newline-terminated bytes (one or more whole
/// lines) with the same rollback-and-repair discipline as
/// [`append_line`]. Used by batched sinks (`events.jsonl`).
pub fn append_bytes(path: &Path, bytes: &[u8], point: &str, retry: &RetryPolicy) -> io::Result<()> {
    retry.run(|| {
        let mut f = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let len_before = f.metadata()?.len();
        let mut buf = Vec::with_capacity(bytes.len() + 1);
        if ends_mid_line(&mut f, len_before)? {
            buf.push(b'\n');
        }
        buf.extend_from_slice(bytes);
        let fault = decide(point);
        let outcome = (|| {
            let wrote = faulty_write(&mut f, &buf, fault)?;
            if wrote != buf.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("short append: {wrote} of {} bytes", buf.len()),
                ));
            }
            fsync(&f, fault)?;
            Ok(())
        })();
        if outcome.is_err() {
            // Roll the partial append back so the log's valid prefix
            // stays valid. Best-effort: a failure here leaves a torn
            // final line, which every mocket log parser salvages.
            let _ = f.set_len(len_before);
        }
        outcome
    })
}

/// `O_CREAT|O_EXCL` create-with-contents through the fault point — the
/// primitive under lock files and lease claims. No retry: the caller
/// distinguishes `AlreadyExists` (lost the race) from transient I/O
/// errors and owns that loop. An injected torn write leaves a partial
/// file behind, exactly like a crash between create and write — the
/// claim/lock protocols must (and do) salvage such debris.
pub fn create_exclusive(path: &Path, contents: &[u8], point: &str) -> io::Result<()> {
    let fault = decide(point);
    let mut f = OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(path)?;
    let wrote = faulty_write(&mut f, contents, fault)?;
    if wrote != contents.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("short create: {wrote} of {} bytes", contents.len()),
        ));
    }
    fsync(&f, fault)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mocket-fsio-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn schedule(inj: &FaultInjector, point: &str, ops: usize) -> Vec<Option<FaultKind>> {
        (0..ops).map(|_| inj.decide(point).map(|f| f.kind)).collect()
    }

    #[test]
    fn same_seed_replays_identical_schedule() {
        let a = FaultInjector::new(42, 256);
        let b = FaultInjector::new(42, 256);
        assert_eq!(schedule(&a, "merge.write", 200), schedule(&b, "merge.write", 200));
        // Per-point counters: interleaving other points must not
        // perturb a point's own schedule.
        let c = FaultInjector::new(42, 256);
        let mixed: Vec<_> = (0..200)
            .map(|_| {
                let _ = c.decide("lease.write");
                c.decide("merge.write").map(|f| f.kind)
            })
            .collect();
        let d = FaultInjector::new(42, 256);
        assert_eq!(mixed, schedule(&d, "merge.write", 200));
    }

    #[test]
    fn different_seeds_differ_and_rate_zero_is_silent() {
        let a = FaultInjector::new(1, 256);
        let b = FaultInjector::new(2, 256);
        assert_ne!(schedule(&a, "p", 400), schedule(&b, "p", 400));
        let quiet = FaultInjector::new(1, 0);
        assert!(schedule(&quiet, "p", 400).iter().all(Option::is_none));
    }

    #[test]
    fn config_roundtrip_and_rejects_garbage() {
        let inj =
            FaultInjector::from_config("seed=7 rate=128 kinds=torn,enospc points=a.b").unwrap();
        assert_eq!(inj.seed, 7);
        assert_eq!(inj.rate, 128);
        assert_eq!(inj.kinds, vec![FaultKind::TornWrite, FaultKind::Enospc]);
        assert_eq!(inj.points, Some(vec!["a.b".to_string()]));
        assert!(FaultInjector::from_config("seed=x rate=1").is_err());
        assert!(FaultInjector::from_config("rate=1").is_err());
        assert!(FaultInjector::from_config("seed=1 rate=1 kinds=bogus").is_err());
        assert!(FaultInjector::from_config("seed=1 rate=1 nonsense").is_err());
    }

    #[test]
    fn write_atomic_verifies_and_retries_through_faults() {
        let dir = tmp_dir("atomic");
        // A high fault rate with a generous retry budget: the write
        // must still land intact.
        let inj = FaultInjector::new(3, 512);
        let path = dir.join("out.txt");
        let payload = b"canonical payload, long enough to tear somewhere\n";
        let retry = RetryPolicy {
            attempts: 64,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let result = retry.run(|| {
            let fault = inj.decide("test.write");
            let tmp = dir.join("out.txt.tmp");
            let outcome = (|| {
                let mut f = fs::File::create(&tmp)?;
                let wrote = faulty_write(&mut f, payload, fault)?;
                if wrote != payload.len() {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "short"));
                }
                fsync(&f, fault)?;
                drop(f);
                if matches!(fault, Some(Fault { kind: FaultKind::RenameFail, .. })) {
                    return Err(injected_errno(FaultKind::RenameFail));
                }
                fs::rename(&tmp, &path)
            })();
            if outcome.is_err() {
                let _ = fs::remove_file(&tmp);
            }
            outcome
        });
        result.unwrap();
        assert_eq!(fs::read(&path).unwrap(), payload);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_clean_path_writes_bytes() {
        let dir = tmp_dir("clean");
        let path =
            write_atomic(&dir, "f.json", b"{}\n", "test.point", &RetryPolicy::none()).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{}\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_line_repairs_partial_lines() {
        let dir = tmp_dir("append");
        let path = dir.join("log");
        fs::write(&path, "ok: 1\npartial without newline").unwrap();
        append_line(&path, "ok: 2", "test.append", &RetryPolicy::none()).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, "ok: 1\npartial without newline\nok: 2\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_is_recognized_and_delay_scales() {
        assert!(is_enospc(&io::Error::from_raw_os_error(28)));
        assert!(!is_enospc(&io::Error::from_raw_os_error(5)));
        let p = RetryPolicy::io();
        assert!(p.delay(0, true) >= p.delay(0, false));
        assert!(p.delay(3, false) >= p.delay(0, false));
        assert!(p.delay(12, false) <= p.max_backoff);
    }

    #[test]
    fn create_exclusive_leaves_debris_on_torn_create() {
        let dir = tmp_dir("excl");
        let path = dir.join("lock");
        let inj = FaultInjector::new(9, 1024).with_kinds(vec![FaultKind::TornWrite]);
        let fault = inj.decide("test.excl");
        assert!(fault.is_some());
        let mut f = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .unwrap();
        assert!(faulty_write(&mut f, b"pid: 12345\n", fault).is_err());
        drop(f);
        // The file exists with a strict prefix of the payload — the
        // shape every salvage path must handle.
        let debris = fs::read(&path).unwrap();
        assert!(debris.len() < b"pid: 12345\n".len());
        assert!(b"pid: 12345\n".starts_with(&debris[..]));
        let _ = fs::remove_dir_all(&dir);
    }
}
